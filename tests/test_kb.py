"""Tests for the persistent cross-dataset knowledge base.

The contract under test mirrors the artifact store's: promotion is
atomic and concurrency-safe, anything corrupt behaves like a miss,
retrieval is deterministic, and a search on the *same* dataset stays
bit-identical to a KB-less run (self-exclusion by fingerprint).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro import obs
from repro import store as artifact_store
from repro.core.akb.optimizer import search_knowledge
from repro.core.config import AKBConfig
from repro.data import generators
from repro.knowledge import kb as kb_module
from repro.knowledge.kb import KBEntry, KnowledgeBase, profile_vector_for
from repro.knowledge.rules import IgnoreAttribute, KeyAttribute, Knowledge
from repro.llm.mockgpt import ErrorCase, MockGPT


@pytest.fixture(autouse=True)
def _restore_kb_state():
    """Keep per-test configure() calls from leaking across the suite."""
    enabled = kb_module._ENABLED
    store_state = (
        artifact_store._ACTIVE,
        artifact_store._NO_CACHE,
        artifact_store._ENV_RESOLVED,
    )
    yield
    kb_module._ENABLED = enabled
    (
        artifact_store._ACTIVE,
        artifact_store._NO_CACHE,
        artifact_store._ENV_RESOLVED,
    ) = store_state


@pytest.fixture()
def bank(tmp_path) -> KnowledgeBase:
    return KnowledgeBase(tmp_path / "kb")


def make_knowledge(marker: str) -> Knowledge:
    return Knowledge(rules=(KeyAttribute(attribute=marker),))


def promote(
    bank: KnowledgeBase,
    marker: str,
    vector,
    task: str = "ed",
    score: float = 50.0,
    fingerprint: str = "fp-default",
):
    return bank.promote(
        task=task,
        dataset=f"ds-{marker}",
        fingerprint=fingerprint,
        vector=vector,
        knowledge=make_knowledge(marker),
        score=score,
    )


# ----------------------------------------------------------------------
# Entry serialisation: anything unexpected deserialises to None
# ----------------------------------------------------------------------
class TestEntrySerialisation:
    def entry(self) -> KBEntry:
        return KBEntry(
            entry_id="abc",
            task="ed",
            dataset="ed/beer",
            fingerprint="fp",
            vector=(1.0, 2.0, 3.0),
            knowledge=make_knowledge("abv"),
            score=87.5,
            promoted_at=123.0,
        )

    def test_round_trip(self):
        entry = self.entry()
        assert KBEntry.from_dict(entry.to_dict()) == entry

    def test_version_mismatch_is_invalid(self):
        data = self.entry().to_dict()
        data["version"] = 999
        assert KBEntry.from_dict(data) is None

    def test_missing_field_is_invalid(self):
        for field in ("id", "task", "vector", "knowledge", "score"):
            data = self.entry().to_dict()
            del data[field]
            assert KBEntry.from_dict(data) is None

    def test_non_finite_vector_is_invalid(self):
        data = self.entry().to_dict()
        data["vector"] = [1.0, float("nan")]
        assert KBEntry.from_dict(data) is None
        data["vector"] = [1.0, float("inf")]
        assert KBEntry.from_dict(data) is None

    def test_non_dict_is_invalid(self):
        assert KBEntry.from_dict("garbage") is None
        assert KBEntry.from_dict(None) is None


# ----------------------------------------------------------------------
# Promotion and retrieval
# ----------------------------------------------------------------------
class TestPromoteRetrieve:
    def test_promoted_entry_is_retrievable(self, bank):
        entry = promote(bank, "abv", (1.0, 0.0), score=80.0)
        assert entry is not None
        hits = bank.retrieve((1.0, 0.0), task="ed")
        assert len(hits) == 1
        similarity, hit = hits[0]
        assert similarity == pytest.approx(1.0)
        assert hit.knowledge == make_knowledge("abv")
        assert hit.score == 80.0

    def test_duplicate_promotion_is_idempotent(self, bank):
        assert promote(bank, "abv", (1.0, 0.0)) is not None
        assert promote(bank, "abv", (1.0, 0.0)) is None
        assert len(bank.entries()) == 1

    def test_retrieval_ordered_by_similarity(self, bank):
        promote(bank, "far", (0.0, 1.0))
        promote(bank, "near", (1.0, 0.1))
        promote(bank, "exact", (2.0, 0.0))  # scale-invariant cosine
        hits = bank.retrieve((1.0, 0.0), task="ed", k=3)
        markers = [hit.knowledge.rules[0].attribute for __, hit in hits]
        assert markers == ["exact", "near", "far"]
        similarities = [s for s, __ in hits]
        assert similarities == sorted(similarities, reverse=True)

    def test_task_filter(self, bank):
        promote(bank, "ed-entry", (1.0, 0.0), task="ed")
        promote(bank, "em-entry", (1.0, 0.0), task="em")
        hits = bank.retrieve((1.0, 0.0), task="em")
        assert [h.task for __, h in hits] == ["em"]

    def test_min_similarity_floor(self, bank):
        promote(bank, "orthogonal", (0.0, 1.0))
        assert bank.retrieve((1.0, 0.0), task="ed", min_similarity=0.5) == []

    def test_self_exclusion_by_fingerprint(self, bank):
        promote(bank, "mine", (1.0, 0.0), fingerprint="self")
        promote(bank, "other", (1.0, 0.0), fingerprint="other")
        hits = bank.retrieve(
            (1.0, 0.0), task="ed", exclude_fingerprint="self"
        )
        assert [h.fingerprint for __, h in hits] == ["other"]

    def test_vector_length_mismatch_never_matches(self, bank):
        promote(bank, "short", (1.0, 0.0))
        assert bank.retrieve((1.0, 0.0, 0.0), task="ed") == []

    def test_retrieval_is_deterministic(self, bank):
        for index in range(6):
            promote(bank, f"m{index}", (1.0, index / 10.0))
        first = bank.retrieve((1.0, 0.2), task="ed", k=4)
        second = bank.retrieve((1.0, 0.2), task="ed", k=4)
        assert first == second

    def test_hit_miss_counters(self, bank):
        promote(bank, "abv", (1.0, 0.0))
        tracer = obs.Tracer()
        with obs.using_tracer(tracer):
            bank.retrieve((1.0, 0.0), task="ed")
            bank.retrieve((1.0, 0.0), task="em")
        counts = {name: n for (name, __), n in tracer.counters.items()}
        assert counts.get("kb.hit") == 1
        assert counts.get("kb.miss") == 1
        span_names = [event["name"] for event in tracer.spans]
        assert span_names.count("kb.retrieve") == 2


# ----------------------------------------------------------------------
# Corruption, healing, compaction, pruning
# ----------------------------------------------------------------------
class TestMaintenance:
    def test_corrupt_loose_entry_behaves_like_miss(self, bank):
        promote(bank, "good", (1.0, 0.0))
        (bank.entries_dir / "zz-bad.json").write_text("{not json")
        entries = bank.entries()
        assert len(entries) == 1  # corrupt skipped, read never fails
        report = bank.heal()
        assert report == {"corrupt_removed": 1, "kept": 1}
        assert not (bank.entries_dir / "zz-bad.json").exists()

    def test_corrupt_segment_line_is_healed_in_place(self, bank):
        promote(bank, "a", (1.0, 0.0))
        promote(bank, "b", (0.0, 1.0))
        bank.compact()
        (segment,) = bank.segments_dir.glob("*.jsonl")
        segment.write_text(segment.read_text() + "{truncated\n")
        assert len(bank.entries()) == 2
        report = bank.heal()
        assert report["corrupt_removed"] == 1 and report["kept"] == 2
        # The rewritten segment parses cleanly line by line.
        for line in segment.read_text().splitlines():
            json.loads(line)

    def test_version_mismatch_counts_as_corrupt(self, bank):
        entry = promote(bank, "old", (1.0, 0.0))
        path = bank.entries_dir / f"{entry.entry_id}.json"
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        assert bank.entries() == []
        assert bank.heal()["corrupt_removed"] == 1

    def test_compaction_folds_and_preserves(self, bank):
        for index in range(5):
            promote(bank, f"m{index}", (1.0, float(index)))
        before = bank.entries()
        report = bank.compact()
        assert report["compacted"] == 5 and report["segments"] == 1
        assert list(bank.entries_dir.glob("*.json")) == []
        assert len(list(bank.segments_dir.glob("*.jsonl"))) == 1
        assert bank.entries() == before

    def test_promotion_after_compaction_coexists(self, bank):
        promote(bank, "first", (1.0, 0.0))
        bank.compact()
        promote(bank, "second", (0.0, 1.0))
        assert len(bank.entries()) == 2

    def test_prune_by_score_and_count(self, bank):
        for index in range(6):
            promote(bank, f"m{index}", (1.0, float(index)), score=10.0 * index)
        report = bank.prune(min_score=15.0)
        assert report == {"evicted": 2, "kept": 4}
        report = bank.prune(max_entries=2)
        assert report == {"evicted": 2, "kept": 2}
        scores = sorted(entry.score for entry in bank.entries())
        assert scores == [40.0, 50.0]  # highest-scored survive

    def test_prune_task_scoped(self, bank):
        promote(bank, "ed-low", (1.0, 0.0), task="ed", score=1.0)
        promote(bank, "em-low", (1.0, 0.0), task="em", score=1.0)
        report = bank.prune(min_score=50.0, task="em")
        assert report["evicted"] == 1
        assert [e.task for e in bank.entries()] == ["ed"]

    def test_export_import_round_trip(self, bank, tmp_path):
        for index in range(3):
            promote(bank, f"m{index}", (1.0, float(index)), score=index)
        export = tmp_path / "kb_export.jsonl"
        assert bank.export_entries(export) == 3
        other = KnowledgeBase(tmp_path / "kb2")
        report = other.import_entries(export)
        assert report == {"imported": 3, "skipped": 0}
        assert {e.entry_id for e in other.entries()} == {
            e.entry_id for e in bank.entries()
        }
        # Re-import is a no-op: every entry already present.
        assert other.import_entries(export) == {"imported": 0, "skipped": 3}

    def test_import_missing_file_raises(self, bank, tmp_path):
        with pytest.raises(FileNotFoundError):
            bank.import_entries(tmp_path / "nope.jsonl")

    def test_import_skips_invalid_lines(self, bank, tmp_path):
        path = tmp_path / "mixed.jsonl"
        entry = KBEntry(
            entry_id="x", task="ed", dataset="d", fingerprint="f",
            vector=(1.0,), knowledge=make_knowledge("a"), score=1.0,
            promoted_at=1.0,
        )
        path.write_text(
            json.dumps(entry.to_dict()) + "\n{broken\n\n"
        )
        report = bank.import_entries(path)
        assert report == {"imported": 1, "skipped": 1}

    def test_stats_and_render(self, bank):
        assert bank.stats()["entries"] == 0
        assert "empty" in bank.render_stats()
        promote(bank, "a", (1.0, 0.0), task="ed")
        promote(bank, "b", (1.0, 0.0), task="em")
        stats = bank.stats()
        assert stats["entries"] == 2
        assert stats["tasks"] == {"ed": 1, "em": 1}
        assert stats["bytes"] > 0
        text = bank.render_stats()
        assert "2 entries" in text and "ed" in text and "em" in text


# ----------------------------------------------------------------------
# Concurrency: forked promoters, O_CREAT|O_EXCL claims
# ----------------------------------------------------------------------
def _promote_worker(payload):
    root, worker, count = payload
    bank = KnowledgeBase(root)
    written = 0
    for index in range(count):
        # Even indices are the same discovery in every worker (the
        # common re-discovery race); odd indices are worker-private.
        marker = (
            f"shared-{index}" if index % 2 == 0
            else f"w{worker}-{index}"
        )
        if promote(bank, marker, (1.0, float(index))) is not None:
            written += 1
    return written


class TestConcurrency:
    def test_forked_promoters_deduplicate(self, bank):
        workers, count = 3, 8
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(workers) as pool:
            written = pool.map(
                _promote_worker,
                [(bank.root, w, count) for w in range(workers)],
            )
        shared = (count + 1) // 2
        expected = shared + workers * (count - shared)
        assert len(bank.entries()) == expected
        # Every private entry lands; shared ones land at least once
        # (claim losers skip, a lost claim falls through to a write).
        assert sum(written) >= expected
        assert bank.heal()["corrupt_removed"] == 0
        bank.compact()
        assert len(bank.entries()) == expected

    def test_retrieval_deterministic_after_concurrent_writes(self, bank):
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            pool.map(
                _promote_worker, [(bank.root, w, 6) for w in range(2)]
            )
        first = bank.retrieve((1.0, 2.0), task="ed", k=5)
        second = bank.retrieve((1.0, 2.0), task="ed", k=5)
        assert first == second and len(first) == 5


# ----------------------------------------------------------------------
# Process-wide resolution (flags, env, store)
# ----------------------------------------------------------------------
class TestResolution:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KB", raising=False)
        kb_module.configure(None)
        assert not kb_module.enabled()
        assert kb_module.active_kb() is None

    def test_env_opt_in(self, monkeypatch):
        kb_module.configure(None)
        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv("REPRO_KB", value)
            assert kb_module.enabled()
        monkeypatch.setenv("REPRO_KB", "0")
        assert not kb_module.enabled()

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KB", "1")
        kb_module.configure(False)
        assert not kb_module.enabled()
        kb_module.configure(True)
        assert kb_module.enabled()

    def test_active_kb_requires_store(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_KB", raising=False)
        kb_module.configure(True)
        with artifact_store.using_store(None):
            assert kb_module.active_kb() is None
        store = artifact_store.ArtifactStore(tmp_path / "cache")
        with artifact_store.using_store(store):
            bank = kb_module.active_kb()
            assert bank is not None
            assert bank.root == store.kb_dir

    def test_resolve_use_kb(self, bank, tmp_path):
        kb_module.configure(None)
        # Explicit instance wins, unless use_kb=False vetoes.
        assert kb_module.resolve_use_kb(None, bank) is bank
        assert kb_module.resolve_use_kb(False, bank) is None
        # use_kb=True needs an active store.
        with artifact_store.using_store(None):
            assert kb_module.resolve_use_kb(True, None) is None
        store = artifact_store.ArtifactStore(tmp_path / "cache")
        with artifact_store.using_store(store):
            resolved = kb_module.resolve_use_kb(True, None)
            assert resolved is not None
            assert resolved.root == store.kb_dir


# ----------------------------------------------------------------------
# Optimizer integration: retrieve-then-refine
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def beer_dataset():
    return generators.build("ed/beer", count=60, seed=13)


def _marker_scorer(best: Knowledge, dataset, score: float = 99.0):
    """Score `best` highest; errors stay non-empty so no zero-error stop."""
    residual = [ErrorCase(dataset.examples[0], "wrong")]

    def scorer(candidate: Knowledge):
        if candidate == best:
            return score, list(residual)
        return 10.0 + len(candidate.rules) * 0.1, list(residual)

    return scorer


class TestSearchIntegration:
    def test_retrieved_entries_seed_the_pool(self, bundle, bank, beer_dataset):
        vector, __fp = profile_vector_for(beer_dataset)
        planted = make_knowledge("planted")
        bank.promote(
            task="ed", dataset="elsewhere", fingerprint="other-fp",
            vector=vector, knowledge=planted, score=95.0,
        )
        config = AKBConfig(pool_size=3, iterations=2, refinements_per_iteration=1)
        tracer = obs.Tracer()
        with obs.using_tracer(tracer):
            result = search_knowledge(
                bundle.upstream_model,
                beer_dataset,
                beer_dataset.examples[:16],
                mockgpt=MockGPT(seed=1),
                config=config,
                scorer=_marker_scorer(planted, beer_dataset),
                kb=bank,
            )
        assert result.retrieved == 1
        assert result.knowledge == planted
        seeded = {
            attrs: n
            for (name, attrs), n in tracer.counters.items()
            if name == "akb.pool_seeded"
        }
        by_source = {dict(attrs)["source"]: n for attrs, n in seeded.items()}
        assert by_source.get("retrieved") == 1
        assert by_source.get("generated", 0) >= 3

    def test_trusted_retrieval_stops_after_round_one(
        self, bundle, bank, beer_dataset
    ):
        vector, __fp = profile_vector_for(beer_dataset)
        planted = make_knowledge("planted")
        bank.promote(
            task="ed", dataset="elsewhere", fingerprint="other-fp",
            vector=vector, knowledge=planted, score=95.0,
        )
        config = AKBConfig(
            pool_size=3, iterations=5, refinements_per_iteration=2,
            patience=10,
        )
        tracer = obs.Tracer()
        with obs.using_tracer(tracer):
            result = search_knowledge(
                bundle.upstream_model,
                beer_dataset,
                beer_dataset.examples[:16],
                mockgpt=MockGPT(seed=1),
                config=config,
                scorer=_marker_scorer(planted, beer_dataset),
                kb=bank,
            )
        assert result.iterations_run == 1
        counts = {name: n for (name, __), n in tracer.counters.items()}
        assert counts.get("akb.kb_early_stop") == 1

    def test_generated_winner_disables_trusted_shortcut(
        self, bundle, bank, beer_dataset
    ):
        vector, __fp = profile_vector_for(beer_dataset)
        planted = make_knowledge("planted")
        bank.promote(
            task="ed", dataset="elsewhere", fingerprint="other-fp",
            vector=vector, knowledge=planted, score=40.0,
        )

        def scorer(candidate: Knowledge):
            # A generated candidate strictly beats the retrieval.
            residual = [ErrorCase(beer_dataset.examples[0], "wrong")]
            if candidate == planted:
                return 40.0, residual
            return 50.0 + len(candidate.rules), residual

        config = AKBConfig(
            pool_size=3, iterations=3, refinements_per_iteration=1,
            patience=0,
        )
        result = search_knowledge(
            bundle.upstream_model,
            beer_dataset,
            beer_dataset.examples[:16],
            mockgpt=MockGPT(seed=1),
            config=config,
            scorer=scorer,
            kb=bank,
        )
        assert result.iterations_run > 1

    def test_winners_promote_back(self, bundle, bank, beer_dataset):
        config = AKBConfig(pool_size=3, iterations=1, refinements_per_iteration=1)
        result = search_knowledge(
            bundle.upstream_model,
            beer_dataset,
            beer_dataset.examples[:16],
            mockgpt=MockGPT(seed=1),
            config=config,
            scorer=_marker_scorer(make_knowledge("nobody"), beer_dataset),
            kb=bank,
        )
        assert result.promoted > 0
        assert len(bank.entries()) == result.promoted
        __vector, fp = profile_vector_for(beer_dataset)
        assert all(e.fingerprint == fp for e in bank.entries())

    def test_same_dataset_rerun_is_bit_identical(
        self, bundle, bank, beer_dataset
    ):
        """Self-exclusion: a re-run retrieves nothing from its own
        promotions, so KB-on matches KB-off exactly."""
        config = AKBConfig(pool_size=3, iterations=2, refinements_per_iteration=1)

        def run(use_bank):
            return search_knowledge(
                bundle.upstream_model,
                beer_dataset,
                beer_dataset.examples[:16],
                mockgpt=MockGPT(seed=1),
                config=config,
                scorer=_marker_scorer(make_knowledge("nobody"), beer_dataset),
                kb=bank if use_bank else None,
                use_kb=None if use_bank else False,
            )

        baseline = run(use_bank=False)
        first = run(use_bank=True)  # populates the bank
        assert len(bank.entries()) > 0
        second = run(use_bank=True)  # same dataset: retrieval excluded
        assert second.retrieved == 0
        for result in (first, second):
            assert result.knowledge == baseline.knowledge
            assert result.best_score == baseline.best_score
            assert [r.best_score for r in result.rounds] == [
                r.best_score for r in baseline.rounds
            ]


# ----------------------------------------------------------------------
# CLI: repro kb {stats,export,import,prune}, cache integration
# ----------------------------------------------------------------------
class TestCLI:
    @pytest.fixture()
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        return tmp_path / "cache"

    def _bank(self, cache_dir) -> KnowledgeBase:
        store = artifact_store.ArtifactStore(cache_dir)
        return KnowledgeBase(store.kb_dir)

    def test_kb_requires_cache_dir(self, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["kb", "stats"]) == 2

    def test_kb_stats(self, cache_dir, capsys):
        from repro.cli import main

        promote(self._bank(cache_dir), "a", (1.0, 0.0))
        assert main(["kb", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "knowledge base" in out and "1 entries" in out

    def test_kb_export_import_prune(self, cache_dir, tmp_path, capsys):
        from repro.cli import main

        bank = self._bank(cache_dir)
        promote(bank, "keep", (1.0, 0.0), score=90.0)
        promote(bank, "drop", (0.0, 1.0), score=5.0)
        export = tmp_path / "kb.jsonl"
        assert main(
            ["kb", "export", str(export), "--cache-dir", str(cache_dir)]
        ) == 0
        assert export.exists()
        other_dir = tmp_path / "cache2"
        assert main(
            ["kb", "import", str(export), "--cache-dir", str(other_dir)]
        ) == 0
        assert len(self._bank(other_dir).entries()) == 2
        assert main(
            [
                "kb", "prune", "--min-score", "50",
                "--cache-dir", str(other_dir),
            ]
        ) == 0
        survivors = self._bank(other_dir).entries()
        assert [e.score for e in survivors] == [90.0]

    def test_kb_import_missing_file_fails(self, cache_dir, tmp_path):
        from repro.cli import main

        code = main(
            [
                "kb", "import", str(tmp_path / "nope.jsonl"),
                "--cache-dir", str(cache_dir),
            ]
        )
        assert code == 1

    def test_kb_export_requires_path(self, cache_dir):
        from repro.cli import main

        assert main(["kb", "export", "--cache-dir", str(cache_dir)]) == 2

    def test_cache_stats_reports_kb(self, cache_dir, capsys):
        from repro.cli import main

        promote(self._bank(cache_dir), "a", (1.0, 0.0))
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "knowledge base" in out and "1 entries" in out

    def test_cache_gc_leaves_kb_alone(self, cache_dir, capsys):
        from repro.cli import main

        bank = self._bank(cache_dir)
        promote(bank, "a", (1.0, 0.0))
        bank.entries_dir.mkdir(parents=True, exist_ok=True)
        (bank.entries_dir / "zz-bad.json").write_text("{corrupt")
        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        # Without --kb the corrupt KB file is untouched.
        assert (bank.entries_dir / "zz-bad.json").exists()
        assert len(bank.entries()) == 1
        assert main(
            ["cache", "gc", "--kb", "--cache-dir", str(cache_dir)]
        ) == 0
        assert not (bank.entries_dir / "zz-bad.json").exists()
        assert len(bank.entries()) == 1
        out = capsys.readouterr().out
        assert "kb gc" in out


# ----------------------------------------------------------------------
# profile_vector_for memo
# ----------------------------------------------------------------------
class TestProfileVectorMemo:
    def test_memoised_by_fingerprint(self, beer_dataset):
        from repro.data import profiling

        vector1, fp1 = profile_vector_for(beer_dataset)
        vector2, fp2 = profile_vector_for(beer_dataset)
        assert vector1 == vector2 and fp1 == fp2
        assert (fp1, profiling.FEATURE_VERSION) in kb_module._VECTOR_CACHE

    def test_feature_version_bump_invalidates_memo(
        self, beer_dataset, monkeypatch
    ):
        from repro.data import profiling

        vector1, fp1 = profile_vector_for(beer_dataset)
        # Poison the cached entry, then bump the layout version: the
        # stale vector must not be served under the new basis.
        kb_module._VECTOR_CACHE[(fp1, profiling.FEATURE_VERSION)] = (
            -1.0,
        ) * len(vector1)
        monkeypatch.setattr(
            profiling, "FEATURE_VERSION", profiling.FEATURE_VERSION + 1
        )
        vector2, fp2 = profile_vector_for(beer_dataset)
        assert fp2 == fp1
        assert vector2 == vector1  # recomputed, not the poisoned entry
        kb_module._VECTOR_CACHE.pop(
            (fp1, profiling.FEATURE_VERSION), None
        )
        kb_module._VECTOR_CACHE.pop(
            (fp1, profiling.FEATURE_VERSION - 1), None
        )

    def test_matches_fresh_profile(self, beer_dataset):
        from repro.data.profiling import profile_dataset

        vector, __fp = profile_vector_for(beer_dataset)
        fresh = profile_dataset(beer_dataset).feature_vector()
        assert np.allclose(np.asarray(vector), fresh)
