"""Tests for pretraining and the model tier registry."""

import numpy as np
import pytest

from repro.tinylm.pretrain import build_pretraining_corpus
from repro.tinylm.registry import TIERS, Tier, clear_cache, create_base_model


class TestCorpus:
    def test_size_and_determinism(self):
        a = build_pretraining_corpus(40, seed=3)
        b = build_pretraining_corpus(40, seed=3)
        assert len(a) == 40
        assert [x.prompt for x in a] == [x.prompt for x in b]

    def test_seed_changes_corpus(self):
        a = build_pretraining_corpus(40, seed=3)
        b = build_pretraining_corpus(40, seed=4)
        assert [x.prompt for x in a] != [x.prompt for x in b]

    def test_targets_valid(self):
        for example in build_pretraining_corpus(60, seed=1):
            assert 0 <= example.target < len(example.candidates)

    def test_contains_all_example_families(self):
        prompts = " ".join(x.prompt for x in build_pretraining_corpus(300, seed=2))
        assert "which item is mentioned" in prompts
        assert "which brand makes this" in prompts or "abbreviation" in prompts
        assert "what is the" in prompts
        assert "what kind of values are these" in prompts


class TestRegistry:
    def test_known_tiers(self):
        assert {"mistral-7b", "llama-8b", "llama-13b", "tablellama", "closed-xl"} == set(
            TIERS
        )

    def test_tier_capability_ordering(self):
        assert TIERS["llama-13b"].hidden_dim > TIERS["llama-8b"].hidden_dim
        assert TIERS["llama-8b"].hidden_dim > TIERS["mistral-7b"].hidden_dim
        assert TIERS["tablellama"].pretrain_size < TIERS["mistral-7b"].pretrain_size

    def test_unknown_tier(self):
        with pytest.raises(KeyError):
            create_base_model("gpt-7b")

    def test_cache_returns_clones(self, base_model):
        again = create_base_model("mistral-7b", seed=0)
        assert again is not base_model
        np.testing.assert_array_equal(
            again.weights["encoder.W1"], base_model.weights["encoder.W1"]
        )
        again.weights["encoder.W1"][0, 0] = 99.0
        fresh = create_base_model("mistral-7b", seed=0)
        assert fresh.weights["encoder.W1"][0, 0] != 99.0


class TestWorldKnowledge:
    """The capabilities pretraining is supposed to install."""

    def test_copy_bias(self, base_model):
        # Statistical probe: any single random word can lose to a hash
        # collision, but the copy head must win on average.
        rng = np.random.default_rng(42)
        letters = "abcdefghijklmnopqrstuvwxyz"

        def word():
            return "".join(
                letters[rng.integers(26)] for __ in range(rng.integers(4, 9))
            )

        hits = 0
        trials = 30
        for __ in range(trials):
            options = [word() for __ in range(3)]
            answer_index = int(rng.integers(3))
            prompt = (
                f"text [ {word()} {options[answer_index]} {word()} ] "
                "question which item is mentioned"
            )
            hits += base_model.predict(prompt, options) == answer_index
        assert hits / trials > 0.8

    def test_brand_association(self, base_model):
        # Statistical probe over every phone line (single pairs can lose
        # to featurizer collisions, e.g. "note" vs "nokia" trigrams).
        from repro.data import vocab

        rng = np.random.default_rng(1)
        hits = total = 0
        for brand, lines in vocab.PHONE_LINES.items():
            for line in lines:
                distractors = [b for b in vocab.PHONE_BRANDS if b != brand]
                rng.shuffle(distractors)
                options = [brand] + distractors[:4]
                prediction = base_model.predict(
                    f"text [ {line} smartphone ] question which brand makes this",
                    options,
                )
                hits += prediction == 0
                total += 1
        assert hits / total > 0.7

    def test_attribute_semantics(self, base_model):
        probs = base_model.probabilities(
            "text [ red cotton running ] question what is the color",
            ["red", "cotton", "running"],
        )
        assert int(np.argmax(probs)) == 0

    def test_type_naming(self, base_model):
        probs = base_model.probabilities(
            "column values [ thai ; italian ; french ; korean ] "
            "question what kind of values are these and what is the semantic type",
            ["cuisine", "person name", "organization"],
        )
        assert int(np.argmax(probs)) == 0

    def test_copy_gamma_positive_after_pretraining(self, base_model):
        assert base_model.weights["copy.gamma"][0] > 1.0
