"""Parity suite: the batched inference engine vs the per-example path.

The batched engine (ragged forward, sparse featurization, shared
caches) must be a pure optimisation.  Reference implementations of the
*pre-batching* code — dense scalar featurizer loop, per-example forward
and backward — live in this file, and every public API is checked
against them at ``atol=1e-10`` on all seven data preparation tasks.
"""

import numpy as np
import pytest

from repro.data import generators
from repro.knowledge.seed import seed_knowledge
from repro.tasks.base import get_task
from repro.tinylm.linalg import relu, relu_grad, softmax
from repro.tinylm.model import ModelConfig, ScoringLM
from repro.tinylm.tokenizer import HashedFeaturizer, tokenize

# One downstream dataset per task, covering all seven tasks.
TASK_DATASETS = {
    "ed": "ed/beer",
    "di": "di/phone",
    "sm": "sm/cms",
    "em": "em/abt_buy",
    "cta": "cta/sotab",
    "ave": "ave/ae110k",
    "dc": "dc/beer",
}

ATOL = 1e-10


# ----------------------------------------------------------------------
# Reference implementations (the pre-change per-example code paths)
# ----------------------------------------------------------------------
def reference_encode(featurizer: HashedFeaturizer, text: str) -> np.ndarray:
    """The original dense scalar-scatter featurizer loop."""
    vec = np.zeros(featurizer.dim)
    for feature in featurizer._features(tokenize(text)):
        index, sign = featurizer._bucket(feature)
        weight = (
            featurizer.MARKER_WEIGHT if feature.startswith("w:[") else 1.0
        )
        vec[index] += sign * weight
    norm = np.linalg.norm(vec)
    if norm > 0.0:
        vec /= norm
    return vec


def reference_logits(model: ScoringLM, prompt, pool) -> np.ndarray:
    """The original single-example forward formula."""
    x = model.featurizer.encode(prompt)
    Y = np.stack([model.featurizer.encode(c) for c in pool])
    W1 = model.effective_weight("encoder.W1")
    W2 = model.effective_weight("encoder.W2")
    V = model.effective_weight("answer.V")
    h = relu(W1 @ x + model.weights["encoder.b1"])
    u = W2 @ h + model.weights["encoder.b2"]
    gamma = float(model.weights["copy.gamma"][0])
    return (
        model._scale * ((Y @ V.T) @ u)
        + Y @ model.weights["answer.b"]
        + gamma * (Y @ x)
    )


def reference_loss_and_gradients(model, batch, train_base=True):
    """The original per-example forward + backward loops."""
    W1 = model.effective_weight("encoder.W1")
    W2 = model.effective_weight("encoder.W2")
    V = model.effective_weight("answer.V")
    b = model.weights["answer.b"]
    X = np.stack([ex.prompt for ex in batch])
    H_pre = X @ W1.T + model.weights["encoder.b1"]
    H = relu(H_pre)
    U = H @ W2.T + model.weights["encoder.b2"]
    gamma = float(model.weights["copy.gamma"][0])
    losses = np.zeros(len(batch))
    per_example = []
    for i, ex in enumerate(batch):
        Y = ex.candidates
        Vy = Y @ V.T
        logits = model._scale * (Vy @ U[i]) + Y @ b + gamma * (Y @ X[i])
        shifted = logits - logits.max()
        log_z = np.log(np.exp(shifted).sum())
        losses[i] = (log_z - shifted[ex.target]) * ex.weight
        per_example.append((Y, Vy, np.exp(shifted - log_z)))

    n = len(batch)
    k, d = model.config.hidden_dim, model.config.feature_dim
    dU = np.zeros((n, k))
    dV_eff = np.zeros((k, d))
    db_ans = np.zeros(d)
    dgamma = 0.0
    for i, ex in enumerate(batch):
        Y, Vy, probs = per_example[i]
        dlogits = probs.copy()
        dlogits[ex.target] -= 1.0
        dlogits *= ex.weight / n
        dU[i] = model._scale * (dlogits @ Vy)
        dV_eff += model._scale * np.outer(U[i], dlogits @ Y)
        db_ans += dlogits @ Y
        dgamma += float(dlogits @ (Y @ X[i]))
    dH = dU @ W2
    dH_pre = dH * relu_grad(H_pre)
    effective_grads = {
        "encoder.W1": dH_pre.T @ X,
        "encoder.W2": dU.T @ H,
        "answer.V": dV_eff,
    }
    base_grads = {}
    if train_base:
        base_grads = dict(effective_grads)
        base_grads["encoder.b1"] = dH_pre.sum(axis=0)
        base_grads["encoder.b2"] = dU.sum(axis=0)
        base_grads["answer.b"] = db_ans
        base_grads["copy.gamma"] = np.array([dgamma])
    adapter_grads = {}
    if model.adapter is not None:
        for name, d_weight in effective_grads.items():
            for key, grad in model.adapter.grad_wrt(name, d_weight).items():
                if key in adapter_grads:
                    adapter_grads[key] = adapter_grads[key] + grad
                else:
                    adapter_grads[key] = grad
    return float(losses.mean()), base_grads, adapter_grads


# ----------------------------------------------------------------------
# Shared workload fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def parity_model() -> ScoringLM:
    return ScoringLM(
        ModelConfig(name="parity", feature_dim=256, hidden_dim=24, seed=7)
    )


def task_workload(task_name, limit=6):
    dataset = generators.build(TASK_DATASETS[task_name], count=30, seed=5)
    task = get_task(dataset.task)
    knowledge = seed_knowledge(dataset.task)
    examples = dataset.examples[:limit]
    prompts = [task.prompt(ex, knowledge) for ex in examples]
    pools = [task.candidates(ex, knowledge, dataset) for ex in examples]
    return prompts, pools


# ----------------------------------------------------------------------
# Featurizer: sparse vs dense
# ----------------------------------------------------------------------
class TestSparseFeaturizerParity:
    TEXTS = [
        "",
        "alpha",
        "alpha beta gamma alpha",
        "record [ abv: 0.05% ] [missing] value",
        "[fmt_violation_abv] 12.5 $ # @",
        "the quick brown fox jumps over the lazy dog " * 4,
    ]

    def test_encode_matches_dense_reference(self):
        featurizer = HashedFeaturizer(dim=128)
        for text in self.TEXTS:
            np.testing.assert_allclose(
                featurizer.encode(text),
                reference_encode(featurizer, text),
                atol=1e-12,
                err_msg=text,
            )

    def test_encode_batch_matches_rows(self):
        featurizer = HashedFeaturizer(dim=128)
        batch = featurizer.encode_batch(self.TEXTS)
        for row, text in zip(batch, self.TEXTS):
            np.testing.assert_array_equal(row, featurizer.encode(text))

    def test_sparse_rows_are_sorted_unit_norm_and_readonly(self):
        featurizer = HashedFeaturizer(dim=512)
        indices, values = featurizer.encode_sparse("alpha beta gamma")
        assert np.all(np.diff(indices) > 0)
        assert float(values @ values) == pytest.approx(1.0)
        assert not indices.flags.writeable and not values.flags.writeable

    def test_task_prompts_match_reference(self, parity_model):
        for task_name in TASK_DATASETS:
            prompts, __ = task_workload(task_name, limit=3)
            for prompt in prompts:
                np.testing.assert_allclose(
                    parity_model.featurizer.encode(prompt),
                    reference_encode(parity_model.featurizer, prompt),
                    atol=1e-12,
                )


class TestCacheDeterminism:
    def test_eviction_does_not_change_encodings(self):
        featurizer = HashedFeaturizer(dim=64, cache_size=4)
        texts = [f"token{i} value{i % 3} [missing]" for i in range(12)]
        first = [featurizer.encode(t) for t in texts]
        assert len(featurizer._sparse_cache) <= 4
        # Re-encode in reverse order: every early text was evicted and
        # must round-trip to bit-identical vectors.
        for text, expected in zip(reversed(texts), reversed(first)):
            np.testing.assert_array_equal(featurizer.encode(text), expected)

    def test_shared_cache_across_instances(self):
        a = HashedFeaturizer(dim=96, salt="shared-test")
        b = HashedFeaturizer(dim=96, salt="shared-test")
        a.encode("warm this text")
        assert "warm this text" in b._sparse_cache
        assert a._cache is b._cache  # bucket cache shared on (salt, dim)

    def test_clone_shares_featurization_caches(self, parity_model):
        parity_model.encode_candidates(["shared candidate string"])
        parity_model.encode_prompt("shared prompt string")
        clone = parity_model.clone(name="clone")
        assert "shared candidate string" in clone._candidate_cache
        assert "shared prompt string" in clone._prompt_cache
        assert clone.featurizer._cache is parity_model.featurizer._cache
        np.testing.assert_array_equal(
            clone.encode_prompt("shared prompt string"),
            parity_model.encode_prompt("shared prompt string"),
        )


# ----------------------------------------------------------------------
# Model: batched vs per-example forward
# ----------------------------------------------------------------------
class TestBatchedForwardParity:
    @pytest.mark.parametrize("task_name", sorted(TASK_DATASETS))
    def test_probabilities_batch_matches_reference(
        self, parity_model, task_name
    ):
        prompts, pools = task_workload(task_name)
        batched = parity_model.probabilities_batch(prompts, pools)
        for prompt, pool, probs in zip(prompts, pools, batched):
            reference = softmax(reference_logits(parity_model, prompt, pool))
            np.testing.assert_allclose(probs, reference, atol=ATOL)

    @pytest.mark.parametrize("task_name", sorted(TASK_DATASETS))
    def test_predict_batch_matches_reference(self, parity_model, task_name):
        prompts, pools = task_workload(task_name)
        batched = parity_model.predict_batch(prompts, pools)
        reference = [
            int(np.argmax(reference_logits(parity_model, p, pool)))
            for p, pool in zip(prompts, pools)
        ]
        assert batched == reference

    @pytest.mark.parametrize("task_name", sorted(TASK_DATASETS))
    def test_single_example_path_is_the_batched_path(
        self, parity_model, task_name
    ):
        prompts, pools = task_workload(task_name, limit=4)
        batched = parity_model.logits_batch(prompts, pools)
        for prompt, pool, expected in zip(prompts, pools, batched):
            np.testing.assert_allclose(
                parity_model.logits(prompt, pool), expected, atol=ATOL
            )

    def test_empty_batch(self, parity_model):
        assert parity_model.logits_batch([], []) == []
        assert parity_model.predict_batch([], []) == []

    def test_empty_pool_rejected(self, parity_model):
        with pytest.raises(ValueError):
            parity_model.predict_batch(["a prompt"], [[]])

    def test_mismatched_lengths_rejected(self, parity_model):
        with pytest.raises(ValueError):
            parity_model.logits_batch(["a", "b"], [["x"]])


# ----------------------------------------------------------------------
# Model: batched vs per-example backward
# ----------------------------------------------------------------------
class TestBatchedBackwardParity:
    def _training_batch(self, model, task_name):
        dataset = generators.build(TASK_DATASETS[task_name], count=30, seed=5)
        task = get_task(dataset.task)
        knowledge = seed_knowledge(dataset.task)
        batch = []
        for i, example in enumerate(dataset.examples[:5]):
            t = task.training_example(example, knowledge, dataset)
            encoded = model.encode_example(t.prompt, t.candidates, t.target)
            encoded.weight = 1.0 + 0.25 * i  # exercise non-uniform weights
            batch.append(encoded)
        return batch

    @pytest.mark.parametrize("task_name", sorted(TASK_DATASETS))
    def test_base_gradients_match_reference(self, parity_model, task_name):
        batch = self._training_batch(parity_model, task_name)
        loss, grads, __ = parity_model.loss_and_gradients(batch)
        ref_loss, ref_grads, __ = reference_loss_and_gradients(
            parity_model, batch
        )
        assert loss == pytest.approx(ref_loss, abs=ATOL)
        assert set(grads) == set(ref_grads)
        for name in grads:
            np.testing.assert_allclose(
                grads[name], ref_grads[name], atol=ATOL, err_msg=name
            )

    def test_adapter_gradients_match_reference(self, parity_model):
        from repro.tinylm.lora import LoRAPatch

        model = parity_model.clone(name="adapter-parity")
        patch = LoRAPatch("p", model.config.target_shapes(), rank=2, seed=9)
        rng = np.random.default_rng(2)
        for name in patch.A:
            patch.A[name] = rng.normal(0, 0.05, patch.A[name].shape)
        model.attach(patch)
        batch = self._training_batch(model, "em")
        loss, __, adapter_grads = model.loss_and_gradients(
            batch, train_base=False
        )
        ref_loss, __, ref_adapter = reference_loss_and_gradients(
            model, batch, train_base=False
        )
        assert loss == pytest.approx(ref_loss, abs=ATOL)
        assert set(adapter_grads) == set(ref_adapter)
        for key in adapter_grads:
            np.testing.assert_allclose(
                adapter_grads[key], ref_adapter[key], atol=ATOL, err_msg=key
            )
