"""Unit tests for repro.tinylm.model — including numerical gradient checks."""

import numpy as np
import pytest

from repro.tinylm.fusion import PatchFusion
from repro.tinylm.lora import LoRAPatch
from repro.tinylm.model import EncodedExample, LORA_TARGETS, ModelConfig, ScoringLM


def _toy_batch(model, n=3):
    rng = np.random.default_rng(0)
    batch = []
    for i in range(n):
        prompt = " ".join(f"tok{rng.integers(40)}" for __ in range(6))
        candidates = [f"answer{j}" for j in range(3)]
        batch.append(model.encode_example(prompt, candidates, target=i % 3))
    return batch


class TestConfig:
    def test_target_shapes(self):
        config = ModelConfig(feature_dim=100, hidden_dim=10)
        shapes = config.target_shapes()
        assert shapes["encoder.W1"] == (10, 100)
        assert shapes["encoder.W2"] == (10, 10)
        assert shapes["answer.V"] == (10, 100)
        assert set(shapes) == set(LORA_TARGETS)


class TestForward:
    def test_logits_shape(self, tiny_model):
        logits = tiny_model.logits("a prompt", ["x", "y", "z"])
        assert logits.shape == (3,)

    def test_probabilities_sum_to_one(self, tiny_model):
        probs = tiny_model.probabilities("a prompt", ["x", "y"])
        assert probs.sum() == pytest.approx(1.0)

    def test_predict_returns_valid_index(self, tiny_model):
        assert tiny_model.predict("a prompt", ["x", "y"]) in (0, 1)

    def test_prediction_deterministic(self, tiny_model):
        first = tiny_model.predict("some prompt here", ["a", "b", "c"])
        second = tiny_model.predict("some prompt here", ["a", "b", "c"])
        assert first == second

    def test_copy_head_prefers_candidate_in_prompt(self, fresh_tiny_model):
        model = fresh_tiny_model
        model.weights["copy.gamma"][0] = 50.0  # exaggerate the copy path
        probs = model.probabilities(
            "text contains zanzibar somewhere", ["zanzibar", "quixote"]
        )
        assert probs[0] > probs[1]

    def test_sample_greedy_at_zero_temperature(self, tiny_model):
        greedy = tiny_model.predict("prompt", ["a", "b", "c"])
        assert tiny_model.sample("prompt", ["a", "b", "c"], temperature=0.0) == greedy

    def test_sample_respects_top_k_one(self, tiny_model):
        rng = np.random.default_rng(0)
        greedy = tiny_model.predict("prompt", ["a", "b", "c"])
        sampled = tiny_model.sample(
            "prompt", ["a", "b", "c"], temperature=1.0, top_k=1, rng=rng
        )
        assert sampled == greedy

    def test_sample_within_range(self, tiny_model):
        rng = np.random.default_rng(0)
        for __ in range(10):
            index = tiny_model.sample(
                "prompt", ["a", "b", "c"], temperature=2.0, rng=rng
            )
            assert 0 <= index < 3


class TestEncodedExample:
    def test_rejects_bad_target(self, tiny_model):
        candidates = tiny_model.encode_candidates(["a", "b"])
        with pytest.raises(ValueError):
            EncodedExample(prompt=np.zeros(256), candidates=candidates, target=5)

    def test_rejects_1d_candidates(self):
        with pytest.raises(ValueError):
            EncodedExample(prompt=np.zeros(4), candidates=np.zeros(4), target=0)


class TestAdapters:
    def test_attach_and_detach(self, fresh_tiny_model):
        model = fresh_tiny_model
        patch = LoRAPatch("p", model.config.target_shapes(), rank=2)
        model.attach(patch)
        assert model.adapter is patch
        assert model.detach() is patch
        assert model.adapter is None

    def test_attach_rejects_unknown_target(self, fresh_tiny_model):
        patch = LoRAPatch("p", {"nonexistent.W": (4, 4)}, rank=2)
        with pytest.raises(KeyError):
            fresh_tiny_model.attach(patch)

    def test_fresh_patch_is_noop(self, fresh_tiny_model):
        model = fresh_tiny_model
        before = model.logits("a prompt", ["x", "y"])
        model.attach(LoRAPatch("p", model.config.target_shapes(), rank=2))
        after = model.logits("a prompt", ["x", "y"])
        np.testing.assert_allclose(before, after)

    def test_merge_adapter_preserves_outputs(self, fresh_tiny_model):
        model = fresh_tiny_model
        patch = LoRAPatch("p", model.config.target_shapes(), rank=2, seed=4)
        # Give the patch a real update.
        for name in patch.A:
            patch.A[name] = np.random.default_rng(1).normal(
                0, 0.05, patch.A[name].shape
            )
        model.attach(patch)
        with_adapter = model.logits("prompt text", ["x", "y"])
        model.merge_adapter()
        assert model.adapter is None
        merged = model.logits("prompt text", ["x", "y"])
        np.testing.assert_allclose(with_adapter, merged)

    def test_clone_is_independent(self, fresh_tiny_model):
        clone = fresh_tiny_model.clone()
        clone.weights["encoder.b1"][0] = 99.0
        assert fresh_tiny_model.weights["encoder.b1"][0] != 99.0

    def test_num_parameters_positive(self, tiny_model):
        assert tiny_model.num_parameters() > 0


class TestGradients:
    """Numerical gradient checks — the backbone of trainer correctness."""

    @staticmethod
    def _loss(model, batch):
        loss, __, __ = model.loss_and_gradients(batch, train_base=False)
        return loss

    def test_base_gradients_match_numerical(self, fresh_tiny_model):
        model = fresh_tiny_model
        batch = _toy_batch(model)
        __, grads, __ = model.loss_and_gradients(batch, train_base=True)
        eps = 1e-6
        for name in ("encoder.W1", "encoder.W2", "answer.V", "encoder.b1",
                     "answer.b", "copy.gamma"):
            weight = model.weights[name]
            flat_index = 0 if weight.ndim <= 1 else (0, 0)
            original = weight[flat_index]
            weight[flat_index] = original + eps
            plus = self._loss(model, batch)
            weight[flat_index] = original - eps
            minus = self._loss(model, batch)
            weight[flat_index] = original
            numerical = (plus - minus) / (2 * eps)
            assert grads[name][flat_index] == pytest.approx(
                numerical, abs=1e-5
            ), name

    def test_lora_gradients_match_numerical(self, fresh_tiny_model):
        model = fresh_tiny_model
        patch = LoRAPatch("p", model.config.target_shapes(), rank=2, seed=9)
        for name in patch.A:  # non-zero A so B gradients flow
            patch.A[name] = np.random.default_rng(2).normal(0, 0.05, patch.A[name].shape)
        model.attach(patch)
        batch = _toy_batch(model)
        __, __, adapter_grads = model.loss_and_gradients(batch, train_base=False)
        eps = 1e-6
        for key, grad in adapter_grads.items():
            array = patch.parameters()[key]  # mutably aliased view
            original = array[0, 0]
            array[0, 0] = original + eps
            plus = self._loss(model, batch)
            array[0, 0] = original - eps
            minus = self._loss(model, batch)
            array[0, 0] = original
            numerical = (plus - minus) / (2 * eps)
            assert grad[0, 0] == pytest.approx(numerical, abs=1e-5), key

    def test_fusion_lambda_gradients_match_numerical(self, fresh_tiny_model):
        model = fresh_tiny_model
        shapes = model.config.target_shapes()
        rng = np.random.default_rng(3)
        patches = []
        for i in range(2):
            patch = LoRAPatch(f"p{i}", shapes, rank=2, seed=i)
            for name in patch.A:
                patch.A[name] = rng.normal(0, 0.05, patch.A[name].shape)
            patches.append(patch)
        fusion = PatchFusion(patches, LoRAPatch("new", shapes, rank=2, seed=7))
        model.attach(fusion)
        batch = _toy_batch(model)
        __, __, grads = model.loss_and_gradients(batch, train_base=False)
        eps = 1e-6
        lambda_grad = grads["fusion/lambdas"]
        for i in range(2):
            original = fusion.lambdas[i]
            fusion.lambdas[i] = original + eps
            plus = self._loss(model, batch)
            fusion.lambdas[i] = original - eps
            minus = self._loss(model, batch)
            fusion.lambdas[i] = original
            numerical = (plus - minus) / (2 * eps)
            assert lambda_grad[i] == pytest.approx(numerical, abs=1e-5)

    def test_empty_batch_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.loss_and_gradients([])


def _fused(model, n_patches=2, seed=3):
    shapes = model.config.target_shapes()
    rng = np.random.default_rng(seed)
    patches = []
    for i in range(n_patches):
        patch = LoRAPatch(f"p{i}", shapes, rank=2, seed=i)
        for name in patch.A:
            patch.A[name] = rng.normal(0, 0.05, patch.A[name].shape)
        patches.append(patch)
    fusion = PatchFusion(patches, LoRAPatch("new", shapes, rank=2, seed=7))
    model.attach(fusion)
    return fusion


class TestWeightMemo:
    """effective_weight memoisation keyed on the adapter version."""

    def test_repeated_reads_share_one_materialisation(self, fresh_tiny_model):
        model = fresh_tiny_model
        _fused(model)
        first = model.effective_weight("encoder.W1")
        second = model.effective_weight("encoder.W1")
        assert first is second

    def test_bump_invalidates_after_inplace_mutation(self, fresh_tiny_model):
        model = fresh_tiny_model
        fusion = _fused(model)
        stale = model.effective_weight("encoder.W1")
        fusion.lambdas[:] = 5.0
        # Without a bump the memo serves the stale array by design...
        assert model.effective_weight("encoder.W1") is stale
        # ...and the version bump is exactly what invalidates it.
        model.bump_adapter_version()
        fresh = model.effective_weight("encoder.W1")
        assert fresh is not stale
        assert not np.allclose(fresh, stale)

    def test_attach_detach_invalidate(self, fresh_tiny_model):
        model = fresh_tiny_model
        base = model.effective_weight("encoder.W1").copy()
        fusion = _fused(model)
        with_delta = model.effective_weight("encoder.W1")
        assert not np.allclose(with_delta, base)
        model.detach()
        np.testing.assert_array_equal(
            model.effective_weight("encoder.W1"), base
        )
        assert fusion is not None

    def test_exact_weights_bypasses_memo(self, fresh_tiny_model, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_WEIGHTS", "1")
        model = fresh_tiny_model
        _fused(model)
        first = model.effective_weight("encoder.W1")
        second = model.effective_weight("encoder.W1")
        assert first is not second
        np.testing.assert_array_equal(first, second)

    def test_pickle_drops_memo_and_roundtrips(self, fresh_tiny_model):
        import pickle

        model = fresh_tiny_model
        _fused(model)
        model.effective_weight("encoder.W1")  # populate the memo
        restored = pickle.loads(pickle.dumps(model))
        np.testing.assert_allclose(
            restored.logits("a prompt", ["x", "y"]),
            model.logits("a prompt", ["x", "y"]),
        )


class TestFrozenActivations:
    """The rank-space engine matches the dense path on the same batch."""

    def test_loss_matches_dense(self, fresh_tiny_model):
        model = fresh_tiny_model
        _fused(model)
        batch = _toy_batch(model, n=5)
        frozen = model.frozen_activations(batch)
        dense = model.evaluate_loss(batch)
        rank = model.rank_evaluate_loss(frozen.full())
        assert rank == pytest.approx(dense, rel=1e-9)

    def test_gradients_match_dense(self, fresh_tiny_model):
        model = fresh_tiny_model
        _fused(model)
        batch = _toy_batch(model, n=5)
        frozen = model.frozen_activations(batch)
        dense_loss, __, dense_grads = model.loss_and_gradients(
            batch, train_base=False
        )
        rank_loss, base_grads, rank_grads = model.rank_loss_and_gradients(
            frozen.full()
        )
        assert base_grads == {}
        assert rank_loss == pytest.approx(dense_loss, rel=1e-9)
        assert rank_grads.keys() == dense_grads.keys()
        for key in dense_grads:
            np.testing.assert_allclose(
                rank_grads[key], dense_grads[key], rtol=1e-9, atol=1e-12
            )

    def test_batch_view_matches_subset(self, fresh_tiny_model):
        model = fresh_tiny_model
        _fused(model)
        batch = _toy_batch(model, n=6)
        frozen = model.frozen_activations(batch)
        indices = np.array([4, 1, 3])
        subset = [batch[i] for i in indices]
        dense_loss, __, dense_grads = model.loss_and_gradients(
            subset, train_base=False
        )
        rank_loss, __, rank_grads = model.rank_loss_and_gradients(
            frozen.batch(indices)
        )
        assert rank_loss == pytest.approx(dense_loss, rel=1e-9)
        for key in dense_grads:
            np.testing.assert_allclose(
                rank_grads[key], dense_grads[key], rtol=1e-9, atol=1e-12
            )

    def test_empty_dataset_rejected(self, fresh_tiny_model):
        with pytest.raises(ValueError):
            fresh_tiny_model.frozen_activations([])


class TestBoundedCaches:
    """The featurization memos are LRU-bounded (serving memory hygiene)."""

    def _spin(self, model, n):
        for i in range(n):
            model.predict(f"prompt number {i}", [f"cand {i} a", f"cand {i} b"])

    def test_candidate_cache_respects_bound(self):
        model = ScoringLM(
            ModelConfig(name="lru", feature_dim=64, hidden_dim=8),
            candidate_cache_size=6,
        )
        self._spin(model, 20)
        assert len(model._candidate_cache) <= 6

    def test_prompt_cache_respects_bound(self):
        model = ScoringLM(
            ModelConfig(name="lru", feature_dim=64, hidden_dim=8),
            prompt_cache_size=5,
        )
        self._spin(model, 20)
        assert len(model._prompt_cache) <= 5
        assert "prompt number 19" in model._prompt_cache  # LRU keeps newest

    def test_env_bounds_all_caches(self, monkeypatch):
        monkeypatch.setenv("REPRO_LRU_SIZE", "4")
        model = ScoringLM(ModelConfig(name="lru-env", feature_dim=64, hidden_dim=8))
        assert model.candidate_cache_size == 4
        assert model.prompt_cache_size == 4
        assert model.featurizer.cache_size == 4
        self._spin(model, 12)
        sizes = model.cache_sizes()
        assert sizes["candidate"] <= 4
        assert sizes["prompt"] <= 4
        assert sizes["featurizer_sparse"] <= 4

    def test_explicit_sizes_survive_clone(self):
        model = ScoringLM(
            ModelConfig(name="lru-clone", feature_dim=64, hidden_dim=8),
            candidate_cache_size=9,
            prompt_cache_size=7,
        )
        copy = model.clone()
        assert copy.candidate_cache_size == 9
        assert copy.prompt_cache_size == 7

    def test_eviction_does_not_change_predictions(self):
        config = ModelConfig(name="lru-parity", feature_dim=64, hidden_dim=8)
        bounded = ScoringLM(config, candidate_cache_size=2, prompt_cache_size=2)
        unbounded = ScoringLM(config)
        prompts = [f"the quick prompt {i}" for i in range(8)]
        pools = [[f"yes {i}", f"no {i}", f"maybe {i}"] for i in range(8)]
        # Two passes so the bounded model replays through evictions.
        for __ in range(2):
            got = [bounded.predict(p, c) for p, c in zip(prompts, pools)]
            want = [unbounded.predict(p, c) for p, c in zip(prompts, pools)]
            assert got == want

    def test_emit_cache_gauges_records_obs(self, tmp_path):
        from repro import obs

        model = ScoringLM(ModelConfig(name="lru-obs", feature_dim=64, hidden_dim=8))
        model.predict("warm the caches", ["a", "b"])
        tracer = obs.Tracer(tmp_path / "trace.jsonl")
        with obs.using_tracer(tracer):
            sizes = model.emit_cache_gauges()
        assert sizes == model.cache_sizes()
        gauge_names = {name for name, __ in tracer.gauges}
        assert "model.cache_size" in gauge_names
        labels = {
            dict(attrs).get("cache")
            for name, attrs in tracer.gauges
            if name == "model.cache_size"
        }
        assert {"candidate", "prompt", "featurizer_sparse"} <= labels
