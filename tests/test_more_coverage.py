"""Additional branch-coverage tests across modules."""

import numpy as np
import pytest

from repro.data.schema import Example, Record
from repro.knowledge.rules import Knowledge
from repro.tinylm.fusion import PatchFusion
from repro.tinylm.lora import LoRAPatch
from repro.tinylm.model import ModelConfig, ScoringLM
from repro.tinylm.trainer import TrainConfig, Trainer, TrainingExample


class TestTrainerBranches:
    def test_no_shuffle_keeps_order_effects_deterministic(self):
        examples = [
            TrainingExample(f"prompt {i}", ("a", "b"), i % 2) for i in range(8)
        ]
        weights = []
        for __ in range(2):
            model = ScoringLM(
                ModelConfig(name="ns", feature_dim=64, hidden_dim=8, seed=2)
            )
            Trainer(
                model, TrainConfig(epochs=1, shuffle=False, seed=0)
            ).fit(examples)
            weights.append(model.weights["encoder.W1"].copy())
        np.testing.assert_array_equal(weights[0], weights[1])

    def test_step_updates_adapter_params_only_when_attached(self):
        model = ScoringLM(ModelConfig(name="st", feature_dim=64, hidden_dim=8, seed=2))
        trainer = Trainer(model, TrainConfig(seed=0), train_base=False)
        encoded = [model.encode_example("p q", ("a", "b"), 0)]
        before = model.weights["encoder.W1"].copy()
        trainer.step(encoded)  # no adapter attached: nothing to train
        np.testing.assert_array_equal(model.weights["encoder.W1"], before)


class TestModelBranches:
    def test_merge_fusion_adapter(self):
        model = ScoringLM(ModelConfig(name="mf", feature_dim=64, hidden_dim=8, seed=2))
        shapes = model.config.target_shapes()
        patch = LoRAPatch("p", shapes, rank=2, seed=1)
        patch.A["encoder.W1"] = np.full((2, 64), 0.01)
        fusion = PatchFusion([patch], LoRAPatch("new", shapes, rank=2, seed=3))
        fusion.lambdas[:] = [0.5]
        model.attach(fusion)
        with_adapter = model.logits("x y z", ["a", "b"])
        model.merge_adapter()
        np.testing.assert_allclose(
            model.logits("x y z", ["a", "b"]), with_adapter
        )

    def test_merge_without_adapter_is_noop(self, fresh_tiny_model):
        before = {k: v.copy() for k, v in fresh_tiny_model.weights.items()}
        fresh_tiny_model.merge_adapter()
        for name, value in fresh_tiny_model.weights.items():
            np.testing.assert_array_equal(value, before[name])

    def test_clone_with_rename(self, tiny_model):
        clone = tiny_model.clone(name="renamed")
        assert clone.config.name == "renamed"
        assert clone.config.feature_dim == tiny_model.config.feature_dim

    def test_candidate_cache_reuses_vectors(self, fresh_tiny_model):
        first = fresh_tiny_model.encode_candidates(["hello world"])
        cached = fresh_tiny_model._candidate_cache["hello world"]
        second = fresh_tiny_model.encode_candidates(["hello world"])
        assert second[0] is not first  # stacked copies...
        np.testing.assert_array_equal(second[0], cached)


class TestClosedModelBranches:
    def test_em_fallback_without_key_markers(self):
        from repro.baselines.closed import CLOSED_MODELS, ClosedSourceLLM

        left = Record.from_dict({"title": "alpha beta gamma", "price": "9"})
        right = Record.from_dict({"title": "alpha beta gamma", "price": "11"})
        example = Example(
            task="em", inputs={"left": left, "right": right}, answer="yes"
        )
        # No demonstrations → no induced key rules → similarity fallback.
        model = ClosedSourceLLM(CLOSED_MODELS["gpt-4"], "em", [], seed=1)
        assert model._heuristic(example) == "yes"

    def test_ed_without_applicable_rules_says_no(self):
        from repro.baselines.closed import CLOSED_MODELS, ClosedSourceLLM

        record = Record.from_dict({"a": "fine", "b": "alsofine"})
        example = Example(
            task="ed", inputs={"record": record, "attribute": "a"}, answer="no"
        )
        model = ClosedSourceLLM(CLOSED_MODELS["gpt-4"], "ed", [], seed=1)
        assert model._heuristic(example) == "no"

    def test_sm_heuristic_equal_names(self):
        from repro.baselines.closed import CLOSED_MODELS, ClosedSourceLLM

        example = Example(
            task="sm",
            inputs={
                "left_name": "dob", "left_desc": "date of birth",
                "right_name": "dob", "right_desc": "date the person was born",
            },
            answer="yes",
        )
        model = ClosedSourceLLM(CLOSED_MODELS["gpt-4o"], "sm", [], seed=1)
        assert model._heuristic(example) == "yes"


class TestReportingBranches:
    def test_render_table_missing_cells(self):
        from repro.eval.reporting import render_table

        rows = [{"dataset": "a", "x": 1.0}, {"dataset": "b"}]
        text = render_table("T", ["x"], rows)
        assert "a" in text and "b" in text

    def test_render_series_alignment(self):
        from repro.eval.reporting import render_series

        text = render_series("T", "n", [1000], {"long-method-name": [99.999]})
        lines = text.splitlines()
        assert len(lines) == 3
        assert "100.00" in text or "99.99" in text or "100.0" in text


class TestKnowledgeEdgeBranches:
    def test_value_range_non_numeric_violates(self):
        from repro.knowledge.apply import MARKER_RANGE, cell_markers
        from repro.knowledge.rules import ValueRange

        record = Record.from_dict({"age": "abc"})
        knowledge = Knowledge(rules=(ValueRange("age", 0, 100),))
        assert cell_markers(record, "age", knowledge) == [MARKER_RANGE]

    def test_pair_markers_empty_knowledge(self):
        from repro.knowledge.apply import pair_markers

        left = Record.from_dict({"a": "1"})
        assert pair_markers(left, left, Knowledge.empty()) == []

    def test_column_hints_unknown_pattern_raises(self):
        from repro.knowledge.apply import _matches_pattern

        with pytest.raises(ValueError):
            _matches_pattern("unknown_pattern", "value")


class TestMELDBranches:
    def test_router_temperature_sharpness(self, bundle, fast_config, beer_splits):
        from repro.baselines.meld import fit_meld

        meld = fit_meld(bundle, beer_splits, fast_config.skc)
        features = meld.model.encode_prompt("a beer record with style ipa")
        sharp = meld._route(features)
        meld.router_temperature = 10.0
        flat = meld._route(features)
        # Sharper temperature concentrates more mass on the top expert.
        assert sharp.max() >= flat.max()
