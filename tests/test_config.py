"""Tests for the configuration dataclasses."""

import pytest

from repro.core.config import AKBConfig, KnowTransConfig, SKCConfig
from repro.core.skc.lorahub import LoRAHubConfig


class TestSKCConfig:
    def test_train_config_factories(self):
        config = SKCConfig(patch_epochs=7, finetune_epochs=9, batch_size=2)
        assert config.patch_train_config().epochs == 7
        assert config.finetune_train_config().epochs == 9
        assert config.patch_train_config().batch_size == 2

    def test_defaults_match_paper_analogues(self):
        config = SKCConfig()
        assert config.lora_rank >= 1
        assert config.train_lambdas and config.train_patches

    def test_frozen(self):
        with pytest.raises(Exception):
            SKCConfig().lora_rank = 99  # frozen dataclass


class TestAKBConfig:
    def test_paper_knob_analogues(self):
        config = AKBConfig()
        assert config.generation_examples == 10  # paper: 10 gen examples
        assert config.iterations == 3  # paper: 3 iterations
        assert config.error_samples == 5  # paper: 5 error samples
        assert config.temperature == pytest.approx(0.9)  # paper GPT temp


class TestKnowTransConfig:
    def test_fast_preset_lighter_than_default(self):
        fast, default = KnowTransConfig.fast(), KnowTransConfig()
        assert fast.skc.finetune_epochs <= default.skc.finetune_epochs
        assert fast.akb.pool_size <= default.akb.pool_size

    def test_composition(self):
        config = KnowTransConfig(skc=SKCConfig(lora_rank=2))
        assert config.skc.lora_rank == 2
        assert isinstance(config.akb, AKBConfig)


class TestLoRAHubConfig:
    def test_defaults(self):
        config = LoRAHubConfig()
        assert config.iterations > 0
        assert config.lambda_bounds[0] < config.lambda_bounds[1]
