"""Tests for the evaluation harness, reporting, and experiment registry."""

import pytest

from repro.eval import experiments, harness, reporting


class TestHarness:
    def test_load_splits_cached(self):
        a = harness.load_splits("ed/beer", count=60, seed=3)
        b = harness.load_splits("ed/beer", count=60, seed=3)
        assert a is b

    def test_load_splits_keyed_on_few_shot(self):
        # Regression: the memo key used to omit ``few_shot``, so the
        # second call silently returned the first call's splits.
        a = harness.load_splits("ed/beer", count=60, seed=3, few_shot=20)
        b = harness.load_splits("ed/beer", count=60, seed=3, few_shot=10)
        assert a is not b
        assert len(a.few_shot) == 20
        assert len(b.few_shot) == 10

    def test_evaluate_method_uses_predict_batch(self, beer_splits):
        class Batched:
            called = False

            def predict(self, example):  # pragma: no cover - must not run
                raise AssertionError("per-example path used")

            def predict_batch(self, examples):
                Batched.called = True
                return ["no"] * len(examples)

        score = harness.evaluate_method(
            Batched(), beer_splits.test.examples, "ed"
        )
        assert Batched.called
        assert score == 0.0

    def test_adapt_single(self, base_model, fast_config, beer_splits):
        adapted = harness.adapt_single(base_model, beer_splits.few_shot, fast_config.skc)
        assert adapted.predict(beer_splits.test.examples[0]) in ("yes", "no")

    def test_evaluate_method_protocol(self, beer_splits):
        class Majority:
            def predict(self, example):
                return "no"

        score = harness.evaluate_method(Majority(), beer_splits.test.examples, "ed")
        assert score == 0.0  # no true positives


class TestReporting:
    def test_render_table_alignment(self):
        rows = [
            {"dataset": "a", "x": 1.234, "y": "text"},
            {"dataset": "bb", "x": 10.0, "y": "t"},
        ]
        text = reporting.render_table("Title", ["x", "y"], rows)
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "1.23" in text and "10.00" in text

    def test_averages_row_skips_non_numeric(self):
        rows = [{"dataset": "a", "x": 2.0, "y": "n/a"}, {"dataset": "b", "x": 4.0}]
        average = reporting.averages_row(rows, ["x", "y"])
        assert average["x"] == pytest.approx(3.0)
        assert "y" not in average

    def test_render_series(self):
        text = reporting.render_series(
            "Fig", "n", [20, 50], {"m1": [1.0, 2.0], "m2": [3.0, 4.0]}
        )
        assert "Fig" in text and "m1" in text and "4.00" in text


class TestExperimentContext:
    def test_presets(self):
        quick = experiments.ExperimentContext.quick()
        paper = experiments.ExperimentContext.paper()
        assert quick.data_scale < paper.data_scale

    def test_dataset_constants(self):
        assert len(experiments.ALL_DATASETS) == 13
        assert len(experiments.NOVEL_DATASET_IDS) == 8
        assert len(experiments.NOVEL_TASK_IDS) == 5
        assert set(experiments.ABLATION_DATASETS) <= set(experiments.ALL_DATASETS)


@pytest.fixture(scope="module")
def quick_ctx():
    ctx = experiments.ExperimentContext.quick()
    # Share the session bundle scale so tests reuse the cached pipeline.
    ctx.upstream_scale = 0.3
    return ctx


class TestExperiments:
    """Each registry entry runs end-to-end at the quick preset."""

    def test_table1(self, quick_ctx):
        result = experiments.table1_dataset_statistics(quick_ctx)
        assert len(result["rows"]) == 13
        assert "Table I" in result["text"]

    def test_table7(self, quick_ctx):
        result = experiments.table7_upstream_statistics(quick_ctx)
        assert len(result["rows"]) == 12

    def test_table2_single_dataset(self, quick_ctx):
        result = experiments.table2_open_source_comparison(
            quick_ctx, dataset_ids=["ed/beer"]
        )
        row = result["rows"][0]
        for column in ("non_llm", "mistral", "jellyfish", "knowtrans"):
            assert 0.0 <= row[column] <= 100.0

    def test_table3_cost(self, quick_ctx):
        result = experiments.table3_cost_analysis(quick_ctx, sample=6)
        by_name = {row["dataset"]: row for row in result["rows"]}
        assert by_name["knowtrans"]["input_tokens"] < by_name["gpt-4"]["input_tokens"]
        assert (
            by_name["knowtrans"]["cost_per_instance"]
            < by_name["gpt-4"]["cost_per_instance"]
        )

    def test_table5_single_dataset(self, quick_ctx):
        result = experiments.table5_ablation(quick_ctx, dataset_ids=["dc/beer"])
        row = result["rows"][0]
        assert set(row) >= {"wo_skc_akb", "wo_skc", "wo_akb", "knowtrans"}

    def test_table6_single_dataset(self, quick_ctx):
        result = experiments.table6_weight_strategies(
            quick_ctx, dataset_ids=["ed/beer"]
        )
        row = result["rows"][0]
        assert set(row) >= {"single", "uniform", "adaptive", "knowtrans"}

    def test_fig4_series_shape(self, quick_ctx):
        result = experiments.fig4_scalability(
            quick_ctx, dataset_ids=["dc/beer"], instance_counts=(20, 40)
        )
        series = result["series"]["dc/beer"]
        assert series["counts"] == [20, 40]
        assert len(series["jellyfish"]) == len(series["knowtrans"]) == 2

    def test_fig7_curves(self, quick_ctx):
        result = experiments.fig7_refinement_rounds(
            quick_ctx, dataset_ids=["ed/beer"], rounds=2
        )
        series = result["series"]["ed/beer"]
        assert len(series["eval"]) == 2
        assert len(series["test"]) == 2
