"""Unit tests for repro.knowledge.validators."""

import pytest

from repro.knowledge import validators


class TestValidators:
    @pytest.mark.parametrize(
        "name,value,expected",
        [
            ("time_12h", "7:10 a.m. dec 1", True),
            ("time_12h", "12:59 p.m. jan 28", True),
            ("time_12h", "19:10 dec 1", False),
            ("time_12h", "7:10 dec 1", False),
            ("iso_date", "2015-04-03", True),
            ("iso_date", "4/3/15", False),
            ("iso_date", "2015-4-3", False),
            ("issn", "1234-5678", True),
            ("issn", "12345678", False),
            ("issn", "nan", False),
            ("flight_code", "aa-1007-ord-phx", True),
            ("flight_code", "aa 1007 ord phx", False),
            ("pagination", "120-131", True),
            ("pagination", "120", False),
            ("unit_decimal", "0.05", True),
            ("unit_decimal", "0.05%", False),
            ("unit_decimal", "5.0", False),
            ("integer", "42", True),
            ("integer", "42.5x", False),
            ("integer", "nan", False),
            ("numeric", "19.2", True),
            ("numeric", "abc", False),
            ("no_percent", "0.05", True),
            ("no_percent", "0.05%", False),
            ("not_missing", "hello", True),
            ("not_missing", "nan", False),
            ("not_missing", "N/A", False),
            ("phone_spaced", "303 555 0147", True),
            ("phone_spaced", "303-555-0147", False),
        ],
    )
    def test_validator_cases(self, name, value, expected):
        assert validators.validate(name, value) is expected

    def test_unknown_validator(self):
        with pytest.raises(KeyError):
            validators.validate("nope", "x")

    def test_describe(self):
        assert "percent" in validators.describe("unit_decimal")
        with pytest.raises(KeyError):
            validators.describe("nope")

    def test_case_and_whitespace_insensitive(self):
        assert validators.validate("iso_date", "  2015-04-03  ")


class TestBanks:
    def test_known_banks_exist(self):
        for bank in ("cities", "beer_styles", "phone_brands", "journal_titles"):
            assert bank in validators.BANKS
            assert len(validators.BANKS[bank]) > 3

    def test_bank_contains_single_word(self):
        assert validators.bank_contains("cities", "portland")
        assert not validators.bank_contains("cities", "portlandia")

    def test_bank_contains_multiword_value(self):
        assert validators.bank_contains("beer_styles", "american ipa")

    def test_bank_contains_composed_words(self):
        # Word-level membership: composed names of in-bank words pass.
        assert validators.bank_contains("brewery_words", "hoppy trail brewery")

    def test_bank_contains_unknown_bank(self):
        with pytest.raises(KeyError):
            validators.bank_contains("nope", "x")

    def test_typo_fails_bank(self):
        assert not validators.bank_contains("beer_styles", "american ipaa")
