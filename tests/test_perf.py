"""Tests for the perf observability registry (repro.perf)."""

import json

import pytest

from repro.perf import PerfRegistry, render_benchmark


class TestPerfRegistry:
    def test_counters_accumulate(self):
        perf = PerfRegistry()
        perf.count("x")
        perf.count("x", 4)
        assert perf.counter("x") == 5
        assert perf.counter("missing") == 0

    def test_timer_context_accumulates(self):
        perf = PerfRegistry()
        with perf.timer("t"):
            pass
        with perf.timer("t"):
            pass
        snap = perf.snapshot()
        assert snap["timers"]["t"]["calls"] == 2
        assert snap["timers"]["t"]["seconds"] >= 0.0

    def test_hit_rate(self):
        perf = PerfRegistry()
        perf.count("hits", 3)
        perf.count("misses", 1)
        assert perf.hit_rate("hits", "misses") == pytest.approx(0.75)
        assert perf.hit_rate("nope", "nada") == 0.0

    def test_throughput(self):
        perf = PerfRegistry()
        perf.count("examples", 100)
        perf.add_time("work", 2.0)
        assert perf.throughput("examples", "work") == pytest.approx(50.0)
        assert perf.throughput("examples", "missing") == 0.0

    def test_reset(self):
        perf = PerfRegistry()
        perf.count("x")
        perf.add_time("t", 1.0)
        perf.reset()
        assert perf.snapshot() == {"counters": {}, "timers": {}}

    def test_snapshot_is_json_serialisable(self):
        perf = PerfRegistry()
        perf.count("featurizer.sparse_misses", 7)
        with perf.timer("model.forward"):
            pass
        json.dumps(perf.snapshot())

    def test_report_renders_derived_rates(self):
        perf = PerfRegistry()
        perf.count("featurizer.sparse_hits", 9)
        perf.count("featurizer.sparse_misses", 1)
        perf.count("model.examples", 10)
        perf.add_time("model.forward", 0.5)
        report = perf.report()
        assert "featurizer sparse cache hit-rate" in report
        assert "90.0%" in report
        assert "scored examples/sec" in report


class TestInstrumentation:
    def test_model_paths_record_counters(self):
        from repro.perf import PERF
        from repro.tinylm.model import ModelConfig, ScoringLM

        model = ScoringLM(
            ModelConfig(name="perf-test", feature_dim=128, hidden_dim=8)
        )
        PERF.reset()
        model.predict_batch(
            ["one prompt", "two prompt"], [["a", "b"], ["c", "d", "e"]]
        )
        assert PERF.counter("model.batches") == 1
        assert PERF.counter("model.examples") == 2
        assert PERF.counter("model.candidates") == 5
        assert PERF.seconds("model.forward") > 0.0
        # Second identical call is served from the featurization caches.
        model.predict_batch(
            ["one prompt", "two prompt"], [["a", "b"], ["c", "d", "e"]]
        )
        assert PERF.counter("model.prompt_hits") == 2
        assert PERF.counter("model.candidate_hits") == 5

    def test_frozen_backbone_fit_never_materialises_weights(self):
        """A rank-space fit must record zero dense weight builds."""
        import numpy as np

        from repro.perf import PERF
        from repro.tinylm.fusion import PatchFusion
        from repro.tinylm.lora import LoRAPatch
        from repro.tinylm.model import ModelConfig, ScoringLM
        from repro.tinylm.trainer import TrainConfig, Trainer, TrainingExample

        model = ScoringLM(
            ModelConfig(name="perf-train", feature_dim=128, hidden_dim=8, seed=0)
        )
        shapes = model.config.target_shapes()
        patches = []
        for i in range(2):
            patch = LoRAPatch(f"up{i}", shapes, rank=2, seed=i)
            rng = np.random.default_rng(i)
            for key in patch.A:
                patch.A[key] = rng.normal(0.0, 0.02, patch.A[key].shape)
            patches.append(patch)
        model.attach(
            PatchFusion(patches, LoRAPatch("new", shapes, rank=2, seed=9))
        )
        examples = [
            TrainingExample(f"prompt number {i}", ("yes", "no"), target=i % 2)
            for i in range(8)
        ]
        PERF.reset()
        report = Trainer(
            model, TrainConfig(epochs=2, seed=1), train_base=False
        ).fit(examples)
        assert report.rank_space
        assert PERF.counter("train.rank_space_steps") == len(report.step_losses) > 0
        assert PERF.counter("train.frozen_builds") == 1  # once per fit, not per step
        assert PERF.counter("model.weight_materializations") == 0
        # The dense opt-out does materialise, so the counter is live.
        PERF.reset()
        Trainer(
            model,
            TrainConfig(epochs=1, seed=1),
            train_base=False,
            rank_space=False,
        ).fit(examples)
        assert PERF.counter("model.weight_materializations") > 0

    def test_render_benchmark_format(self):
        result = {
            "workload": "em/abt_buy",
            "examples": 10,
            "candidates": 20,
            "repeats": 3,
            "per_example": {"seconds": 1.0, "examples_per_sec": 10.0},
            "batched": {"seconds": 0.1, "examples_per_sec": 100.0},
            "cold": {"per_example_seconds": 1.5, "batched_seconds": 0.5},
            "speedup": 10.0,
            "predictions_identical": True,
        }
        text = render_benchmark(result)
        assert "10.0x" in text
        assert "em/abt_buy" in text
        assert "predictions identical: True" in text


class TestCLI:
    def test_perf_command_runs(self, capsys):
        from repro.cli import main

        code = main(
            [
                "perf",
                "--dataset",
                "ed/beer",
                "--count",
                "40",
                "--repeats",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "batched inference benchmark" in out
        assert "speedup" in out
