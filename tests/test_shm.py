"""The zero-copy shared-memory layer: arena, codec, slabs, leak safety.

Everything here runs against real ``multiprocessing.shared_memory``
segments (skipped wholesale where the transport is unavailable), and
every test asserts the leak invariant both through the runtime's own
ledger (:func:`live_segments`) and through the kernel's (``/dev/shm``).
"""

from __future__ import annotations

import os
import pathlib
import pickle

import numpy as np
import pytest

from repro.perf import PERF
from repro.runtime import (
    ResultSlab,
    ShmArena,
    WorkerPool,
    dumps_shared,
    live_segments,
    loads_shared,
    shm_available,
)
from repro.tinylm.trainer import Trainer, TrainingExample

pytestmark = pytest.mark.skipif(
    not shm_available(),
    reason="needs fork start method + multiprocessing.shared_memory",
)


def _kernel_segments():
    """``repro-*`` segment files the kernel currently exposes."""
    shm_root = pathlib.Path("/dev/shm")
    if not shm_root.is_dir():
        return []
    return sorted(p.name for p in shm_root.glob("*repro-*"))


def _score_task(item):
    scores = item["features"] @ item["weights"]
    order = np.argsort(-scores, kind="stable")[:4]
    return {"indices": order, "scores": scores[order]}


def _crash_task(item):
    if item.get("crash"):
        os._exit(13)
    return _score_task(item)


def _array_items(n=6, rows=64, cols=48, seed=7):
    rng = np.random.default_rng(seed)
    shared = rng.standard_normal((rows, cols))
    return [
        {"features": shared, "weights": rng.standard_normal(cols)}
        for __ in range(n)
    ]


# ----------------------------------------------------------------------
# Arena: keyed slots, generations, identity memo
# ----------------------------------------------------------------------
def test_arena_put_resolves_readonly_view():
    arr = np.arange(2048, dtype=np.float64).reshape(32, 64)
    with ShmArena() as arena:
        block = arena.put("weights", arr)
        view = block.resolve()
        assert np.array_equal(view, arr)
        assert not view.flags.writeable
        copied = block.resolve(copy=True)
        assert copied.flags.writeable
        del view
    assert not live_segments()


def test_arena_overwrite_bumps_generation_and_stales_old_blocks():
    arr = np.ones((16, 16))
    with ShmArena() as arena:
        old = arena.put("w", arr)
        assert arena.generation("w") == 0
        new = arena.put("w", arr * 2.0)
        assert arena.generation("w") == 1
        assert np.array_equal(new.resolve(), arr * 2.0)
        with pytest.raises(RuntimeError, match="generation"):
            old.resolve()


def test_arena_overwrite_shape_mismatch_rejected():
    with ShmArena() as arena:
        arena.put("w", np.ones((4, 4)))
        with pytest.raises(ValueError, match="new key"):
            arena.put("w", np.ones((5, 4)))


def test_arena_rejects_object_dtype():
    with ShmArena() as arena:
        with pytest.raises(TypeError):
            arena.put("bad", np.array([object()]))


def test_arena_add_memoises_by_identity():
    arr = np.zeros((64, 64))
    other = np.zeros((64, 64))
    with ShmArena() as arena:
        first = arena.add(arr)
        again = arena.add(arr)
        assert again == first  # same segment, placed once
        assert len(arena) == 1
        assert arena.add(other) != first  # equal values, distinct object
        assert len(arena) == 2
        assert arena.data_bytes == arr.nbytes + other.nbytes


def test_arena_close_is_idempotent_and_clears_kernel_segments():
    before = _kernel_segments()
    arena = ShmArena()
    arena.put("w", np.ones((128, 128)))
    assert len(_kernel_segments()) == len(before) + 1
    arena.close()
    arena.close()
    assert _kernel_segments() == before
    with pytest.raises(RuntimeError, match="closed"):
        arena.put("x", np.ones(4))


# ----------------------------------------------------------------------
# Codec: skeleton blobs + mapped arrays
# ----------------------------------------------------------------------
def test_codec_round_trip_moves_large_arrays_out_of_band():
    big = np.arange(4096, dtype=np.float64)
    frozen = np.arange(4096, dtype=np.float64)
    frozen.setflags(write=False)
    small = np.arange(8, dtype=np.int64)
    payload = {"big": big, "frozen": frozen, "small": small, "tag": "x"}
    with ShmArena() as arena:
        blob = dumps_shared(payload, arena)
        # Only the two large arrays moved to segments; the blob carries
        # the skeleton plus the small inline array.
        assert len(arena) == 2
        assert len(blob) < big.nbytes
        out = loads_shared(blob)
        assert out["tag"] == "x"
        assert np.array_equal(out["small"], small)
        # Writable-at-sender arrays come back as private writable
        # copies; frozen arrays stay read-only views.
        assert np.array_equal(out["big"], big)
        assert out["big"].flags.writeable
        assert np.array_equal(out["frozen"], frozen)
        assert not out["frozen"].flags.writeable
        del out
    assert not live_segments()


def test_codec_blob_is_plain_pickle_when_arrays_are_small():
    payload = {"small": np.arange(4), "n": 3}
    with ShmArena() as arena:
        blob = dumps_shared(payload, arena)
        assert len(arena) == 0
        out = loads_shared(blob)
    assert np.array_equal(out["small"], payload["small"])


# ----------------------------------------------------------------------
# Result slabs
# ----------------------------------------------------------------------
def test_result_slab_append_and_overflow_fallback():
    slab = ResultSlab(capacity=64 * 1024)
    try:
        arr = np.arange(1024, dtype=np.float64)
        block, cursor = ResultSlab.append(slab.name, 0, arr)
        assert block is not None
        assert cursor > 0
        assert np.array_equal(block.resolve(copy=True), arr)
        huge = np.zeros(64 * 1024, dtype=np.float64)
        fallback, unchanged = ResultSlab.append(slab.name, cursor, huge)
        assert fallback is None  # no room: caller keeps the array inline
        assert unchanged == cursor
    finally:
        slab.destroy()
    assert not live_segments()


def test_result_slab_destroy_is_idempotent():
    slab = ResultSlab(capacity=4096)
    slab.destroy()
    slab.destroy()
    assert not live_segments()


# ----------------------------------------------------------------------
# Pool transport: identity, accounting, crash safety
# ----------------------------------------------------------------------
def test_shm_map_bit_identical_to_serial_and_pickle():
    items = _array_items()
    serial = WorkerPool(jobs=1).map(_score_task, items)
    shm = WorkerPool(jobs=2, clamp=False, payload_mode="shm").map(
        _score_task, items
    )
    legacy = WorkerPool(jobs=2, clamp=False, payload_mode="pickle").map(
        _score_task, items
    )
    for reference, candidate in zip(serial, shm):
        assert np.array_equal(reference["indices"], candidate["indices"])
        assert np.array_equal(reference["scores"], candidate["scores"])
    for reference, candidate in zip(serial, legacy):
        assert np.array_equal(reference["indices"], candidate["indices"])
        assert np.array_equal(reference["scores"], candidate["scores"])
    assert not live_segments()


def test_shm_map_payload_is_skeleton_sized():
    # cols=512 puts the per-task weight vectors (4 KiB) at the inline
    # threshold, so every array in the payload goes out-of-band.
    items = _array_items(rows=256, cols=512)
    array_bytes = sum(
        item["features"].nbytes + item["weights"].nbytes for item in items
    )
    before = PERF.counter("runtime.payload_bytes")
    before_shm = PERF.counter("runtime.shm_payload_bytes")
    WorkerPool(jobs=2, clamp=False, payload_mode="shm").map(
        _score_task, items
    )
    skeleton = PERF.counter("runtime.payload_bytes") - before
    segments = PERF.counter("runtime.shm_payload_bytes") - before_shm
    assert 0 < skeleton < array_bytes // 100
    # The shared features matrix lands in one segment, not one per task.
    assert (
        segments
        == items[0]["features"].nbytes
        + sum(item["weights"].nbytes for item in items)
    )


def test_pickle_map_counts_payload_from_single_serialization():
    """Satellite regression: payload_bytes is the real IPC byte count.

    The accounting used to run a second ``pickle.dumps`` pass over every
    argument; now the counter must equal exactly the bytes of the one
    serialization that crosses the boundary.
    """
    items = [{"features": np.arange(2048, dtype=np.float64), "n": i}
             for i in range(4)]
    expected = sum(
        len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
        for item in items
    )
    before = PERF.counter("runtime.payload_bytes")
    WorkerPool(jobs=2, clamp=False, payload_mode="pickle").map(
        _noop_task, items
    )
    assert PERF.counter("runtime.payload_bytes") - before == expected


def _noop_task(item):
    return item["n"]


def test_worker_crash_surfaces_and_leaks_nothing():
    kernel_before = _kernel_segments()
    items = _array_items(n=4)
    items[2] = {**items[2], "crash": True}
    pool = WorkerPool(jobs=2, clamp=False, payload_mode="shm")
    with pytest.raises(Exception):
        pool.map(_crash_task, items)
    assert not live_segments()
    assert _kernel_segments() == kernel_before


def test_env_override_selects_pickle_transport(monkeypatch):
    monkeypatch.setenv("REPRO_PAYLOAD", "pickle")
    assert WorkerPool(jobs=2, clamp=False).payload_mode == "pickle"
    monkeypatch.setenv("REPRO_PAYLOAD", "shm")
    assert WorkerPool(jobs=2, clamp=False).payload_mode == "shm"
    monkeypatch.setenv("REPRO_PAYLOAD", "carrier-pigeon")
    with pytest.raises(ValueError):
        WorkerPool(jobs=2, clamp=False)


# ----------------------------------------------------------------------
# Hot-array integration: backbone weights in the arena
# ----------------------------------------------------------------------
def test_model_export_adopt_round_trip(bundle):
    model = bundle.base_model.clone()
    reference = {k: np.copy(v) for k, v in model.weights.items()}
    arena = ShmArena()
    try:
        blocks = model.export_weights(arena, prefix="test")
        assert len(blocks) == len(reference)
        adopted = model.clone()
        adopted.adopt_weights(blocks)
        for name, expected in reference.items():
            assert np.array_equal(adopted.weights[name], expected)
            assert not adopted.weights[name].flags.writeable
        # Scoring through shm-backed weights matches private weights.
        prompt, cands = "match these records", ["yes", "no"]
        assert np.array_equal(
            model.logits(prompt, cands), adopted.logits(prompt, cands)
        )
    finally:
        # The arena owns the segments the adopted weights view; the
        # views must be dropped before the owner closes (the documented
        # lifetime contract for adopt_weights).
        del adopted, blocks
        arena.close()
    assert not live_segments()


def test_trainer_refuses_base_updates_on_adopted_weights(bundle):
    model = bundle.base_model.clone()
    arena = ShmArena()
    try:
        model.adopt_weights(model.export_weights(arena, prefix="guard"))
        trainer = Trainer(model, train_base=True)
        example = TrainingExample(
            prompt="p", candidates=("a", "b"), target=0
        )
        with pytest.raises(RuntimeError, match="read-only"):
            trainer.fit([example])
    finally:
        del trainer, model
        arena.close()


def test_adopt_weights_validates_missing_and_mismatched(bundle):
    model = bundle.base_model.clone()
    with ShmArena() as arena:
        blocks = model.export_weights(arena, prefix="v")
        some_key = next(iter(blocks))
        incomplete = dict(blocks)
        del incomplete[some_key]
        with pytest.raises(KeyError):
            model.clone().adopt_weights(incomplete)
        del blocks, incomplete
