"""Unit tests for repro.tinylm.trainer."""

import numpy as np
import pytest

from repro.tinylm.fusion import PatchFusion
from repro.tinylm.lora import LoRAPatch
from repro.tinylm.model import ModelConfig, ScoringLM
from repro.tinylm.trainer import TrainConfig, Trainer, TrainingExample


def _separable_examples(n=80, seed=0):
    rng = np.random.default_rng(seed)
    colors = ("red", "blue")
    examples = []
    for __ in range(n):
        color = colors[int(rng.integers(2))]
        noise = " ".join(str(rng.integers(50)) for __ in range(4))
        examples.append(
            TrainingExample(
                prompt=f"item color {color} {noise}",
                candidates=("warm", "cold"),
                target=0 if color == "red" else 1,
            )
        )
    return examples


@pytest.fixture()
def model():
    return ScoringLM(ModelConfig(name="trainer-test", feature_dim=256, hidden_dim=24, seed=5))


class TestTrainingExample:
    def test_rejects_out_of_range_target(self):
        with pytest.raises(ValueError):
            TrainingExample("p", ("a", "b"), target=2)

    def test_accepts_valid(self):
        ex = TrainingExample("p", ("a", "b"), target=1)
        assert ex.candidates == ("a", "b")


class TestFit:
    def test_loss_decreases(self, model):
        trainer = Trainer(model, TrainConfig(epochs=4, seed=1))
        report = trainer.fit(_separable_examples())
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_learns_separable_task(self, model):
        Trainer(model, TrainConfig(epochs=5, seed=1)).fit(_separable_examples())
        examples = _separable_examples(seed=9)
        accuracy = np.mean(
            [model.predict(ex.prompt, ex.candidates) == ex.target for ex in examples]
        )
        assert accuracy > 0.9

    def test_empty_examples_rejected(self, model):
        with pytest.raises(ValueError):
            Trainer(model).fit([])

    def test_final_loss_property(self, model):
        report = Trainer(model, TrainConfig(epochs=2, seed=1)).fit(
            _separable_examples(n=16)
        )
        assert report.final_loss == report.epoch_losses[-1]

    def test_deterministic_given_seed(self):
        results = []
        for __ in range(2):
            model = ScoringLM(
                ModelConfig(name="det", feature_dim=128, hidden_dim=16, seed=2)
            )
            Trainer(model, TrainConfig(epochs=2, seed=3)).fit(
                _separable_examples(n=24)
            )
            results.append(model.weights["encoder.W1"].copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_adapter_only_training_freezes_base(self, model):
        patch = LoRAPatch("p", model.config.target_shapes(), rank=2, seed=1)
        model.attach(patch)
        before = {k: v.copy() for k, v in model.weights.items()}
        Trainer(model, TrainConfig(epochs=2, seed=1), train_base=False).fit(
            _separable_examples(n=24)
        )
        for name, value in model.weights.items():
            np.testing.assert_array_equal(value, before[name])
        assert patch.frobenius_norm() > 0.0

    def test_adapter_swap_resets_adam_state(self, model):
        """Adam moments must not leak from one adapter into the next.

        Slot keys carry only the parameter name ("adapter/B::..."), so
        training patch A and then patch B with the same trainer used to
        warm-start B's moments from A's — the swapped-in patch must
        train exactly like one fitted by a fresh trainer.
        """
        examples = _separable_examples(n=24)
        patch_a = LoRAPatch("p", model.config.target_shapes(), rank=2, seed=1)
        patch_b = LoRAPatch("p", model.config.target_shapes(), rank=2, seed=7)
        trainer = Trainer(model, TrainConfig(epochs=2, seed=3), train_base=False)
        model.attach(patch_a)
        trainer.fit(examples)
        model.detach()
        model.attach(patch_b)
        trainer.fit(examples)

        twin = ScoringLM(
            ModelConfig(name="trainer-test", feature_dim=256, hidden_dim=24, seed=5)
        )
        twin_patch = LoRAPatch("p", twin.config.target_shapes(), rank=2, seed=7)
        twin.attach(twin_patch)
        Trainer(twin, TrainConfig(epochs=2, seed=3), train_base=False).fit(
            examples
        )
        trained = patch_b.parameters()
        expected = twin_patch.parameters()
        assert trained.keys() == expected.keys()
        for key in trained:
            np.testing.assert_array_equal(trained[key], expected[key])

    def test_adapter_training_learns(self, model):
        patch = LoRAPatch("p", model.config.target_shapes(), rank=4, alpha=2.0, seed=1)
        model.attach(patch)
        Trainer(
            model, TrainConfig(epochs=6, seed=1), train_base=False
        ).fit(_separable_examples())
        examples = _separable_examples(seed=9)
        accuracy = np.mean(
            [model.predict(ex.prompt, ex.candidates) == ex.target for ex in examples]
        )
        assert accuracy > 0.85


def _fused_model(train_lambdas=True, train_patches=True, n_patches=3, seed=5):
    """Frozen-backbone model with a non-trivial fusion attached.

    Upstream ``A`` factors are filled with small random values so the
    fused delta (and hence the λ gradients) are non-zero from step one.
    """
    model = ScoringLM(
        ModelConfig(name="trainer-test", feature_dim=256, hidden_dim=24, seed=seed)
    )
    shapes = model.config.target_shapes()
    patches = []
    for i in range(n_patches):
        patch = LoRAPatch(f"up{i}", shapes, rank=2, seed=10 + i)
        rng = np.random.default_rng(100 + i)
        for key in patch.A:
            patch.A[key] = rng.normal(0.0, 0.02, patch.A[key].shape)
        patches.append(patch)
    fusion = PatchFusion(
        patches,
        LoRAPatch("new", shapes, rank=2, seed=42),
        initial_weight=0.3,
        train_lambdas=train_lambdas,
        train_patches=train_patches,
    )
    model.attach(fusion)
    return model, fusion


class TestRankSpaceParity:
    """Rank-space engine must reproduce the dense path to rtol 1e-9."""

    RTOL = 1e-9

    def _fit(self, rank_space, train_lambdas, train_patches, epochs=2):
        model, fusion = _fused_model(train_lambdas, train_patches)
        trainer = Trainer(
            model,
            TrainConfig(epochs=epochs, seed=3),
            train_base=False,
            rank_space=rank_space,
        )
        report = trainer.fit(_separable_examples(n=24))
        return model, fusion, report

    @pytest.mark.parametrize("train_lambdas", [True, False])
    @pytest.mark.parametrize("train_patches", [True, False])
    def test_losses_lambdas_and_params_match(self, train_lambdas, train_patches):
        __, dense_fusion, dense_report = self._fit(
            False, train_lambdas, train_patches
        )
        __, rank_fusion, rank_report = self._fit(
            True, train_lambdas, train_patches
        )
        assert not dense_report.rank_space
        assert rank_report.rank_space
        assert len(rank_report.step_losses) == len(dense_report.step_losses) > 0
        np.testing.assert_allclose(
            rank_report.step_losses,
            dense_report.step_losses,
            rtol=self.RTOL,
            atol=1e-12,
        )
        np.testing.assert_allclose(
            rank_fusion.lambdas, dense_fusion.lambdas, rtol=self.RTOL, atol=1e-12
        )
        dense_params = dense_fusion.parameters()
        rank_params = rank_fusion.parameters()
        assert dense_params.keys() == rank_params.keys()
        for key in dense_params:
            np.testing.assert_allclose(
                rank_params[key], dense_params[key], rtol=self.RTOL, atol=1e-12
            )

    def test_lambda_trajectory_matches(self):
        """λ agrees with the dense path after every epoch, not just the end."""
        trajectories = {}
        for rank_space in (False, True):
            model, fusion = _fused_model()
            trainer = Trainer(
                model,
                TrainConfig(epochs=1, seed=3),
                train_base=False,
                rank_space=rank_space,
            )
            path = []
            for __ in range(3):
                trainer.fit(_separable_examples(n=24))
                path.append(fusion.lambdas.copy())
            trajectories[rank_space] = path
        for rank_lam, dense_lam in zip(trajectories[True], trajectories[False]):
            np.testing.assert_allclose(
                rank_lam, dense_lam, rtol=self.RTOL, atol=1e-12
            )

    def test_single_patch_parity(self):
        examples = _separable_examples(n=24)
        results = {}
        for rank_space in (False, True):
            model = ScoringLM(
                ModelConfig(
                    name="trainer-test", feature_dim=256, hidden_dim=24, seed=5
                )
            )
            patch = LoRAPatch("p", model.config.target_shapes(), rank=2, seed=1)
            model.attach(patch)
            report = Trainer(
                model,
                TrainConfig(epochs=2, seed=3),
                train_base=False,
                rank_space=rank_space,
            ).fit(examples)
            results[rank_space] = (patch.parameters(), report)
        rank_params, rank_report = results[True]
        dense_params, dense_report = results[False]
        assert rank_report.rank_space and not dense_report.rank_space
        np.testing.assert_allclose(
            rank_report.step_losses,
            dense_report.step_losses,
            rtol=self.RTOL,
            atol=1e-12,
        )
        for key in dense_params:
            np.testing.assert_allclose(
                rank_params[key], dense_params[key], rtol=self.RTOL, atol=1e-12
            )

    def test_adapter_swap_mid_fit(self):
        """Swapping fusions between fits stays in parity with dense."""
        examples = _separable_examples(n=24)
        finals = {}
        for rank_space in (False, True):
            model, fusion_a = _fused_model(seed=5)
            trainer = Trainer(
                model,
                TrainConfig(epochs=1, seed=3),
                train_base=False,
                rank_space=rank_space,
            )
            trainer.fit(examples)
            model.detach()
            fusion_b = PatchFusion(
                fusion_a.patches,
                LoRAPatch("new-b", model.config.target_shapes(), rank=2, seed=77),
                initial_weight=0.2,
            )
            model.attach(fusion_b)
            trainer.fit(examples)
            finals[rank_space] = fusion_b.parameters()
        assert finals[True].keys() == finals[False].keys()
        for key in finals[False]:
            np.testing.assert_allclose(
                finals[True][key], finals[False][key], rtol=self.RTOL, atol=1e-12
            )

    def test_rank_space_requires_frozen_base(self, model):
        with pytest.raises(ValueError):
            Trainer(model, train_base=True, rank_space=True)

    def test_auto_selection(self, model):
        examples = _separable_examples(n=8)
        # Base training never engages the rank engine.
        base_report = Trainer(model, TrainConfig(epochs=1, seed=1)).fit(examples)
        assert not base_report.rank_space
        # Frozen backbone + adapter auto-selects it.
        fused, __ = _fused_model()
        report = Trainer(
            fused, TrainConfig(epochs=1, seed=1), train_base=False
        ).fit(examples)
        assert report.rank_space
        # Explicit opt-out is honoured.
        fused2, __ = _fused_model()
        report2 = Trainer(
            fused2,
            TrainConfig(epochs=1, seed=1),
            train_base=False,
            rank_space=False,
        ).fit(examples)
        assert not report2.rank_space

    def test_exact_weights_env_forces_dense(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXACT_WEIGHTS", "1")
        fused, __ = _fused_model()
        report = Trainer(
            fused,
            TrainConfig(epochs=1, seed=1),
            train_base=False,
            rank_space=True,
        ).fit(_separable_examples(n=8))
        assert not report.rank_space


class TestEvaluateLoss:
    def test_no_parameter_updates(self, model):
        before = model.weights["encoder.W1"].copy()
        Trainer(model).evaluate_loss(_separable_examples(n=8))
        np.testing.assert_array_equal(model.weights["encoder.W1"], before)

    def test_returns_finite_loss(self, model):
        loss = Trainer(model).evaluate_loss(_separable_examples(n=8))
        assert np.isfinite(loss) and loss > 0


class TestAdamMechanics:
    def test_grad_clip_limits_step(self, model):
        config = TrainConfig(epochs=1, grad_clip=1e-9, learning_rate=1.0, seed=0)
        before = model.weights["encoder.W1"].copy()
        Trainer(model, config).fit(_separable_examples(n=8))
        # Clipped to almost nothing; Adam normalisation still moves a
        # little, but far less than lr=1.0 would unclipped.
        drift = np.abs(model.weights["encoder.W1"] - before).max()
        assert drift < 1.5

    def test_weight_decay_shrinks_weights(self):
        examples = _separable_examples(n=8)
        heavy = ScoringLM(ModelConfig(name="wd", feature_dim=128, hidden_dim=16, seed=2))
        light = ScoringLM(ModelConfig(name="wd", feature_dim=128, hidden_dim=16, seed=2))
        Trainer(heavy, TrainConfig(epochs=3, weight_decay=0.5, seed=1)).fit(examples)
        Trainer(light, TrainConfig(epochs=3, weight_decay=0.0, seed=1)).fit(examples)
        assert np.linalg.norm(heavy.weights["encoder.W1"]) < np.linalg.norm(
            light.weights["encoder.W1"]
        )
