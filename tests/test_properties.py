"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import metrics
from repro.tinylm.fusion import PatchFusion
from repro.tinylm.lora import LoRAPatch
from repro.tinylm.model import ModelConfig, ScoringLM

SHAPES = {"encoder.W1": (6, 16)}

lambda_vectors = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    min_size=2,
    max_size=2,
).map(np.array)


def _patches():
    patches = []
    rng = np.random.default_rng(7)
    for i in range(2):
        patch = LoRAPatch(f"p{i}", SHAPES, rank=2, seed=i)
        patch.A["encoder.W1"] = rng.normal(0, 0.1, (2, 16))
        patches.append(patch)
    return patches


class TestFusionLinearity:
    """Eq. 4 is linear in λ — the property the λ-gradient relies on."""

    @given(lambda_vectors, lambda_vectors)
    @settings(max_examples=30, deadline=None)
    def test_delta_linear_in_lambda(self, lam_a, lam_b):
        patches = _patches()
        new_patch = LoRAPatch("new", SHAPES, rank=2, seed=9)
        fusion = PatchFusion(patches, new_patch)

        fusion.lambdas[:] = lam_a
        delta_a = fusion.delta("encoder.W1").copy()
        fusion.lambdas[:] = lam_b
        delta_b = fusion.delta("encoder.W1").copy()
        fusion.lambdas[:] = lam_a + lam_b
        delta_sum = fusion.delta("encoder.W1").copy()
        base = new_patch.delta("encoder.W1")
        np.testing.assert_allclose(
            delta_sum - base, (delta_a - base) + (delta_b - base), atol=1e-10
        )

    @given(lambda_vectors, st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_delta_homogeneous_in_lambda(self, lam, scale):
        patches = _patches()
        new_patch = LoRAPatch("new", SHAPES, rank=2, seed=9)
        fusion = PatchFusion(patches, new_patch)
        base = new_patch.delta("encoder.W1")
        fusion.lambdas[:] = lam
        delta = fusion.delta("encoder.W1") - base
        fusion.lambdas[:] = scale * lam
        scaled = fusion.delta("encoder.W1") - base
        np.testing.assert_allclose(scaled, scale * delta, atol=1e-9)


class TestMetricMonotonicity:
    """Fixing one wrong prediction never lowers a metric."""

    @given(st.lists(st.sampled_from(["yes", "no"]), min_size=2, max_size=25),
           st.data())
    @settings(max_examples=60, deadline=None)
    def test_binary_f1_improves_when_fixing_an_error(self, golds, data):
        preds = [
            data.draw(st.sampled_from(["yes", "no"])) for __ in golds
        ]
        wrong = [i for i, (g, p) in enumerate(zip(golds, preds)) if g != p]
        if not wrong:
            return
        index = data.draw(st.sampled_from(wrong))
        fixed = list(preds)
        fixed[index] = golds[index]
        assert metrics.binary_f1(golds, fixed) >= metrics.binary_f1(golds, preds)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=25),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_accuracy_strictly_improves(self, golds, data):
        preds = [data.draw(st.sampled_from(["a", "b", "c"])) for __ in golds]
        wrong = [i for i, (g, p) in enumerate(zip(golds, preds)) if g != p]
        if not wrong:
            return
        index = data.draw(st.sampled_from(wrong))
        fixed = list(preds)
        fixed[index] = golds[index]
        assert metrics.accuracy(golds, fixed) > metrics.accuracy(golds, preds)


class TestModelInvariances:
    @pytest.fixture(scope="class")
    def model(self):
        return ScoringLM(ModelConfig(name="prop", feature_dim=128, hidden_dim=12, seed=3))

    @given(st.permutations(["alpha", "beta", "gamma", "delta"]))
    @settings(max_examples=25, deadline=None)
    def test_candidate_order_does_not_change_winner(self, model, ordering):
        prompt = "some fixed prompt mentioning beta"
        baseline = ["alpha", "beta", "gamma", "delta"]
        winner = baseline[model.predict(prompt, baseline)]
        permuted_winner = ordering[model.predict(prompt, list(ordering))]
        assert winner == permuted_winner

    @given(st.text(alphabet="abcdef ", min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_probabilities_are_distribution(self, model, prompt):
        probs = model.probabilities(prompt, ["x", "y", "z"])
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()
