"""Tests for the paired bootstrap comparison utility."""

import pytest

from repro.data.schema import Example
from repro.eval.significance import compare_methods, paired_bootstrap


class TestPairedBootstrap:
    def test_identical_predictions_not_significant(self):
        golds = ["yes", "no"] * 20
        preds = ["yes", "no"] * 20
        report = paired_bootstrap("ed", golds, preds, preds, resamples=200)
        assert report.mean_difference == 0.0
        assert not report.significant

    def test_clear_winner_is_significant(self):
        golds = ["yes", "no"] * 30
        perfect = list(golds)
        bad = ["no"] * 60
        report = paired_bootstrap("ed", golds, perfect, bad, resamples=300)
        assert report.significant
        assert report.win_rate_a > 0.95
        assert report.score_a == 100.0

    def test_ci_ordering(self):
        golds = ["a", "b", "c"] * 10
        preds_a = golds[:20] + ["x"] * 10
        preds_b = ["x"] * 10 + golds[10:]
        report = paired_bootstrap("di", golds, preds_a, preds_b, resamples=200)
        assert report.ci_low <= report.mean_difference <= report.ci_high

    def test_deterministic_given_seed(self):
        golds = ["yes", "no"] * 15
        preds_a = ["yes"] * 30
        preds_b = ["no"] * 30
        a = paired_bootstrap("ed", golds, preds_a, preds_b, resamples=100, seed=3)
        b = paired_bootstrap("ed", golds, preds_a, preds_b, resamples=100, seed=3)
        assert a == b

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap("ed", ["yes"], ["yes", "no"], ["yes"])

    def test_dc_requires_originals_via_score(self):
        golds, preds = ["fixed"], ["fixed"]
        with pytest.raises(ValueError):
            paired_bootstrap("dc", golds, preds, preds)

    def test_summary_text(self):
        golds = ["yes", "no"] * 10
        report = paired_bootstrap("ed", golds, golds, ["no"] * 20, resamples=100)
        text = report.summary()
        assert "win-rate" in text and "Δ" in text


class TestCompareMethods:
    class _Constant:
        def __init__(self, answer):
            self.answer = answer

        def predict(self, example):
            return self.answer

    def test_compare_constant_methods(self):
        examples = [
            Example(task="ed", inputs={}, answer="yes" if i % 2 else "no")
            for i in range(30)
        ]
        report = compare_methods(
            self._Constant("yes"), self._Constant("no"), examples, "ed",
            resamples=100,
        )
        # all-yes has F1 ≈ 66.7; all-no has F1 = 0 → A wins clearly.
        assert report.score_a > report.score_b
        assert report.win_rate_a == 1.0
