"""Tests for dataset profiling."""

import numpy as np
import pytest

from repro.data import generators
from repro.data.profiling import feature_names, profile_dataset
from repro.data.schema import Dataset, Example


class TestProfileDataset:
    @pytest.fixture(scope="class")
    def beer_profile(self):
        dataset = generators.build("ed/beer", count=120, seed=3)
        return profile_dataset(dataset)

    def test_covers_all_attributes(self, beer_profile):
        from repro.data.generators.beer import ATTRIBUTES

        assert set(beer_profile.attributes) == set(ATTRIBUTES)

    def test_abv_dominant_validator(self, beer_profile):
        abv = beer_profile.attributes["abv"]
        # Most ABV values are clean unit decimals; a minority carry the
        # injected percent-sign corruption.
        assert abv.dominant_validator in ("unit_decimal", "numeric")
        assert abv.validator_coverage > 0.5

    def test_style_covering_bank(self, beer_profile):
        style = beer_profile.attributes["style"]
        assert style.covering_bank is None or "beer" in style.covering_bank

    def test_missing_rates_bounded(self, beer_profile):
        for prof in beer_profile.attributes.values():
            assert 0.0 <= prof.missing_rate <= 1.0

    def test_imputation_dataset_counts_missing_target(self):
        dataset = generators.build("di/phone", count=60, seed=3)
        profile = profile_dataset(dataset)
        assert profile.attributes["brand"].missing_rate == 1.0

    def test_matching_dataset_profiles_both_sides(self):
        dataset = generators.build("em/walmart_amazon", count=40, seed=3)
        profile = profile_dataset(dataset)
        # Both records of each pair contribute → 2 cells per example.
        assert profile.attributes["modelno"].count == 80

    def test_non_record_task_is_empty(self):
        dataset = generators.build("cta/sotab", count=20, seed=3)
        assert profile_dataset(dataset).attributes == {}

    def test_sample_limits_work(self):
        dataset = generators.build("ed/beer", count=60, seed=3)
        profile = profile_dataset(dataset, sample=10)
        assert profile.examples_profiled == 10

    def test_render_is_readable(self, beer_profile):
        text = beer_profile.render()
        assert "abv" in text and "missing=" in text and "format=" in text

    def test_top_values(self, beer_profile):
        top = beer_profile.attributes["state"].top_values(3)
        assert len(top) <= 3
        if len(top) == 2:
            assert top[0][1] >= top[1][1]


def _variant(dataset, mutate):
    """Copy a record dataset with each example's record transformed."""
    examples = [
        Example(
            task=ex.task,
            inputs={**ex.inputs, "record": mutate(ex.inputs["record"])},
            answer=ex.answer,
            meta=dict(ex.meta),
        )
        for ex in dataset.examples
    ]
    return Dataset(
        name=dataset.name + "-variant",
        task=dataset.task,
        examples=examples,
        label_set=dataset.label_set,
    )


class TestFeatureVector:
    """The KB retrieval index: fixed layout, finite, shift-sensitive."""

    @pytest.fixture(scope="class")
    def beer(self):
        return generators.build("ed/beer", count=80, seed=3)

    def test_deterministic(self, beer):
        first = profile_dataset(beer).feature_vector()
        second = profile_dataset(
            generators.build("ed/beer", count=80, seed=3)
        ).feature_vector()
        assert np.array_equal(first, second)

    def test_fixed_length_matches_names(self, beer):
        vector = profile_dataset(beer).feature_vector()
        assert len(vector) == len(feature_names())
        # Empty profiles (no record structure) share the layout.
        cta = profile_dataset(generators.build("cta/sotab", count=10, seed=3))
        assert len(cta.feature_vector()) == len(feature_names())

    def test_nan_free(self, beer):
        for dataset_id in ("ed/beer", "cta/sotab", "em/abt_buy"):
            dataset = generators.build(dataset_id, count=20, seed=3)
            vector = profile_dataset(dataset).feature_vector()
            assert np.all(np.isfinite(vector))

    def test_sensitive_to_missing_rate(self, beer):
        base = profile_dataset(beer).feature_vector()
        blanked = _variant(
            beer, lambda rec: rec.replace(rec.attributes[0], "")
        )
        shifted = profile_dataset(blanked).feature_vector()
        index = feature_names().index("missing_rate_mean")
        assert shifted[index] > base[index]
        assert shifted[feature_names().index("missing_rate_max")] >= 1.0

    def test_sensitive_to_distinct_count(self, beer):
        base = profile_dataset(beer).feature_vector()
        constant = _variant(
            beer, lambda rec: rec.replace(rec.attributes[-1], "same")
        )
        shifted = profile_dataset(constant).feature_vector()
        index = feature_names().index("log_distinct_mean")
        assert shifted[index] < base[index]

    def test_sensitive_to_validator_shift(self, beer):
        base_profile = profile_dataset(beer)
        assert base_profile.attributes["abv"].dominant_validator is not None
        base = base_profile.feature_vector()
        garbled = _variant(
            beer,
            lambda rec: rec.replace("abv", "~" + rec.get("abv") + "~"),
        )
        shifted = profile_dataset(garbled).feature_vector()
        assert not np.array_equal(shifted, base)
        index = feature_names().index("validator_coverage_mean")
        assert shifted[index] < base[index]
