"""Tests for dataset profiling."""

import pytest

from repro.data import generators
from repro.data.profiling import profile_dataset


class TestProfileDataset:
    @pytest.fixture(scope="class")
    def beer_profile(self):
        dataset = generators.build("ed/beer", count=120, seed=3)
        return profile_dataset(dataset)

    def test_covers_all_attributes(self, beer_profile):
        from repro.data.generators.beer import ATTRIBUTES

        assert set(beer_profile.attributes) == set(ATTRIBUTES)

    def test_abv_dominant_validator(self, beer_profile):
        abv = beer_profile.attributes["abv"]
        # Most ABV values are clean unit decimals; a minority carry the
        # injected percent-sign corruption.
        assert abv.dominant_validator in ("unit_decimal", "numeric")
        assert abv.validator_coverage > 0.5

    def test_style_covering_bank(self, beer_profile):
        style = beer_profile.attributes["style"]
        assert style.covering_bank is None or "beer" in style.covering_bank

    def test_missing_rates_bounded(self, beer_profile):
        for prof in beer_profile.attributes.values():
            assert 0.0 <= prof.missing_rate <= 1.0

    def test_imputation_dataset_counts_missing_target(self):
        dataset = generators.build("di/phone", count=60, seed=3)
        profile = profile_dataset(dataset)
        assert profile.attributes["brand"].missing_rate == 1.0

    def test_matching_dataset_profiles_both_sides(self):
        dataset = generators.build("em/walmart_amazon", count=40, seed=3)
        profile = profile_dataset(dataset)
        # Both records of each pair contribute → 2 cells per example.
        assert profile.attributes["modelno"].count == 80

    def test_non_record_task_is_empty(self):
        dataset = generators.build("cta/sotab", count=20, seed=3)
        assert profile_dataset(dataset).attributes == {}

    def test_sample_limits_work(self):
        dataset = generators.build("ed/beer", count=60, seed=3)
        profile = profile_dataset(dataset, sample=10)
        assert profile.examples_profiled == 10

    def test_render_is_readable(self, beer_profile):
        text = beer_profile.render()
        assert "abv" in text and "missing=" in text and "format=" in text

    def test_top_values(self, beer_profile):
        top = beer_profile.attributes["state"].top_values(3)
        assert len(top) <= 3
        if len(top) == 2:
            assert top[0][1] >= top[1][1]
