"""Tests for the extension modules: persistence, diagnostics, LoRAHub, CLI."""

import numpy as np
import pytest

from repro.core.config import SKCConfig
from repro.core.skc.lorahub import LoRAHubConfig, lorahub_search
from repro.data.generators import upstream
from repro.eval.diagnostics import (
    conflict_rate,
    dataset_gradient,
    gradient_conflict_matrix,
    patch_interference_matrix,
    summarize_conflict,
)
from repro.knowledge.seed import oracle_knowledge
from repro.tinylm import serialization as ser
from repro.tinylm.fusion import PatchFusion
from repro.tinylm.lora import LoRAPatch
from repro.tinylm.model import ModelConfig, ScoringLM


class TestModelPersistence:
    def test_model_roundtrip(self, tmp_path, tiny_model):
        path = tmp_path / "model.npz"
        ser.save_model(tiny_model, path)
        restored = ser.load_model(path)
        assert restored.config == tiny_model.config
        for name, value in tiny_model.weights.items():
            np.testing.assert_array_equal(restored.weights[name], value)

    def test_restored_model_predicts_identically(self, tmp_path, tiny_model):
        path = tmp_path / "model.npz"
        ser.save_model(tiny_model, path)
        restored = ser.load_model(path)
        prompt, pool = "some prompt text", ("a", "b", "c")
        np.testing.assert_allclose(
            restored.logits(prompt, pool), tiny_model.logits(prompt, pool)
        )

    def test_patch_roundtrip(self, tmp_path):
        shapes = {"encoder.W1": (8, 32), "answer.V": (8, 32)}
        patch = LoRAPatch("p", shapes, rank=3, alpha=2.0, seed=7)
        patch.A["encoder.W1"] = np.random.default_rng(0).normal(0, 1, (3, 32))
        path = tmp_path / "patch.npz"
        ser.save_patch(patch, path)
        restored = ser.load_patch(path)
        assert restored.name == "p"
        assert restored.rank == 3 and restored.alpha == 2.0
        for name in shapes:
            np.testing.assert_array_equal(
                restored.delta(name), patch.delta(name)
            )

    def test_fusion_roundtrip(self, tmp_path):
        shapes = {"encoder.W1": (6, 20)}
        patches = [LoRAPatch(f"p{i}", shapes, rank=2, seed=i) for i in range(3)]
        fusion = PatchFusion(
            patches, LoRAPatch("new", shapes, rank=2, seed=9),
            train_lambdas=False,
        )
        fusion.lambdas[:] = [0.1, 0.2, 0.3]
        ser.save_fusion(fusion, tmp_path / "fusion")
        restored = ser.load_fusion(tmp_path / "fusion")
        np.testing.assert_allclose(restored.lambdas, [0.1, 0.2, 0.3])
        assert not restored.train_lambdas
        assert [p.name for p in restored.patches] == ["p0", "p1", "p2"]

    def test_knowledge_roundtrip(self, tmp_path):
        knowledge = oracle_knowledge("ed/beer")
        path = tmp_path / "knowledge.json"
        ser.save_knowledge(knowledge, path)
        assert ser.load_knowledge(path) == knowledge


class TestDiagnostics:
    @pytest.fixture(scope="class")
    def small_suite(self):
        return [
            upstream.generate("adult", count=16, seed=1),
            upstream.generate("buy", count=16, seed=1),
            upstream.generate("beer_em", count=16, seed=1),
        ]

    def test_dataset_gradient_shape(self, base_model, small_suite):
        gradient = dataset_gradient(base_model, small_suite[0], sample=8)
        assert gradient.ndim == 1 and gradient.size > 0

    def test_conflict_matrix_symmetric_unit_diagonal(self, base_model, small_suite):
        matrix, names = gradient_conflict_matrix(base_model, small_suite, sample=8)
        assert names == ["adult", "buy", "beer_em"]
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        assert np.abs(matrix).max() <= 1.0 + 1e-9

    def test_conflict_rate_bounds(self):
        matrix = np.array([[1.0, -0.5], [-0.5, 1.0]])
        assert conflict_rate(matrix) == 1.0
        assert conflict_rate(np.eye(1)) == 0.0

    def test_patch_interference(self, bundle):
        matrix, names = patch_interference_matrix(bundle.patches[:3])
        assert len(names) == 3
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_summary_keys(self, base_model, small_suite):
        report = summarize_conflict(base_model, small_suite, sample=8)
        assert set(report) == {
            "names", "matrix", "conflict_rate", "mean_cosine",
            "worst_pair", "worst_cosine",
        }


class TestLoRAHub:
    def test_search_improves_or_matches_start(self, bundle, beer_splits):
        model, fusion, best = lorahub_search(
            bundle.upstream_model,
            bundle.patches[:4],
            beer_splits.few_shot,
            LoRAHubConfig(iterations=10, seed=1),
            SKCConfig(),
        )
        assert 0.0 <= best <= 100.0
        assert model.adapter is fusion

    def test_patches_stay_frozen(self, bundle, beer_splits):
        originals = [p.frobenius_norm() for p in bundle.patches[:3]]
        lorahub_search(
            bundle.upstream_model,
            bundle.patches[:3],
            beer_splits.few_shot,
            LoRAHubConfig(iterations=5, seed=1),
        )
        assert [p.frobenius_norm() for p in bundle.patches[:3]] == originals

    def test_lambda_bounds_respected(self, bundle, beer_splits):
        config = LoRAHubConfig(iterations=15, seed=2, lambda_bounds=(-0.1, 0.2))
        __, fusion, __ = lorahub_search(
            bundle.upstream_model, bundle.patches[:3], beer_splits.few_shot, config
        )
        assert fusion.lambdas.min() >= -0.1 - 1e-9
        assert fusion.lambdas.max() <= 0.2 + 1e-9

    def test_requires_patches(self, bundle, beer_splits):
        with pytest.raises(ValueError):
            lorahub_search(bundle.upstream_model, [], beer_splits.few_shot)


class TestCLI:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ed/beer" in out and "mistral-7b" in out and "table2" in out

    def test_parser_rejects_unknown_experiment(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_version_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestCLIExperiment:
    def test_experiment_command_table1(self, capsys):
        from repro.cli import main

        assert main(["experiment", "table1", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "ed/flights" in out
