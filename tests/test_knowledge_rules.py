"""Unit tests for repro.knowledge.rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knowledge.rules import (
    CandidateHint,
    FormatConstraint,
    IgnoreAttribute,
    KeyAttribute,
    KeyPattern,
    Knowledge,
    MissingValuePolicy,
    PatternLabelHint,
    ValueRange,
    VocabConstraint,
)

rule_strategy = st.one_of(
    st.builds(KeyAttribute, attribute=st.sampled_from(["name", "modelno", "price"])),
    st.builds(IgnoreAttribute, attribute=st.sampled_from(["price", "description"])),
    st.just(MissingValuePolicy()),
    st.builds(
        FormatConstraint,
        attribute=st.sampled_from(["abv", "date"]),
        validator=st.sampled_from(["unit_decimal", "iso_date", "integer"]),
    ),
    st.builds(
        VocabConstraint,
        attribute=st.sampled_from(["city", "style"]),
        bank=st.sampled_from(["cities", "beer_styles"]),
    ),
    st.builds(
        ValueRange,
        attribute=st.just("age"),
        low=st.integers(0, 10).map(float),
        high=st.integers(11, 99).map(float),
    ),
    st.builds(KeyPattern, pattern=st.sampled_from(["model_number", "capacity"])),
    st.builds(
        PatternLabelHint,
        pattern=st.sampled_from(["two_letter_code", "dollar_run"]),
        label=st.sampled_from(["country", "price_range"]),
    ),
)
knowledge_strategy = st.lists(rule_strategy, max_size=6).map(
    lambda rules: Knowledge(rules=tuple(dict.fromkeys(rules)))
)


class TestRuleValidation:
    def test_format_constraint_rejects_unknown_validator(self):
        with pytest.raises(KeyError):
            FormatConstraint("x", "not_a_validator")

    def test_vocab_constraint_rejects_unknown_bank(self):
        with pytest.raises(KeyError):
            VocabConstraint("x", "not_a_bank")

    def test_candidate_hint_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            CandidateHint("teleport")

    def test_key_pattern_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            KeyPattern("serial_number")

    def test_pattern_label_hint_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            PatternLabelHint("hexagons", "x")


class TestRendering:
    def test_every_rule_renders_text(self):
        rules = (
            KeyAttribute("modelno"),
            KeyPattern("model_number"),
            IgnoreAttribute("price"),
            MissingValuePolicy(),
            FormatConstraint("abv", "unit_decimal"),
            VocabConstraint("city", "cities"),
            ValueRange("age", 17, 80),
            CandidateHint("known_brand", bank="phone_brands"),
            PatternLabelHint("dollar_run", "price_range"),
        )
        for rule in rules:
            text = rule.render()
            assert isinstance(text, str) and len(text) > 10

    def test_knowledge_render_concatenates(self):
        knowledge = Knowledge(
            rules=(KeyAttribute("modelno"), IgnoreAttribute("price")),
            notes="prices vary",
        )
        text = knowledge.render()
        assert text.startswith("knowledge:")
        assert "modelno" in text and "price" in text and "prices vary" in text

    def test_empty_renders_empty(self):
        assert Knowledge.empty().render() == ""


class TestKnowledgeOps:
    def test_with_rule_idempotent(self):
        knowledge = Knowledge().with_rule(MissingValuePolicy())
        assert knowledge.with_rule(MissingValuePolicy()) == knowledge

    def test_without_rule(self):
        knowledge = Knowledge(rules=(MissingValuePolicy(), KeyAttribute("x")))
        trimmed = knowledge.without_rule(MissingValuePolicy())
        assert MissingValuePolicy() not in trimmed.rules
        assert KeyAttribute("x") in trimmed.rules

    def test_merged_deduplicates(self):
        a = Knowledge(rules=(MissingValuePolicy(),))
        b = Knowledge(rules=(MissingValuePolicy(), KeyAttribute("x")))
        assert len(a.merged(b).rules) == 2

    def test_rules_of_and_first_of(self):
        knowledge = Knowledge(
            rules=(KeyAttribute("a"), KeyAttribute("b"), MissingValuePolicy())
        )
        assert len(knowledge.rules_of(KeyAttribute)) == 2
        assert knowledge.first_of(KeyAttribute) == KeyAttribute("a")
        assert knowledge.first_of(ValueRange) is None

    def test_bool_and_len(self):
        assert not Knowledge.empty()
        assert Knowledge(notes="hi")
        assert len(Knowledge(rules=(MissingValuePolicy(),))) == 1

    def test_knowledge_hashable(self):
        a = Knowledge(rules=(MissingValuePolicy(),))
        b = Knowledge(rules=(MissingValuePolicy(),))
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_combine(self):
        pieces = [
            Knowledge(rules=(MissingValuePolicy(),)),
            Knowledge(rules=(KeyAttribute("x"),), notes="note"),
        ]
        combined = Knowledge.combine(pieces)
        assert len(combined.rules) == 2 and combined.notes == "note"


class TestSerialization:
    @given(knowledge_strategy)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, knowledge):
        assert Knowledge.from_dict(knowledge.to_dict()) == knowledge

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(KeyError):
            Knowledge.from_dict({"rules": [{"kind": "MagicRule"}]})

    def test_notes_roundtrip(self):
        knowledge = Knowledge(notes="zero is valid")
        assert Knowledge.from_dict(knowledge.to_dict()).notes == "zero is valid"
