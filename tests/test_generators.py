"""Tests for every synthetic dataset generator (13 downstream + upstream)."""

import numpy as np
import pytest

from repro.data import generators
from repro.data.generators import beer, flights, rayyan, upstream
from repro.data.schema import MISSING_MARKERS

ALL_IDS = list(generators.downstream_ids())


class TestRegistry:
    def test_thirteen_downstream_datasets(self):
        assert len(ALL_IDS) == 13

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            generators.build("nope/nothing")

    @pytest.mark.parametrize("dataset_id", ALL_IDS)
    def test_build_respects_count(self, dataset_id):
        assert len(generators.build(dataset_id, count=30, seed=0)) == 30

    @pytest.mark.parametrize("dataset_id", ALL_IDS)
    def test_deterministic_given_seed(self, dataset_id):
        a = generators.build(dataset_id, count=20, seed=5)
        b = generators.build(dataset_id, count=20, seed=5)
        assert [e.answer for e in a.examples] == [e.answer for e in b.examples]

    @pytest.mark.parametrize("dataset_id", ALL_IDS)
    def test_seed_changes_data(self, dataset_id):
        a = generators.build(dataset_id, count=40, seed=1)
        b = generators.build(dataset_id, count=40, seed=2)
        assert [e.inputs for e in a.examples] != [e.inputs for e in b.examples]

    @pytest.mark.parametrize("dataset_id", ALL_IDS)
    def test_task_matches_id(self, dataset_id):
        dataset = generators.build(dataset_id, count=12, seed=0)
        assert dataset.task == dataset_id.split("/")[0]

    @pytest.mark.parametrize("dataset_id", ALL_IDS)
    def test_latent_rules_documented(self, dataset_id):
        assert generators.build(dataset_id, count=12, seed=0).latent_rules


class TestBinaryDatasets:
    @pytest.mark.parametrize(
        "dataset_id", [d for d in ALL_IDS if d.split("/")[0] in ("ed", "em", "sm")]
    )
    def test_labels_are_yes_no(self, dataset_id):
        dataset = generators.build(dataset_id, count=60, seed=3)
        assert set(e.answer for e in dataset.examples) <= {"yes", "no"}
        assert dataset.label_set == ("yes", "no")

    @pytest.mark.parametrize(
        "dataset_id", [d for d in ALL_IDS if d.split("/")[0] in ("ed", "em", "sm")]
    )
    def test_both_classes_present(self, dataset_id):
        dataset = generators.build(dataset_id, count=120, seed=3)
        answers = {e.answer for e in dataset.examples}
        assert answers == {"yes", "no"}


class TestFlights:
    def test_clean_record_passes_time_format(self):
        from repro.knowledge import validators

        rng = np.random.default_rng(0)
        for __ in range(20):
            record = flights.clean_record(rng)
            for attr in flights.TIME_ATTRIBUTES:
                assert validators.validate("time_12h", record.get(attr))
            assert validators.validate("flight_code", record.get("flight"))

    def test_error_examples_are_actually_corrupted(self):
        dataset = flights.generate(120, seed=1)
        for example in dataset.examples:
            if example.answer == "yes":
                assert example.meta["error_type"] != "clean"


class TestRayyan:
    def test_clean_record_fields(self):
        from repro.knowledge import validators

        rng = np.random.default_rng(0)
        record = rayyan.clean_record(rng)
        assert validators.validate("iso_date", record.get("article_jcreated_at"))
        assert validators.validate("issn", record.get("journal_issn"))

    def test_zero_issue_is_clean(self):
        """'0 is valid for article_jissue' — the paper's Rayyan trap."""
        dataset = rayyan.generate(400, seed=2)
        zero_issue_clean = [
            e
            for e in dataset.examples
            if e.inputs["attribute"] == "article_jissue"
            and e.inputs["record"].get("article_jissue") == "0"
            and e.meta["error_type"] == "clean"
        ]
        for example in zero_issue_clean:
            assert example.answer == "no"

    def test_cleaning_answers_recoverable_kind(self):
        dataset = rayyan.generate_cleaning(100, seed=3)
        for example in dataset.examples:
            assert example.answer  # a reference correction always exists
            dirty = example.inputs["record"].get(example.inputs["attribute"])
            assert dirty != example.answer


class TestBeer:
    def test_clean_abv_in_unit_interval(self):
        rng = np.random.default_rng(0)
        for __ in range(20):
            record = beer.clean_record(rng)
            assert 0.0 <= float(record.get("abv")) <= 1.0

    def test_percent_abv_marked_error(self):
        dataset = beer.generate(400, seed=4)
        for example in dataset.examples:
            value = example.inputs["record"].get(example.inputs["attribute"])
            if example.inputs["attribute"] == "abv" and value.endswith("%"):
                assert example.answer == "yes"

    def test_cleaning_strips_percent(self):
        dataset = beer.generate_cleaning(200, seed=4)
        percent_cases = [
            e
            for e in dataset.examples
            if e.inputs["record"].get(e.inputs["attribute"]).endswith("%")
        ]
        assert percent_cases
        for example in percent_cases:
            assert not example.answer.endswith("%")


class TestImputationDatasets:
    @pytest.mark.parametrize("dataset_id", ["di/flipkart", "di/phone"])
    def test_target_cell_is_masked(self, dataset_id):
        dataset = generators.build(dataset_id, count=40, seed=5)
        for example in dataset.examples:
            record = example.inputs["record"]
            assert record.get(example.inputs["attribute"]).lower() in MISSING_MARKERS

    @pytest.mark.parametrize("dataset_id", ["di/flipkart", "di/phone"])
    def test_answer_recoverable_from_record(self, dataset_id):
        dataset = generators.build(dataset_id, count=40, seed=5)
        for example in dataset.examples:
            text = " ".join(v for __, v in example.inputs["record"]).lower()
            assert example.answer in text


class TestExtractionDatasets:
    @pytest.mark.parametrize("dataset_id", ["ave/ae110k", "ave/oa_mine"])
    def test_answer_in_title_or_na(self, dataset_id):
        dataset = generators.build(dataset_id, count=80, seed=6)
        for example in dataset.examples:
            if example.answer != "n/a":
                assert example.answer in example.inputs["text"]

    @pytest.mark.parametrize("dataset_id", ["ave/ae110k", "ave/oa_mine"])
    def test_na_cases_exist(self, dataset_id):
        dataset = generators.build(dataset_id, count=120, seed=6)
        assert any(e.answer == "n/a" for e in dataset.examples)


class TestCTA:
    def test_labels_in_label_set(self):
        dataset = generators.build("cta/sotab", count=80, seed=7)
        assert set(e.answer for e in dataset.examples) <= set(dataset.label_set)

    def test_values_nonempty(self):
        dataset = generators.build("cta/sotab", count=40, seed=7)
        for example in dataset.examples:
            assert len(example.inputs["values"]) >= 3


class TestUpstream:
    def test_twelve_datasets(self):
        suite = upstream.generate_all(seed=0, scale=0.2)
        assert len(suite) == 12
        assert {d.task for d in suite} == {"ed", "di", "sm", "em"}

    def test_generate_by_name(self):
        dataset = upstream.generate("adult", count=30, seed=0)
        assert dataset.name == "adult"
        assert len(dataset) == 30

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            upstream.generate("nonexistent", count=10)

    def test_restaurant_city_recoverable_via_area_code(self):
        dataset = upstream.generate("restaurant", count=30, seed=1)
        for example in dataset.examples:
            address = example.inputs["record"].get("address")
            assert example.answer in address

    def test_scale_controls_size(self):
        small = upstream.generate_all(seed=0, scale=0.2)
        large = upstream.generate_all(seed=0, scale=0.5)
        assert sum(len(d) for d in small) < sum(len(d) for d in large)
