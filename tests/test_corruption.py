"""Unit tests for repro.data.corruption."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import corruption

word_strategy = st.text(alphabet="abcdefghijklmnop", min_size=2, max_size=15)


class TestTypo:
    @given(word_strategy)
    @settings(max_examples=60, deadline=None)
    def test_typo_changes_value(self, value):
        rng = np.random.default_rng(0)
        corrupted, kind = corruption.typo(rng, value)
        assert kind == "typo"
        assert corrupted != value

    def test_typo_deterministic_given_rng(self):
        a = corruption.typo(np.random.default_rng(5), "portland")
        b = corruption.typo(np.random.default_rng(5), "portland")
        assert a == b

    def test_typo_short_value(self):
        corrupted, __ = corruption.typo(np.random.default_rng(0), "a")
        assert corrupted != "a"


class TestMissingMarker:
    def test_returns_missing_forms(self, rng):
        for __ in range(10):
            value, kind = corruption.missing_marker(rng, "whatever")
            assert kind == "missing"
            assert value in ("nan", "n/a", "")


class TestFormatInjectors:
    def test_percent_sign(self, rng):
        assert corruption.add_percent_sign(rng, "0.05") == ("0.05%", "format")

    def test_slash_date(self, rng):
        corrupted, kind = corruption.slash_date(rng, "2015-04-03")
        assert (corrupted, kind) == ("4/3/15", "format")

    def test_slash_date_malformed_input(self, rng):
        corrupted, kind = corruption.slash_date(rng, "not-a-date-at-all")
        assert kind == "format"

    def test_out_of_range_numeric(self):
        rng = np.random.default_rng(0)
        corrupted, kind = corruption.out_of_range(rng, "42")
        assert kind == "range"
        assert float(corrupted) != 42.0

    def test_out_of_range_non_numeric(self, rng):
        assert corruption.out_of_range(rng, "abc") == ("9999", "range")


INJECTOR_LABELS = [
    (corruption.typo, "typo"),
    (corruption.missing_marker, "missing"),
    (corruption.add_percent_sign, "format"),
    (corruption.slash_date, "format"),
    (corruption.out_of_range, "range"),
]


class TestInjectorContract:
    """Direct contract coverage for every injector."""

    @pytest.mark.parametrize(
        "injector", [fn for fn, __ in INJECTOR_LABELS],
        ids=[fn.__name__ for fn, __ in INJECTOR_LABELS],
    )
    @pytest.mark.parametrize("seed", [0, 1, 7, 123])
    def test_per_seed_determinism(self, injector, seed):
        for value in ("portland", "5.9", "2019-04-12", "72", "x", ""):
            first = injector(np.random.default_rng(seed), value)
            second = injector(np.random.default_rng(seed), value)
            assert first == second

    @pytest.mark.parametrize(
        "injector,label", INJECTOR_LABELS,
        ids=[fn.__name__ for fn, __ in INJECTOR_LABELS],
    )
    def test_documented_error_type_label(self, injector, label):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            for value in ("portland", "5.9", "2019-04-12", "72"):
                __, kind = injector(rng, value)
                assert kind == label

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize(
        "value,low,high",
        [("72", 0.0, 100.0), ("5.9", 0.0, 15.0), ("0", 0.0, 100.0)],
    )
    def test_out_of_range_leaves_valid_range(self, seed, value, low, high):
        rng = np.random.default_rng(seed)
        corrupted, kind = corruption.out_of_range(rng, value)
        assert kind == "range"
        number = float(corrupted)
        assert not low <= number <= high


class TestCorruptionPlan:
    def test_empty_menu_rejected(self):
        with pytest.raises(ValueError):
            corruption.CorruptionPlan([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            corruption.CorruptionPlan([(corruption.typo, -1.0)])

    def test_inject_uses_menu(self, rng):
        plan = corruption.CorruptionPlan([(corruption.add_percent_sign, 1.0)])
        assert plan.inject(rng, "0.05") == ("0.05%", "format")

    def test_inject_respects_weights(self):
        rng = np.random.default_rng(0)
        plan = corruption.CorruptionPlan(
            [(corruption.add_percent_sign, 1.0), (corruption.missing_marker, 0.0)]
        )
        kinds = {plan.inject(rng, "1.0")[1] for __ in range(20)}
        assert kinds == {"format"}

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_inject_per_seed_determinism(self, seed):
        menu = [
            (corruption.typo, 0.5),
            (corruption.missing_marker, 0.3),
            (corruption.out_of_range, 0.2),
        ]
        first = [
            corruption.CorruptionPlan(menu).inject(rng, value)
            for rng in [np.random.default_rng(seed)]
            for value in ("portland", "5.9", "72", "stout") * 3
        ]
        second = [
            corruption.CorruptionPlan(menu).inject(rng, value)
            for rng in [np.random.default_rng(seed)]
            for value in ("portland", "5.9", "72", "stout") * 3
        ]
        assert first == second
