"""Tests for repro.serve — registry, hot-swap parity, protocol, batching."""

import json
import socket

import pytest

from repro import obs
from repro.serve import (
    ServeClient,
    ServerThread,
    TenantRegistry,
    build_demo_registry,
    build_workload,
    drive_clients,
    offline_reference,
    run_smoke,
)
from repro.tinylm.model import ModelConfig, ScoringLM


@pytest.fixture(scope="module")
def registry():
    return build_demo_registry(tenants=2, seed=0, n_patches=3, rank=4)


@pytest.fixture(scope="module")
def workload(registry):
    return build_workload(registry, requests=8, prompts_per_request=3, seed=0)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_duplicate_backbone_object_is_idempotent(self):
        registry = TenantRegistry()
        model = ScoringLM(ModelConfig(name="reg", feature_dim=64, hidden_dim=8))
        assert registry.add_backbone("b", model) is model
        assert registry.add_backbone("b", model) is model
        with pytest.raises(ValueError):
            registry.add_backbone("b", model.clone())

    def test_entry_requires_known_backbone(self):
        registry = TenantRegistry()
        with pytest.raises(KeyError):
            registry.add_entry("t", "d", "em", None, backbone="missing")

    def test_duplicate_entry_rejected(self, registry):
        entry = next(iter(registry.entries.values()))
        with pytest.raises(ValueError):
            registry.add_entry(
                entry.tenant, entry.dataset, entry.task, None, entry.backbone
            )

    def test_ensure_attached_skips_resident_adapter(self, registry):
        first, second = list(registry.entries.values())[:2]
        backbone, swapped = registry.ensure_attached(first)
        assert backbone.adapter is first.adapter
        version = backbone._adapter_version
        __, swapped = registry.ensure_attached(first)
        assert swapped is False
        # The no-op path must not bump the version: that would
        # invalidate the effective-weight memo and re-materialise the
        # fusion deltas on every same-tenant dispatch.
        assert backbone._adapter_version == version
        __, swapped = registry.ensure_attached(second)
        assert swapped is True
        assert backbone.adapter is second.adapter

    def test_load_tier_unknown_raises(self):
        with pytest.raises(KeyError):
            TenantRegistry().load_tier("not-a-tier")


# ----------------------------------------------------------------------
# Hot-swap correctness: shared backbone == isolated per-tenant models
# ----------------------------------------------------------------------
class TestHotSwapParity:
    def test_interleaved_swaps_match_isolated_models(self, registry, workload):
        """Interleaved attach/predict across two tenants on one shared
        backbone must be bit-identical to two fully isolated models."""
        entries = {e.tenant: e for e in registry.entries.values()}
        shared = registry.backbones["serve-demo"]
        isolated = {}
        for tenant, entry in entries.items():
            model = shared.clone()
            model.detach()
            model.attach(entry.adapter)
            isolated[tenant] = model
        for item in workload:  # tenant-alternating by construction
            entry = entries[item["tenant"]]
            backbone, __ = registry.ensure_attached(entry)
            got = backbone.predict_batch(item["prompts"], item["pools"])
            want = isolated[item["tenant"]].predict_batch(
                item["prompts"], item["pools"]
            )
            assert got == want

    def test_detach_restores_base_predictions(self):
        registry = build_demo_registry(tenants=1, seed=3, n_patches=2)
        backbone = registry.backbones["serve-demo"]
        base = backbone.clone()
        base.detach()
        entry = next(iter(registry.entries.values()))
        base_entry = registry.add_entry(
            "base-tenant", entry.dataset, entry.task, None, entry.backbone
        )
        workload = build_workload(registry, requests=2, seed=3)
        item = workload[0]
        registry.ensure_attached(entry)
        backbone.predict_batch(item["prompts"], item["pools"])
        registry.ensure_attached(base_entry)
        assert backbone.adapter is None
        got = backbone.predict_batch(item["prompts"], item["pools"])
        assert got == base.predict_batch(item["prompts"], item["pools"])


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_ping_stats_and_errors(self, registry, workload):
        with ServerThread(registry, max_batch=8, max_wait_ms=2.0) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                assert client.ping()

                response = client.request({"op": "nonsense"})
                assert not response["ok"] and "unknown op" in response["error"]

                response = client.request(
                    {"op": "predict", "tenant": "nobody", "dataset": "x",
                     "task": "em", "prompts": ["p"], "pools": [["a"]]}
                )
                assert not response["ok"]
                assert "unknown entry" in response["error"]

                item = workload[0]
                response = client.request(
                    {"op": "predict", "tenant": item["tenant"],
                     "dataset": item["dataset"], "task": item["task"],
                     "prompts": item["prompts"], "pools": []}
                )
                assert not response["ok"]  # length mismatch

                response = client.predict(
                    item["tenant"], item["dataset"], item["task"],
                    item["prompts"], item["pools"],
                )
                assert response["ok"]
                assert len(response["predictions"]) == len(item["prompts"])
                assert response["answers"] == [
                    item["pools"][i][p]
                    for i, p in enumerate(response["predictions"])
                ]

                stats = client.stats()
                assert stats["requests"] == 1  # errors never reach the queue
                assert stats["batches"] == 1
                assert [e["tenant"] for e in stats["entries"]]

    def test_malformed_line_gets_error_not_disconnect(self, registry):
        with ServerThread(registry) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            ) as raw:
                raw.sendall(b"this is not json\n")
                reply = json.loads(raw.makefile("rb").readline())
                assert not reply["ok"]
                assert "malformed" in reply["error"]

    def test_shutdown_op_stops_server(self, registry):
        server = ServerThread(registry).start()
        with ServeClient("127.0.0.1", server.port) as client:
            client.shutdown()
        server._thread.join(timeout=30)
        assert not server._thread.is_alive()

    def test_startup_failure_surfaces(self, registry):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(RuntimeError):
                ServerThread(registry, port=port).start()
        finally:
            blocker.close()


# ----------------------------------------------------------------------
# Continuous batching: coalesced results == offline oracle
# ----------------------------------------------------------------------
class TestBatching:
    def test_concurrent_load_matches_offline(self, registry, workload):
        offline = offline_reference(registry, workload)
        with ServerThread(registry, max_batch=16, max_wait_ms=15.0) as server:
            responses, latencies = drive_clients(
                "127.0.0.1", server.port, workload, clients=4
            )
            with ServeClient("127.0.0.1", server.port) as probe:
                stats = probe.stats()
        for i, response in enumerate(responses):
            assert response["ok"]
            assert response["predictions"] == offline[i]
        assert stats["requests"] == len(workload)
        assert stats["mean_batch_size"] > 1.0  # coalescing engaged
        assert all(lat > 0.0 for lat in latencies)

    def test_sequential_server_also_matches_offline(self, registry, workload):
        offline = offline_reference(registry, workload)
        with ServerThread(registry, max_batch=1, max_wait_ms=0.0) as server:
            responses, __ = drive_clients(
                "127.0.0.1", server.port, workload, clients=1
            )
        assert [r["predictions"] for r in responses] == offline

    def test_smoke_runner(self):
        result = run_smoke(clients=3, requests=6, prompts_per_request=2)
        assert result["ok"] and result["predictions_identical"]


# ----------------------------------------------------------------------
# Tracing through the request path
# ----------------------------------------------------------------------
class TestServeTracing:
    def test_spans_cover_the_request_path(self, tmp_path):
        registry = build_demo_registry(tenants=2, seed=1, n_patches=2)
        workload = build_workload(registry, requests=6, seed=1)
        tracer = obs.Tracer(tmp_path / "serve.jsonl")
        with obs.using_tracer(tracer):
            with ServerThread(
                registry, max_batch=8, max_wait_ms=10.0
            ) as server:
                drive_clients(
                    "127.0.0.1", server.port, workload, clients=3
                )
        spans = {s["name"]: s for s in tracer.spans}
        assert {"serve.run", "serve.batch", "serve.predict",
                "serve.request"} <= set(spans)
        by_id = {s["id"]: s for s in tracer.spans}
        run_id = spans["serve.run"]["id"]
        requests = [s for s in tracer.spans if s["name"] == "serve.request"]
        assert len(requests) == len(workload)
        for request in requests:
            batch = by_id[request["parent"]]
            assert batch["name"] == "serve.batch"
            assert batch["parent"] == run_id
        histograms = {name for name, __ in tracer.histograms}
        assert "serve.queue_wait_ms" in histograms
        assert "serve.batch_size" in histograms
        gauge_names = {name for name, __ in tracer.gauges}
        assert "model.cache_size" in gauge_names

    def test_untraced_serving_records_nothing(self, registry, workload):
        # obs disabled: record_span/new_span_id must no-op, not crash.
        assert obs.new_span_id() is None
        with ServerThread(registry) as server:
            responses, __ = drive_clients(
                "127.0.0.1", server.port, workload[:2], clients=1
            )
        assert all(r["ok"] for r in responses)


# ----------------------------------------------------------------------
# Streaming updates
# ----------------------------------------------------------------------
class TestStreamUpdate:
    """The stream_update op: in-place online training of live tenants."""

    def _fresh(self):
        # stream_update mutates adapters in place; never share the
        # module-scoped registry.
        return build_demo_registry(tenants=2, seed=7, n_patches=2, rank=4)

    @staticmethod
    def _workload(n=6):
        prompts = [f"match record {i} color red" for i in range(n)]
        pools = [["yes", "no"] for _ in range(n)]
        return prompts, pools

    def test_update_trains_resident_adapter_in_place(self):
        registry = self._fresh()
        prompts, pools = self._workload()
        with ServerThread(registry, max_batch=8) as server:
            client = ServeClient("127.0.0.1", server.port)
            client.predict("tenant0", "em/abt_buy", "em", prompts, pools)
            response = client.stream_update(
                "tenant0", "em/abt_buy", "em", prompts, pools, [0] * 6,
                epochs=4, learning_rate=5e-2,
            )
            assert response["resident_memo_invalidated"] is True
            assert response["stream_rows"] == 6
            assert response["stream_batches"] == 1
            after = client.predict(
                "tenant0", "em/abt_buy", "em", prompts, pools
            )["predictions"]
            assert after == [0] * 6
            assert client.stats()["stream_updates"] == 1
            client.shutdown()
            client.close()

    def test_non_resident_update_preserves_memo(self):
        registry = self._fresh()
        prompts, pools = self._workload()
        backbone = registry.backbones["serve-demo"]
        with ServerThread(registry, max_batch=8) as server:
            client = ServeClient("127.0.0.1", server.port)
            # make tenant1 resident, then train tenant0 behind its back
            before = client.predict(
                "tenant1", "em/abt_buy", "em", prompts, pools
            )["predictions"]
            version = backbone._adapter_version
            response = client.stream_update(
                "tenant0", "em/abt_buy", "em", prompts, pools, [0] * 6
            )
            assert response["resident_memo_invalidated"] is False
            assert backbone._adapter_version == version
            assert backbone.adapter is registry.entries[
                ("tenant1", "em/abt_buy", "em")
            ].adapter
            again = client.predict(
                "tenant1", "em/abt_buy", "em", prompts, pools
            )["predictions"]
            assert again == before
            client.shutdown()
            client.close()

    def test_updates_accumulate_stream_state(self):
        registry = self._fresh()
        prompts, pools = self._workload()
        with ServerThread(registry, max_batch=8) as server:
            client = ServeClient("127.0.0.1", server.port)
            first = client.stream_update(
                "tenant0", "em/abt_buy", "em", prompts, pools, [0] * 6
            )
            second = client.stream_update(
                "tenant0", "em/abt_buy", "em",
                prompts[:3], pools[:3], [1, 1, 1],
            )
            assert (first["stream_rows"], first["stream_batches"]) == (6, 1)
            assert (second["stream_rows"], second["stream_batches"]) == (9, 2)
            assert client.stats()["stream_updates"] == 2
            client.shutdown()
            client.close()

    def test_error_paths(self):
        registry = self._fresh()
        registry.add_entry(
            tenant="base", dataset="d", task="t",
            adapter=None, backbone="serve-demo",
        )
        prompts, pools = self._workload(2)
        with ServerThread(registry, max_batch=8) as server:
            client = ServeClient("127.0.0.1", server.port)
            unknown = client.request({
                "op": "stream_update", "tenant": "nope", "dataset": "d",
                "task": "t", "prompts": prompts, "pools": pools,
                "targets": [0, 0],
            })
            assert not unknown["ok"] and "unknown entry" in unknown["error"]
            base_tier = client.request({
                "op": "stream_update", "tenant": "base", "dataset": "d",
                "task": "t", "prompts": prompts, "pools": pools,
                "targets": [0, 0],
            })
            assert not base_tier["ok"]
            assert "no adapter" in base_tier["error"]
            ragged = client.request({
                "op": "stream_update", "tenant": "tenant0",
                "dataset": "em/abt_buy", "task": "em",
                "prompts": prompts, "pools": pools, "targets": [0],
            })
            assert not ragged["ok"] and "parallel" in ragged["error"]
            out_of_range = client.request({
                "op": "stream_update", "tenant": "tenant0",
                "dataset": "em/abt_buy", "task": "em",
                "prompts": prompts, "pools": pools, "targets": [0, 9],
            })
            assert not out_of_range["ok"]
            assert "out of range" in out_of_range["error"]
            client.shutdown()
            client.close()
