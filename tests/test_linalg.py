"""Unit tests for repro.tinylm.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tinylm import linalg

finite_vectors = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=2, max_size=12
).map(np.array)


class TestRngFor:
    def test_same_seed_same_stream(self):
        a = linalg.rng_for(7, "x").integers(1_000_000)
        b = linalg.rng_for(7, "x").integers(1_000_000)
        assert a == b

    def test_different_streams_differ(self):
        a = linalg.rng_for(7, "x").integers(1_000_000)
        b = linalg.rng_for(7, "y").integers(1_000_000)
        assert a != b

    def test_different_seeds_differ(self):
        a = linalg.rng_for(1, "x").integers(1_000_000)
        b = linalg.rng_for(2, "x").integers(1_000_000)
        assert a != b

    def test_multiple_stream_parts(self):
        a = linalg.rng_for(7, "x", "1").integers(1_000_000)
        b = linalg.rng_for(7, "x", "2").integers(1_000_000)
        assert a != b


class TestSoftmax:
    def test_sums_to_one(self):
        probs = linalg.softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)

    def test_monotone_in_logits(self):
        probs = linalg.softmax(np.array([1.0, 2.0, 3.0]))
        assert probs[0] < probs[1] < probs[2]

    def test_shift_invariance(self):
        logits = np.array([1.0, -2.0, 0.5])
        np.testing.assert_allclose(
            linalg.softmax(logits), linalg.softmax(logits + 100.0)
        )

    def test_extreme_values_stable(self):
        probs = linalg.softmax(np.array([1000.0, -1000.0]))
        assert probs[0] == pytest.approx(1.0)
        assert np.isfinite(probs).all()

    @given(finite_vectors)
    @settings(max_examples=50, deadline=None)
    def test_valid_distribution(self, logits):
        probs = linalg.softmax(logits)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert (probs >= 0).all()

    def test_axis_handling(self):
        matrix = np.array([[1.0, 2.0], [5.0, 1.0]])
        probs = linalg.softmax(matrix, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])


class TestLogSoftmaxAndCrossEntropy:
    @given(finite_vectors)
    @settings(max_examples=50, deadline=None)
    def test_log_softmax_matches_log_of_softmax(self, logits):
        np.testing.assert_allclose(
            linalg.log_softmax(logits),
            np.log(linalg.softmax(logits) + 1e-300),
            atol=1e-6,
        )

    def test_cross_entropy_of_certain_prediction_is_small(self):
        assert linalg.cross_entropy(np.array([50.0, 0.0]), 0) < 1e-6

    def test_cross_entropy_uniform(self):
        value = linalg.cross_entropy(np.zeros(4), 2)
        assert value == pytest.approx(np.log(4))

    def test_cross_entropy_nonnegative(self):
        assert linalg.cross_entropy(np.array([1.0, 3.0, -2.0]), 1) >= 0.0


class TestRelu:
    def test_relu_clamps_negatives(self):
        np.testing.assert_array_equal(
            linalg.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_relu_grad_is_indicator(self):
        np.testing.assert_array_equal(
            linalg.relu_grad(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 1.0]
        )


class TestInits:
    def test_xavier_bounds(self, rng):
        weights = linalg.xavier_init(rng, (20, 30))
        limit = np.sqrt(6.0 / 50)
        assert weights.shape == (20, 30)
        assert np.abs(weights).max() <= limit

    def test_gaussian_scale(self, rng):
        weights = linalg.gaussian_init(rng, (2000,), scale=0.02)
        assert abs(float(weights.std()) - 0.02) < 0.005

    def test_inits_deterministic(self):
        a = linalg.xavier_init(linalg.rng_for(5, "w"), (4, 4))
        b = linalg.xavier_init(linalg.rng_for(5, "w"), (4, 4))
        np.testing.assert_array_equal(a, b)
