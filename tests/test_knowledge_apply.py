"""Unit tests for repro.knowledge.apply — the rule → marker machinery."""

import pytest

from repro.data.schema import Record
from repro.knowledge.apply import (
    MARKER_FORMAT,
    MARKER_KEY_MATCH,
    MARKER_KEY_MISMATCH,
    MARKER_MISSING,
    MARKER_OK,
    MARKER_RANGE,
    MARKER_VOCAB,
    cell_markers,
    column_hints,
    column_observations,
    pair_markers,
    transform_record,
)
from repro.knowledge.rules import (
    FormatConstraint,
    IgnoreAttribute,
    KeyAttribute,
    KeyPattern,
    Knowledge,
    MissingValuePolicy,
    PatternLabelHint,
    ValueRange,
    VocabConstraint,
)


@pytest.fixture()
def beer_record():
    return Record.from_dict(
        {"beer_name": "hoppy trail ipa", "abv": "0.05", "ibu": "40", "city": "portland"}
    )


class TestTransformRecord:
    def test_ignore_drops_attribute(self, beer_record):
        knowledge = Knowledge(rules=(IgnoreAttribute("ibu"),))
        assert "ibu" not in transform_record(beer_record, knowledge)

    def test_no_rules_is_identity(self, beer_record):
        assert transform_record(beer_record, Knowledge.empty()) == beer_record


class TestCellMarkers:
    def test_format_violation(self, beer_record):
        knowledge = Knowledge(rules=(FormatConstraint("abv", "unit_decimal"),))
        dirty = beer_record.replace("abv", "0.05%")
        assert cell_markers(dirty, "abv", knowledge) == [MARKER_FORMAT]

    def test_checks_pass_on_clean(self, beer_record):
        knowledge = Knowledge(rules=(FormatConstraint("abv", "unit_decimal"),))
        assert cell_markers(beer_record, "abv", knowledge) == [MARKER_OK]

    def test_vocab_violation(self, beer_record):
        knowledge = Knowledge(rules=(VocabConstraint("city", "cities"),))
        dirty = beer_record.replace("city", "portlnad")
        assert cell_markers(dirty, "city", knowledge) == [MARKER_VOCAB]

    def test_range_violation(self, beer_record):
        knowledge = Knowledge(rules=(ValueRange("ibu", 5, 120),))
        dirty = beer_record.replace("ibu", "4000")
        assert cell_markers(dirty, "ibu", knowledge) == [MARKER_RANGE]

    def test_missing_marker(self, beer_record):
        knowledge = Knowledge(rules=(MissingValuePolicy(),))
        dirty = beer_record.replace("abv", "nan")
        assert cell_markers(dirty, "abv", knowledge) == [MARKER_MISSING]

    def test_missing_value_under_constraint_reports_missing(self, beer_record):
        knowledge = Knowledge(rules=(FormatConstraint("abv", "unit_decimal"),))
        dirty = beer_record.replace("abv", "nan")
        assert cell_markers(dirty, "abv", knowledge) == [MARKER_MISSING]

    def test_rules_for_other_attributes_ignored(self, beer_record):
        knowledge = Knowledge(rules=(FormatConstraint("ibu", "integer"),))
        assert cell_markers(beer_record, "abv", knowledge) == []

    def test_no_knowledge_no_markers(self, beer_record):
        assert cell_markers(beer_record, "abv", Knowledge.empty()) == []


class TestPairMarkers:
    def test_key_attribute_match(self):
        left = Record.from_dict({"modelno": "ab-1234", "price": "9"})
        right = Record.from_dict({"modelno": "ab-1234", "price": "20"})
        knowledge = Knowledge(rules=(KeyAttribute("modelno"),))
        assert pair_markers(left, right, knowledge) == [MARKER_KEY_MATCH]

    def test_key_attribute_mismatch(self):
        left = Record.from_dict({"modelno": "ab-1234"})
        right = Record.from_dict({"modelno": "zz-9999"})
        knowledge = Knowledge(rules=(KeyAttribute("modelno"),))
        assert pair_markers(left, right, knowledge) == [MARKER_KEY_MISMATCH]

    def test_missing_key_skipped_under_policy(self):
        left = Record.from_dict({"modelno": "nan"})
        right = Record.from_dict({"modelno": "ab-1234"})
        knowledge = Knowledge(rules=(MissingValuePolicy(), KeyAttribute("modelno")))
        assert pair_markers(left, right, knowledge) == []

    def test_missing_key_without_policy_flags_missing(self):
        left = Record.from_dict({"modelno": "nan"})
        right = Record.from_dict({"modelno": "ab-1234"})
        knowledge = Knowledge(rules=(KeyAttribute("modelno"),))
        assert pair_markers(left, right, knowledge) == [MARKER_MISSING]

    def test_key_pattern_extraction(self):
        left = Record.from_dict({"title": "canon powershot xs-1234 camera"})
        right = Record.from_dict({"name": "powershot camera xs-1234 black"})
        knowledge = Knowledge(rules=(KeyPattern("model_number"),))
        assert pair_markers(left, right, knowledge) == [MARKER_KEY_MATCH]

    def test_key_pattern_disjoint(self):
        left = Record.from_dict({"title": "camera xs-1234"})
        right = Record.from_dict({"title": "camera zz-8888"})
        knowledge = Knowledge(rules=(KeyPattern("model_number"),))
        assert pair_markers(left, right, knowledge) == [MARKER_KEY_MISMATCH]

    def test_key_pattern_absent_is_silent(self):
        left = Record.from_dict({"title": "camera"})
        right = Record.from_dict({"title": "camera zz-8888"})
        knowledge = Knowledge(rules=(KeyPattern("model_number"),))
        assert pair_markers(left, right, knowledge) == []

    def test_fuzzy_value_agreement(self):
        left = Record.from_dict({"name": "sony bravia lcd tv xs-1234"})
        right = Record.from_dict({"name": "bravia lcd tv xs-1234 sony black"})
        knowledge = Knowledge(rules=(KeyAttribute("name"),))
        assert pair_markers(left, right, knowledge) == [MARKER_KEY_MATCH]


class TestColumnHints:
    def test_hint_fires_on_matching_column(self):
        knowledge = Knowledge(rules=(PatternLabelHint("dollar_run", "price_range"),))
        hints = column_hints(["$$", "$$$", "$"], knowledge)
        assert hints == ["these values look like price_range"]

    def test_hint_respects_threshold(self):
        knowledge = Knowledge(rules=(PatternLabelHint("dollar_run", "price_range"),))
        assert column_hints(["$$", "abc", "def"], knowledge) == []

    def test_empty_column(self):
        knowledge = Knowledge(rules=(PatternLabelHint("dollar_run", "price_range"),))
        assert column_hints([], knowledge) == []

    @pytest.mark.parametrize(
        "pattern,values",
        [
            ("two_letter_code", ["be", "fr", "de"]),
            ("schema_org_url", ["https://schema.org/eventscheduled"] * 3),
            ("numeric_pair", ["45.58, 9.27", "-3.20, 100.00"]),
            ("iso_date", ["2021-06-05", "1999-01-31"]),
            ("phone_like", ["+1 303 555 0147", "+44 20 7946 0958"]),
            ("five_digits", ["80301", "10001"]),
            ("org_suffix", ["acme inc", "foo group"]),
            ("long_text", ["the annual jazz festival returns with many performances"]),
        ],
    )
    def test_patterns_match_their_values(self, pattern, values):
        knowledge = Knowledge(rules=(PatternLabelHint(pattern, "label"),))
        assert column_hints(values, knowledge) == ["these values look like label"]


class TestColumnObservations:
    def test_observations_are_knowledge_free(self):
        observations = column_observations(["$$", "$$$"])
        assert "pattern dollar run" in observations

    def test_no_observation_for_mixed_column(self):
        assert (
            "pattern dollar run"
            not in column_observations(["$$", "plain words here"])
        )

    def test_empty(self):
        assert column_observations([]) == []
