"""Tests for dataset import/export (repro.data.io)."""

import pytest

from repro.data import generators, io
from repro.data.splits import split_dataset
from repro.tasks.base import get_task
from repro.knowledge.seed import seed_knowledge


class TestJsonlRoundtrip:
    @pytest.mark.parametrize(
        "dataset_id", ["ed/beer", "em/abt_buy", "cta/sotab", "ave/ae110k",
                       "di/phone", "sm/cms", "dc/rayyan"]
    )
    def test_roundtrip_preserves_everything(self, tmp_path, dataset_id):
        dataset = generators.build(dataset_id, count=20, seed=2)
        path = tmp_path / "dataset.jsonl"
        io.save_jsonl(dataset, path)
        restored = io.load_jsonl(path)
        assert restored.name == dataset.name
        assert restored.task == dataset.task
        assert restored.label_set == dataset.label_set
        assert len(restored) == len(dataset)
        for original, loaded in zip(dataset.examples, restored.examples):
            assert loaded.answer == original.answer
            assert loaded.inputs == original.inputs

    def test_restored_dataset_is_trainable(self, tmp_path):
        dataset = generators.build("ed/beer", count=60, seed=2)
        path = tmp_path / "dataset.jsonl"
        io.save_jsonl(dataset, path)
        restored = io.load_jsonl(path)
        splits = split_dataset(restored, few_shot=20, seed=2)
        task = get_task("ed")
        instance = task.training_example(
            splits.few_shot.examples[0], seed_knowledge("ed"), splits.few_shot
        )
        assert instance.candidates

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"task": "ed", "inputs": {}, "answer": "no"}\n')
        with pytest.raises(ValueError, match="header"):
            io.load_jsonl(path)


class TestConstructors:
    def test_matching_dataset(self):
        dataset = io.matching_dataset(
            "mine",
            [({"title": "a"}, {"title": "a"}, True),
             ({"title": "a"}, {"title": "b"}, False)],
        )
        assert dataset.task == "em"
        assert [e.answer for e in dataset.examples] == ["yes", "no"]
        assert dataset.examples[0].inputs["left"].get("title") == "a"

    def test_cell_dataset_tasks(self):
        for task, answer in (("ed", "yes"), ("dc", "fixed"), ("di", "brand")):
            dataset = io.cell_dataset(
                "mine", task, [({"col": "x"}, "col", answer)]
            )
            assert dataset.task == task
            assert dataset.examples[0].answer == answer

    def test_cell_dataset_rejects_other_tasks(self):
        with pytest.raises(ValueError):
            io.cell_dataset("mine", "em", [])

    def test_column_dataset_label_inference(self):
        dataset = io.column_dataset(
            "mine", [(["a", "b"], "letters"), (["1", "2"], "digits")]
        )
        assert dataset.label_set == ("digits", "letters")

    def test_extraction_dataset(self):
        dataset = io.extraction_dataset("mine", [("red shoes", "color", "red")])
        assert dataset.examples[0].inputs["text"] == "red shoes"

    def test_schema_dataset(self):
        dataset = io.schema_dataset(
            "mine", [(("dob", "date of birth"), ("birth_date", "birth"), True)]
        )
        assert dataset.examples[0].inputs["left_name"] == "dob"

    def test_constructed_dataset_end_to_end(self, tiny_model):
        dataset = io.matching_dataset(
            "mine",
            [({"title": f"item {i}"}, {"title": f"item {i}"}, True) for i in range(4)],
        )
        task = get_task("em")
        score = task.evaluate(
            tiny_model, dataset.examples, seed_knowledge("em"), dataset
        )
        assert 0.0 <= score <= 100.0
