"""Unit tests for repro.tasks.metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import metrics

labels = st.lists(st.sampled_from(["yes", "no"]), min_size=1, max_size=40)


class TestAccuracy:
    def test_perfect(self):
        assert metrics.accuracy(["a", "b"], ["a", "b"]) == 100.0

    def test_zero(self):
        assert metrics.accuracy(["a", "b"], ["b", "a"]) == 0.0

    def test_partial(self):
        assert metrics.accuracy(["a", "b", "c", "d"], ["a", "b", "x", "y"]) == 50.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            metrics.accuracy(["a"], ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.accuracy([], [])


class TestBinaryF1:
    def test_perfect(self):
        assert metrics.binary_f1(["yes", "no"], ["yes", "no"]) == 100.0

    def test_no_true_positives(self):
        assert metrics.binary_f1(["yes", "yes"], ["no", "no"]) == 0.0

    def test_all_positive_predictions(self):
        # 1 TP, 1 FP, 0 FN → P=0.5, R=1 → F1=66.67
        value = metrics.binary_f1(["yes", "no"], ["yes", "yes"])
        assert value == pytest.approx(200 / 3)

    def test_precision_recall_symmetry(self):
        missed = metrics.binary_f1(["yes", "yes", "no"], ["yes", "no", "no"])
        spurious = metrics.binary_f1(["yes", "no", "no"], ["yes", "yes", "no"])
        assert missed == pytest.approx(spurious)

    @given(labels)
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_perfection(self, golds):
        assert metrics.binary_f1(golds, golds) in (0.0, 100.0)
        assert 0.0 <= metrics.binary_f1(golds, ["yes"] * len(golds)) <= 100.0

    def test_custom_positive_label(self):
        assert metrics.binary_f1(["a", "b"], ["a", "b"], positive="a") == 100.0


class TestMicroF1:
    def test_equals_accuracy_single_label(self):
        golds = ["a", "b", "c", "a"]
        preds = ["a", "b", "x", "y"]
        assert metrics.micro_f1(golds, preds) == pytest.approx(
            metrics.accuracy(golds, preds)
        )

    def test_zero_when_all_wrong(self):
        assert metrics.micro_f1(["a", "b"], ["b", "a"]) == 0.0


class TestRepairF1:
    def test_perfect_repairs(self):
        value = metrics.repair_f1(["x", "y"], ["x", "y"], ["a", "b"])
        assert value == 100.0

    def test_abstaining_hurts_recall_not_precision(self):
        # One correct repair, one abstention (pred == dirty original).
        value = metrics.repair_f1(["x", "y"], ["x", "b"], ["a", "b"])
        # P = 1/1, R = 1/2 → F1 = 2/3.
        assert value == pytest.approx(200 / 3)

    def test_wrong_repair_hurts_both(self):
        value = metrics.repair_f1(["x", "y"], ["x", "z"], ["a", "b"])
        # P = 1/2, R = 1/2.
        assert value == pytest.approx(50.0)

    def test_no_correct_repairs(self):
        assert metrics.repair_f1(["x"], ["z"], ["a"]) == 0.0

    def test_misaligned_originals_rejected(self):
        with pytest.raises(ValueError):
            metrics.repair_f1(["x"], ["x"], ["a", "b"])


class TestExtractionF1:
    def test_perfect(self):
        assert metrics.extraction_f1(["red", "n/a"], ["red", "n/a"]) == 100.0

    def test_spurious_extraction_is_fp(self):
        # gold n/a, predicted value → FP only.
        value = metrics.extraction_f1(["red", "n/a"], ["red", "blue"])
        assert value == pytest.approx(200 / 3)

    def test_missed_extraction_is_fn(self):
        value = metrics.extraction_f1(["red", "blue"], ["red", "n/a"])
        assert value == pytest.approx(200 / 3)

    def test_wrong_extraction_counts_twice(self):
        # FP for prediction, FN for gold → F1 = 2*1/(2*1+1+1).
        value = metrics.extraction_f1(["red", "blue"], ["red", "green"])
        assert value == pytest.approx(50.0)

    def test_all_na_gold_and_pred(self):
        assert metrics.extraction_f1(["n/a"], ["n/a"]) == 0.0  # no positives


class TestScoreDispatch:
    def test_binary_tasks(self):
        for task in ("em", "ed", "sm"):
            assert metrics.score(task, ["yes"], ["yes"]) == 100.0

    def test_di_uses_accuracy(self):
        assert metrics.score("di", ["a", "b"], ["a", "x"]) == 50.0

    def test_dc_requires_originals(self):
        with pytest.raises(ValueError):
            metrics.score("dc", ["x"], ["x"])

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            metrics.score("xx", ["a"], ["a"])

    def test_metric_names_cover_tasks(self):
        assert set(metrics.METRIC_NAMES) == {
            "em", "ed", "sm", "di", "cta", "dc", "ave", "qa",
        }


class TestAnswerNormalization:
    def test_lowercases(self):
        assert metrics.normalize_answer("Sierra Nevada") == "sierra nevada"

    def test_strips_punctuation(self):
        assert metrics.normalize_answer("st. john's!") == "st johns"

    def test_strips_articles(self):
        assert metrics.normalize_answer("The Answer") == "answer"
        assert metrics.normalize_answer("a pale ale") == "pale ale"
        assert metrics.normalize_answer("an old ale") == "old ale"

    def test_articles_inside_words_survive(self):
        # "the" embedded in a token is not an article
        assert metrics.normalize_answer("theater") == "theater"
        assert metrics.normalize_answer("anchor") == "anchor"

    def test_collapses_whitespace(self):
        assert metrics.normalize_answer("  pale \t ale  ") == "pale ale"

    def test_empty_string(self):
        assert metrics.normalize_answer("") == ""
        assert metrics.normalize_answer("the a an") == ""


class TestNormalizedEM:
    def test_exact_after_normalization(self):
        assert metrics.normalized_em(["The Answer"], ["answer!"]) == 100.0

    def test_mismatch(self):
        assert metrics.normalized_em(["pale ale"], ["stout"]) == 0.0

    def test_mixed(self):
        score = metrics.normalized_em(
            ["Pale Ale", "stout"], ["pale ale", "porter"]
        )
        assert score == 50.0

    def test_qa_dispatch(self):
        assert metrics.score("qa", ["The Answer"], ["answer"]) == 100.0


class TestTokenF1:
    def test_perfect(self):
        assert metrics.token_f1(["pale ale"], ["The Pale Ale"]) == 100.0

    def test_partial_overlap(self):
        # one shared token of two on each side -> F1 = 50
        assert metrics.token_f1(["pale ale"], ["pale stout"]) == 50.0

    def test_no_overlap(self):
        assert metrics.token_f1(["pale ale"], ["brown porter"]) == 0.0

    def test_both_empty_after_normalization(self):
        assert metrics.token_f1(["the"], ["an"]) == 100.0

    def test_one_empty_after_normalization(self):
        assert metrics.token_f1(["the"], ["stout"]) == 0.0
