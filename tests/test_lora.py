"""Unit tests for repro.tinylm.lora."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tinylm.lora import LoRAPatch

SHAPES = {"encoder.W1": (8, 32), "answer.V": (8, 32)}


class TestInit:
    def test_paper_initialisation(self):
        """Paper Section V-A: B Gaussian, A zeros → fresh delta is zero."""
        patch = LoRAPatch("p", SHAPES, rank=3)
        for name in SHAPES:
            assert np.any(patch.B[name] != 0.0)
            assert np.all(patch.A[name] == 0.0)
            np.testing.assert_array_equal(patch.delta(name), np.zeros(SHAPES[name]))

    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            LoRAPatch("p", SHAPES, rank=0)
        with pytest.raises(ValueError):
            LoRAPatch("p", {"w": (4, 100)}, rank=5)

    def test_seed_and_name_determine_init(self):
        a = LoRAPatch("p", SHAPES, rank=3, seed=1)
        b = LoRAPatch("p", SHAPES, rank=3, seed=1)
        c = LoRAPatch("q", SHAPES, rank=3, seed=1)
        np.testing.assert_array_equal(a.B["encoder.W1"], b.B["encoder.W1"])
        assert not np.allclose(a.B["encoder.W1"], c.B["encoder.W1"])


class TestDelta:
    def test_delta_is_alpha_scaled_product(self):
        patch = LoRAPatch("p", SHAPES, rank=2, alpha=3.0, seed=5)
        patch.A["encoder.W1"] = np.ones((2, 32))
        expected = 3.0 * patch.B["encoder.W1"] @ np.ones((2, 32))
        np.testing.assert_allclose(patch.delta("encoder.W1"), expected)

    def test_delta_none_for_untargeted(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        assert patch.delta("other.weight") is None

    def test_delta_rank_bounded(self):
        patch = LoRAPatch("p", SHAPES, rank=2, seed=1)
        patch.A["encoder.W1"] = np.random.default_rng(0).normal(0, 1, (2, 32))
        assert np.linalg.matrix_rank(patch.delta("encoder.W1")) <= 2


class TestParametersAndGrads:
    def test_parameters_are_aliased(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        params = patch.parameters()
        params["p/encoder.W1/A"][0, 0] = 42.0
        assert patch.A["encoder.W1"][0, 0] == 42.0

    def test_parameter_keys(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        assert set(patch.parameters()) == {
            "p/encoder.W1/A", "p/encoder.W1/B", "p/answer.V/A", "p/answer.V/B",
        }

    def test_grad_wrt_shapes(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        grads = patch.grad_wrt("encoder.W1", np.ones(SHAPES["encoder.W1"]))
        assert grads["p/encoder.W1/B"].shape == patch.B["encoder.W1"].shape
        assert grads["p/encoder.W1/A"].shape == patch.A["encoder.W1"].shape

    def test_grad_wrt_untargeted_is_empty(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        assert patch.grad_wrt("other", np.ones((3, 3))) == {}

    def test_num_parameters(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        assert patch.num_parameters() == 2 * (8 * 2 + 2 * 32)


class TestUtilities:
    def test_clone_is_deep(self):
        patch = LoRAPatch("p", SHAPES, rank=2, seed=1)
        copy = patch.clone()
        copy.A["encoder.W1"][0, 0] = 7.0
        assert patch.A["encoder.W1"][0, 0] == 0.0

    def test_clone_rename(self):
        assert LoRAPatch("p", SHAPES, rank=2).clone("q").name == "q"

    def test_scaled(self):
        patch = LoRAPatch("p", SHAPES, rank=2, alpha=1.0, seed=1)
        patch.A["encoder.W1"] = np.ones((2, 32))
        doubled = patch.scaled(2.0)
        np.testing.assert_allclose(
            doubled.delta("encoder.W1"), 2.0 * patch.delta("encoder.W1")
        )

    def test_frobenius_norm_zero_when_fresh(self):
        assert LoRAPatch("p", SHAPES, rank=2).frobenius_norm() == 0.0

    def test_frobenius_trace_identity_matches_dense(self, monkeypatch):
        """‖αBA‖_F via (r,r) Grams equals the materialised norm."""
        patch = LoRAPatch("p", SHAPES, rank=3, alpha=2.0, seed=4)
        rng = np.random.default_rng(11)
        for name in patch.A:
            patch.A[name] = rng.normal(0, 1, patch.A[name].shape)
        dense = np.sqrt(
            sum(float(np.sum(patch.delta(name) ** 2)) for name in SHAPES)
        )
        assert patch.frobenius_norm() == pytest.approx(dense, rel=1e-12)
        monkeypatch.setenv("REPRO_EXACT_WEIGHTS", "1")
        assert patch.frobenius_norm() == pytest.approx(dense, rel=1e-12)

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_state_dict_roundtrip(self, rank):
        patch = LoRAPatch("p", SHAPES, rank=rank, seed=2)
        rng = np.random.default_rng(0)
        for name in patch.A:
            patch.A[name] = rng.normal(0, 1, patch.A[name].shape)
        restored = LoRAPatch("p", SHAPES, rank=rank, seed=99)
        restored.load_state_dict(patch.state_dict())
        for name in SHAPES:
            np.testing.assert_array_equal(
                restored.delta(name), patch.delta(name)
            )

    def test_load_state_dict_rejects_unknown_target(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        with pytest.raises(KeyError):
            patch.load_state_dict({"B::unknown": np.zeros((8, 2))})

    def test_load_state_dict_rejects_bad_shape(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        with pytest.raises(ValueError):
            patch.load_state_dict({"B::encoder.W1": np.zeros((3, 3))})

    def test_iteration_yields_targets(self):
        assert set(LoRAPatch("p", SHAPES, rank=2)) == set(SHAPES)


class TestRankProtocol:
    def test_delta_shape(self):
        patch = LoRAPatch("p", SHAPES, rank=2)
        assert patch.delta_shape("encoder.W1") == SHAPES["encoder.W1"]
        assert patch.delta_shape("other.weight") is None

    def test_rank_components_reconstruct_delta(self):
        patch = LoRAPatch("p", SHAPES, rank=2, alpha=3.0, seed=5)
        patch.A["encoder.W1"] = np.random.default_rng(0).normal(0, 1, (2, 32))
        (comp,) = patch.rank_components("encoder.W1")
        np.testing.assert_allclose(
            comp.coeff * (comp.B @ comp.A), patch.delta("encoder.W1")
        )
        assert comp.trainable
        assert comp.lambda_index is None
        assert comp.key_B == "p/encoder.W1/B"
        assert comp.key_A == "p/encoder.W1/A"

    def test_rank_components_empty_for_untargeted(self):
        assert LoRAPatch("p", SHAPES, rank=2).rank_components("other") == []
