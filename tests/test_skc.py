"""Tests for the SKC component (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import SKCConfig
from repro.core.skc.finetune import few_shot_finetune
from repro.core.skc.fusion import attach_fusion
from repro.core.skc.patches import (
    dataset_training_examples,
    extract_knowledge_patches,
    extract_patch,
)
from repro.core.skc.strategies import STRATEGIES, build_adapter
from repro.data import generators
from repro.data.generators import upstream
from repro.tinylm.fusion import PatchFusion


@pytest.fixture(scope="module")
def skc_config():
    return SKCConfig(patch_epochs=2, finetune_epochs=3)


@pytest.fixture(scope="module")
def small_upstream():
    return upstream.generate("beer_em", count=30, seed=3)


class TestTrainingExamples:
    def test_uses_oracle_knowledge_for_upstream(self, small_upstream):
        examples = dataset_training_examples(small_upstream)
        assert len(examples) == len(small_upstream.examples)
        # The beer_em oracle has a KeyAttribute rule → markers appear in
        # at least some prompts.
        assert any("[key_" in ex.prompt for ex in examples)

    def test_explicit_knowledge_override(self, small_upstream):
        from repro.knowledge.rules import Knowledge

        examples = dataset_training_examples(small_upstream, Knowledge.empty())
        assert not any("[key_" in ex.prompt for ex in examples)


class TestPatchExtraction:
    def test_patch_learns_something(self, base_model, small_upstream, skc_config):
        patch = extract_patch(base_model, small_upstream, skc_config)
        assert patch.frobenius_norm() > 0.0
        assert patch.name == "em-beer_em"

    def test_base_model_untouched(self, base_model, small_upstream, skc_config):
        before = {k: v.copy() for k, v in base_model.weights.items()}
        extract_patch(base_model, small_upstream, skc_config)
        for name, value in base_model.weights.items():
            np.testing.assert_array_equal(value, before[name])
        assert base_model.adapter is None

    def test_extract_many(self, base_model, skc_config):
        datasets = [
            upstream.generate("buy", count=16, seed=1),
            upstream.generate("adult", count=16, seed=1),
        ]
        patches = extract_knowledge_patches(base_model, datasets, skc_config)
        assert [p.name for p in patches] == ["di-buy", "ed-adult"]


class TestStrategies:
    def test_known_strategies(self):
        assert STRATEGIES == ("single", "uniform", "adaptive")

    def test_unknown_rejected(self, base_model, skc_config):
        with pytest.raises(KeyError):
            build_adapter("magic", base_model, [], skc_config)

    def test_single_has_no_upstream_patches(self, base_model, skc_config):
        adapter = build_adapter("single", base_model, [], skc_config)
        assert isinstance(adapter, PatchFusion)
        assert adapter.patches == []
        assert not adapter.train_lambdas

    def test_uniform_freezes_lambdas(self, base_model, small_upstream, skc_config):
        patch = extract_patch(base_model, small_upstream, skc_config)
        adapter = build_adapter("uniform", base_model, [patch, patch.clone("b")], skc_config)
        assert not adapter.train_lambdas
        np.testing.assert_allclose(adapter.lambdas, [0.5, 0.5])

    def test_adaptive_trains_lambdas(self, base_model, small_upstream, skc_config):
        patch = extract_patch(base_model, small_upstream, skc_config)
        adapter = build_adapter("adaptive", base_model, [patch], skc_config)
        assert adapter.train_lambdas
        np.testing.assert_allclose(adapter.lambdas, [skc_config.initial_lambda])

    def test_strategy_patches_are_clones(self, base_model, small_upstream, skc_config):
        patch = extract_patch(base_model, small_upstream, skc_config)
        adapter = build_adapter("adaptive", base_model, [patch], skc_config)
        adapter.patches[0].A["encoder.W1"][0, 0] += 99.0
        assert patch.A["encoder.W1"][0, 0] != adapter.patches[0].A["encoder.W1"][0, 0]


class TestFusionAndFinetune:
    def test_attach_fusion_clones_upstream(self, bundle, skc_config):
        model, fusion = attach_fusion(
            bundle.upstream_model, bundle.patches[:2], skc_config
        )
        assert model is not bundle.upstream_model
        assert model.adapter is fusion
        assert bundle.upstream_model.adapter is None

    def test_finetune_requires_adapter(self, bundle, skc_config, beer_splits):
        model = bundle.fresh_upstream()
        with pytest.raises(ValueError):
            few_shot_finetune(model, beer_splits.few_shot, skc_config)

    def test_finetune_moves_adapter_only(self, bundle, skc_config, beer_splits):
        model, fusion = attach_fusion(
            bundle.upstream_model, bundle.patches[:2], skc_config
        )
        base_before = {k: v.copy() for k, v in model.weights.items()}
        lambdas_before = fusion.lambdas.copy()
        report = few_shot_finetune(model, beer_splits.few_shot, skc_config)
        for name, value in model.weights.items():
            np.testing.assert_array_equal(value, base_before[name])
        assert report.epoch_losses[0] >= report.epoch_losses[-1] or True
        assert fusion.new_patch.frobenius_norm() > 0.0
        assert not np.array_equal(fusion.lambdas, lambdas_before)

    def test_finetune_improves_few_shot_fit(self, bundle, beer_splits):
        from repro.knowledge.seed import seed_knowledge
        from repro.tasks.base import get_task

        config = SKCConfig(finetune_epochs=10)
        task = get_task("ed")
        knowledge = seed_knowledge("ed")
        model, __ = attach_fusion(bundle.upstream_model, [], config, strategy="single")
        before = task.evaluate(
            model, beer_splits.few_shot.examples, knowledge, beer_splits.few_shot
        )
        few_shot_finetune(model, beer_splits.few_shot, config)
        after = task.evaluate(
            model, beer_splits.few_shot.examples, knowledge, beer_splits.few_shot
        )
        assert after >= before
