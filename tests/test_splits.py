"""Unit tests for repro.data.splits."""

from collections import Counter

import pytest

from repro.data import generators
from repro.data.splits import few_shot_slice, split_dataset


@pytest.fixture(scope="module")
def em_dataset():
    return generators.build("em/abt_buy", count=150, seed=4)


class TestSplitDataset:
    def test_sizes(self, em_dataset):
        splits = split_dataset(em_dataset, few_shot=20, test_fraction=0.4, seed=1)
        assert len(splits.test.examples) == 60
        assert len(splits.train.examples) == 90
        assert len(splits.few_shot.examples) == 20

    def test_few_shot_subset_of_train(self, em_dataset):
        splits = split_dataset(em_dataset, few_shot=20, seed=1)
        train_ids = {id(ex) for ex in splits.train.examples}
        assert all(id(ex) in train_ids for ex in splits.few_shot.examples)

    def test_train_test_disjoint(self, em_dataset):
        splits = split_dataset(em_dataset, few_shot=20, seed=1)
        test_ids = {id(ex) for ex in splits.test.examples}
        assert not any(id(ex) in test_ids for ex in splits.train.examples)

    def test_few_shot_class_balanced(self, em_dataset):
        splits = split_dataset(em_dataset, few_shot=20, seed=1)
        counts = Counter(ex.answer for ex in splits.few_shot.examples)
        assert counts["yes"] == counts["no"] == 10

    def test_validation_is_few_shot(self, em_dataset):
        splits = split_dataset(em_dataset, few_shot=20, seed=1)
        assert splits.validation is splits.few_shot

    def test_deterministic(self, em_dataset):
        a = split_dataset(em_dataset, few_shot=20, seed=1)
        b = split_dataset(em_dataset, few_shot=20, seed=1)
        assert [id(x) for x in a.test.examples] == [id(x) for x in b.test.examples]

    def test_seed_changes_split(self, em_dataset):
        a = split_dataset(em_dataset, few_shot=20, seed=1)
        b = split_dataset(em_dataset, few_shot=20, seed=2)
        assert [id(x) for x in a.test.examples] != [id(x) for x in b.test.examples]

    def test_too_small_dataset_rejected(self, em_dataset):
        tiny = em_dataset.head(10)
        with pytest.raises(ValueError):
            split_dataset(tiny, few_shot=20)

    def test_open_answer_datasets_split_without_interleave(self):
        dataset = generators.build("dc/rayyan", count=80, seed=2)
        splits = split_dataset(dataset, few_shot=20, seed=2)
        assert len(splits.few_shot.examples) == 20

    def test_name_and_task_passthrough(self, em_dataset):
        splits = split_dataset(em_dataset, few_shot=20, seed=1)
        assert splits.task == "em"
        assert splits.name.startswith("abt_buy")


class TestFewShotSlice:
    def test_slice_prefix(self, em_dataset):
        splits = split_dataset(em_dataset, few_shot=20, seed=1)
        sliced = few_shot_slice(splits, 40)
        assert len(sliced.examples) == 40
        assert sliced.examples[:20] == splits.few_shot.examples

    def test_slice_caps_at_train_size(self, em_dataset):
        splits = split_dataset(em_dataset, few_shot=20, seed=1)
        sliced = few_shot_slice(splits, 10_000)
        assert len(sliced.examples) == len(splits.train.examples)
