"""Sanity tests over the vocabulary banks."""

import numpy as np
import pytest

from repro.data import vocab


class TestBankHygiene:
    BANKS = {
        "PHONE_BRANDS": vocab.PHONE_BRANDS,
        "ELECTRONICS_BRANDS": vocab.ELECTRONICS_BRANDS,
        "RETAIL_BRANDS": vocab.RETAIL_BRANDS,
        "GROCERY_BRANDS": vocab.GROCERY_BRANDS,
        "FLAVORS": vocab.FLAVORS,
        "SCENTS": vocab.SCENTS,
        "COLORS": vocab.COLORS,
        "MATERIALS": vocab.MATERIALS,
        "CITIES": vocab.CITIES,
        "STATES": vocab.STATES,
        "BEER_STYLES": vocab.BEER_STYLES,
        "CUISINES": vocab.CUISINES,
        "AIRLINES": vocab.AIRLINES,
        "AIRPORTS": vocab.AIRPORTS,
        "ORGANIZATIONS": vocab.ORGANIZATIONS,
        "ITEM_FORMS": vocab.ITEM_FORMS,
    }

    @pytest.mark.parametrize("name", sorted(BANKS))
    def test_nonempty_lowercase_distinct(self, name):
        bank = self.BANKS[name]
        assert len(bank) >= 4
        assert len(set(bank)) == len(bank)
        for entry in bank:
            assert entry == entry.lower().strip()

    def test_phone_lines_cover_all_brands(self):
        assert set(vocab.PHONE_LINES) == set(vocab.PHONE_BRANDS)
        for lines in vocab.PHONE_LINES.values():
            assert len(lines) >= 2

    def test_electronics_products_cover_all_brands(self):
        assert set(vocab.ELECTRONICS_PRODUCTS) == set(vocab.ELECTRONICS_BRANDS)

    def test_journals_have_distinct_abbreviations(self):
        abbreviations = [abbr for __, abbr in vocab.JOURNALS]
        assert len(set(abbreviations)) == len(abbreviations)


class TestHelpers:
    def test_choice_deterministic(self):
        a = vocab.choice(np.random.default_rng(5), vocab.CITIES)
        b = vocab.choice(np.random.default_rng(5), vocab.CITIES)
        assert a == b
        assert a in vocab.CITIES

    def test_sample_distinct(self):
        rng = np.random.default_rng(1)
        picks = vocab.sample_distinct(rng, vocab.COLORS, 5)
        assert len(set(picks)) == 5
        assert all(p in vocab.COLORS for p in picks)

    def test_sample_distinct_overflow(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            vocab.sample_distinct(rng, vocab.GENDERS, 99)
