"""Tests for the rule-induction engine (MockGPT's reasoning core)."""

import pytest

from repro.data import generators
from repro.knowledge.rules import (
    CandidateHint,
    FormatConstraint,
    IgnoreAttribute,
    KeyAttribute,
    KeyPattern,
    MissingValuePolicy,
    PatternLabelHint,
    VocabConstraint,
)
from repro.llm.induction import induce


def _rules_of(scored, rule_type):
    return [s.rule for s in scored if isinstance(s.rule, rule_type)]


class TestEDInduction:
    def test_beer_recovers_abv_constraint(self):
        dataset = generators.build("ed/beer", count=60, seed=5)
        scored = induce("ed", dataset.examples[:24])
        formats = _rules_of(scored, FormatConstraint)
        assert FormatConstraint("abv", "unit_decimal") in formats

    def test_flights_recovers_time_format(self):
        dataset = generators.build("ed/flights", count=60, seed=5)
        scored = induce("ed", dataset.examples[:24])
        formats = _rules_of(scored, FormatConstraint)
        assert any(
            rule.validator == "time_12h" for rule in formats
        )

    def test_missing_policy_from_missing_errors(self):
        dataset = generators.build("ed/rayyan", count=80, seed=5)
        scored = induce("ed", dataset.examples[:40])
        assert MissingValuePolicy() in [s.rule for s in scored]

    def test_confidences_in_unit_interval(self):
        dataset = generators.build("ed/beer", count=40, seed=5)
        for scored in induce("ed", dataset.examples):
            assert 0.0 < scored.confidence <= 1.0


class TestEMInduction:
    def test_abt_buy_recovers_model_number_pattern(self):
        dataset = generators.build("em/abt_buy", count=80, seed=5)
        scored = induce("em", dataset.examples[:40])
        assert _rules_of(scored, KeyPattern)

    def test_walmart_recovers_a_key_identifier(self):
        dataset = generators.build("em/walmart_amazon", count=80, seed=5)
        scored = induce("em", dataset.examples[:40])
        keys = _rules_of(scored, KeyAttribute) + _rules_of(scored, KeyPattern)
        # Half the hard negatives differ by model number, half by
        # capacity, so either identifier may dominate a 40-shot slice.
        assert keys

    def test_price_proposed_for_ignoring(self):
        dataset = generators.build("em/abt_buy", count=120, seed=5)
        scored = induce("em", dataset.examples[:60])
        ignores = _rules_of(scored, IgnoreAttribute)
        assert IgnoreAttribute("price") in ignores


class TestDIInduction:
    def test_phone_recovers_brand_bank(self):
        dataset = generators.build("di/phone", count=60, seed=5)
        scored = induce("di", dataset.examples[:20])
        hints = _rules_of(scored, CandidateHint)
        assert CandidateHint("known_brand", bank="phone_brands") in hints

    def test_flipkart_recovers_title_prefix(self):
        dataset = generators.build("di/flipkart", count=60, seed=5)
        scored = induce("di", dataset.examples[:20])
        hints = _rules_of(scored, CandidateHint)
        assert any(h.strategy == "title_prefix" for h in hints)


class TestAVEInduction:
    def test_ae_recovers_attribute_banks(self):
        dataset = generators.build("ave/ae110k", count=120, seed=5)
        scored = induce("ave", dataset.examples[:60])
        vocabs = _rules_of(scored, VocabConstraint)
        assert any(rule.attribute == "gender" for rule in vocabs)

    def test_oa_recovers_descriptive_first(self):
        dataset = generators.build("ave/oa_mine", count=160, seed=5)
        scored = induce("ave", dataset.examples[:80])
        hints = _rules_of(scored, CandidateHint)
        assert any(h.strategy == "descriptive_first" for h in hints)


class TestCTAInduction:
    def test_sotab_recovers_pattern_hints(self):
        dataset = generators.build("cta/sotab", count=120, seed=5)
        scored = induce("cta", dataset.examples[:60])
        hints = _rules_of(scored, PatternLabelHint)
        pairs = {(h.pattern, h.label) for h in hints}
        assert ("dollar_run", "price_range") in pairs


class TestDCInduction:
    def test_rayyan_recovers_derive_hint(self):
        dataset = generators.build("dc/rayyan", count=160, seed=5)
        scored = induce("dc", dataset.examples[:80])
        hints = _rules_of(scored, CandidateHint)
        assert any(h.strategy == "derive" for h in hints)


class TestGeneralBehaviour:
    def test_empty_examples(self):
        assert induce("ed", []) == []

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            induce("xx", [])

    def test_sm_induces_nothing(self):
        dataset = generators.build("sm/cms", count=40, seed=5)
        assert induce("sm", dataset.examples) == []

    def test_deduplication_keeps_max_confidence(self):
        dataset = generators.build("ed/beer", count=60, seed=5)
        scored = induce("ed", dataset.examples)
        rules = [s.rule for s in scored]
        assert len(rules) == len(set(rules))
