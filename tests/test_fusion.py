"""Unit tests for repro.tinylm.fusion (paper Eq. 4)."""

import numpy as np
import pytest

from repro.tinylm.fusion import PatchFusion
from repro.tinylm.lora import LoRAPatch

SHAPES = {"encoder.W1": (6, 20)}


def _patch(name, seed, fill=0.1):
    patch = LoRAPatch(name, SHAPES, rank=2, seed=seed)
    patch.A["encoder.W1"] = np.full((2, 20), fill)
    return patch


class TestDelta:
    def test_weighted_sum_matches_eq4(self):
        patches = [_patch("a", 1), _patch("b", 2)]
        new = _patch("new", 3, fill=0.05)
        fusion = PatchFusion(patches, new, initial_weight=0.5)
        expected = (
            0.5 * patches[0].delta("encoder.W1")
            + 0.5 * patches[1].delta("encoder.W1")
            + new.delta("encoder.W1")
        )
        np.testing.assert_allclose(fusion.delta("encoder.W1"), expected)

    def test_zero_lambdas_leave_only_new_patch(self):
        patches = [_patch("a", 1)]
        new = _patch("new", 3, fill=0.05)
        fusion = PatchFusion(patches, new, initial_weight=0.0)
        np.testing.assert_allclose(
            fusion.delta("encoder.W1"), new.delta("encoder.W1")
        )

    def test_no_patches_is_just_new(self):
        new = _patch("new", 3)
        fusion = PatchFusion([], new)
        np.testing.assert_allclose(
            fusion.delta("encoder.W1"), new.delta("encoder.W1")
        )

    def test_untargeted_weight_is_none(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2))
        assert fusion.delta("other.weight") is None


class TestParameters:
    def test_lambda_exposure_follows_flag(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2), train_lambdas=True)
        assert "fusion/lambdas" in fusion.parameters()
        frozen = PatchFusion([_patch("a", 1)], _patch("new", 2), train_lambdas=False)
        assert "fusion/lambdas" not in frozen.parameters()

    def test_patch_exposure_follows_flag(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2), train_patches=True)
        assert "a/encoder.W1/A" in fusion.parameters()
        frozen = PatchFusion([_patch("a", 1)], _patch("new", 2), train_patches=False)
        assert "a/encoder.W1/A" not in frozen.parameters()

    def test_new_patch_always_trainable(self):
        fusion = PatchFusion(
            [_patch("a", 1)], _patch("new", 2),
            train_lambdas=False, train_patches=False,
        )
        assert "new/encoder.W1/A" in fusion.parameters()

    def test_no_lambda_param_without_patches(self):
        fusion = PatchFusion([], _patch("new", 2), train_lambdas=True)
        assert "fusion/lambdas" not in fusion.parameters()


class TestGrads:
    def test_lambda_gradient_is_inner_product(self):
        patch = _patch("a", 1)
        fusion = PatchFusion([patch], _patch("new", 2), initial_weight=0.3)
        d_weight = np.random.default_rng(0).normal(0, 1, SHAPES["encoder.W1"])
        grads = fusion.grad_wrt("encoder.W1", d_weight)
        expected = float(np.sum(d_weight * patch.delta("encoder.W1")))
        assert grads["fusion/lambdas"][0] == pytest.approx(expected)

    def test_patch_gradients_scaled_by_lambda(self):
        patch = _patch("a", 1)
        fusion = PatchFusion([patch], _patch("new", 2), initial_weight=0.5)
        d_weight = np.ones(SHAPES["encoder.W1"])
        grads = fusion.grad_wrt("encoder.W1", d_weight)
        direct = patch.grad_wrt("encoder.W1", d_weight)
        np.testing.assert_allclose(
            grads["a/encoder.W1/A"], 0.5 * direct["a/encoder.W1/A"]
        )

    def test_frozen_patches_get_no_gradient(self):
        fusion = PatchFusion(
            [_patch("a", 1)], _patch("new", 2), train_patches=False
        )
        grads = fusion.grad_wrt("encoder.W1", np.ones(SHAPES["encoder.W1"]))
        assert "a/encoder.W1/A" not in grads
        assert "new/encoder.W1/A" in grads


class TestRankComponents:
    def test_components_reconstruct_delta(self):
        patches = [_patch("a", 1), _patch("b", 2)]
        fusion = PatchFusion(patches, _patch("new", 3, fill=0.05), initial_weight=0.4)
        rebuilt = sum(
            comp.coeff * (comp.B @ comp.A)
            for comp in fusion.rank_components("encoder.W1")
        )
        np.testing.assert_allclose(rebuilt, fusion.delta("encoder.W1"))

    def test_coefficients_carry_lambda_times_alpha(self):
        patch = _patch("a", 1)
        fusion = PatchFusion([patch], _patch("new", 2), initial_weight=0.25)
        upstream = fusion.rank_components("encoder.W1")[0]
        assert upstream.coeff == pytest.approx(0.25 * patch.alpha)
        assert upstream.grad_coeff == pytest.approx(0.25 * patch.alpha)
        assert upstream.key_B == "a/encoder.W1/B"
        assert upstream.lambda_index == 0

    def test_flags_gate_trainability_and_lambda_index(self):
        fusion = PatchFusion(
            [_patch("a", 1)], _patch("new", 2),
            train_lambdas=False, train_patches=False,
        )
        upstream, new = fusion.rank_components("encoder.W1")
        assert not upstream.trainable
        assert upstream.lambda_index is None
        assert new.trainable
        assert new.lambda_index is None

    def test_delta_shape_without_materialising(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2))
        assert fusion.delta_shape("encoder.W1") == (6, 20)
        assert fusion.delta_shape("other.weight") is None

    def test_lambda_key_matches_parameters(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2))
        assert fusion.lambda_key in fusion.parameters()

    def test_untargeted_weight_has_no_components(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2))
        assert fusion.rank_components("other.weight") == []


class TestRankGradIdentity:
    """grad_wrt's rank-space path must match the legacy dense reduction."""

    def _grads_both_ways(self, monkeypatch, **flags):
        d_weight = np.random.default_rng(7).normal(0, 1, SHAPES["encoder.W1"])
        results = []
        for exact in ("", "1"):
            monkeypatch.setenv("REPRO_EXACT_WEIGHTS", exact)
            fusion = PatchFusion(
                [_patch("a", 1), _patch("b", 2)], _patch("new", 3), **flags
            )
            results.append(fusion.grad_wrt("encoder.W1", d_weight))
        monkeypatch.delenv("REPRO_EXACT_WEIGHTS")
        return results

    @pytest.mark.parametrize("train_lambdas", [True, False])
    @pytest.mark.parametrize("train_patches", [True, False])
    def test_rank_matches_dense(self, monkeypatch, train_lambdas, train_patches):
        rank, dense = self._grads_both_ways(
            monkeypatch,
            initial_weight=0.3,
            train_lambdas=train_lambdas,
            train_patches=train_patches,
        )
        assert rank.keys() == dense.keys()
        for key in dense:
            np.testing.assert_allclose(rank[key], dense[key], rtol=1e-12)

    def test_fully_frozen_skips_upstream_work(self):
        fusion = PatchFusion(
            [_patch("a", 1)], _patch("new", 2),
            train_lambdas=False, train_patches=False,
        )
        grads = fusion.grad_wrt("encoder.W1", np.ones(SHAPES["encoder.W1"]))
        assert set(grads) == {"new/encoder.W1/B", "new/encoder.W1/A"}


class TestIntrospection:
    def test_weight_report_names(self):
        fusion = PatchFusion(
            [_patch("a", 1), _patch("b", 2)], _patch("new", 3),
            initial_weight=0.25,
        )
        report = fusion.weight_report()
        assert report == {"a": 0.25, "b": 0.25}

    def test_num_parameters(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2))
        single = _patch("x", 9).num_parameters()
        assert fusion.num_parameters() == 2 * single + 1

    def test_target_names_union(self):
        extra_shapes = {"answer.V": (6, 20)}
        mixed = LoRAPatch("c", extra_shapes, rank=2)
        fusion = PatchFusion([mixed], _patch("new", 2))
        assert set(fusion.target_names) == {"encoder.W1", "answer.V"}
