"""Unit tests for repro.tinylm.fusion (paper Eq. 4)."""

import numpy as np
import pytest

from repro.tinylm.fusion import PatchFusion
from repro.tinylm.lora import LoRAPatch

SHAPES = {"encoder.W1": (6, 20)}


def _patch(name, seed, fill=0.1):
    patch = LoRAPatch(name, SHAPES, rank=2, seed=seed)
    patch.A["encoder.W1"] = np.full((2, 20), fill)
    return patch


class TestDelta:
    def test_weighted_sum_matches_eq4(self):
        patches = [_patch("a", 1), _patch("b", 2)]
        new = _patch("new", 3, fill=0.05)
        fusion = PatchFusion(patches, new, initial_weight=0.5)
        expected = (
            0.5 * patches[0].delta("encoder.W1")
            + 0.5 * patches[1].delta("encoder.W1")
            + new.delta("encoder.W1")
        )
        np.testing.assert_allclose(fusion.delta("encoder.W1"), expected)

    def test_zero_lambdas_leave_only_new_patch(self):
        patches = [_patch("a", 1)]
        new = _patch("new", 3, fill=0.05)
        fusion = PatchFusion(patches, new, initial_weight=0.0)
        np.testing.assert_allclose(
            fusion.delta("encoder.W1"), new.delta("encoder.W1")
        )

    def test_no_patches_is_just_new(self):
        new = _patch("new", 3)
        fusion = PatchFusion([], new)
        np.testing.assert_allclose(
            fusion.delta("encoder.W1"), new.delta("encoder.W1")
        )

    def test_untargeted_weight_is_none(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2))
        assert fusion.delta("other.weight") is None


class TestParameters:
    def test_lambda_exposure_follows_flag(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2), train_lambdas=True)
        assert "fusion/lambdas" in fusion.parameters()
        frozen = PatchFusion([_patch("a", 1)], _patch("new", 2), train_lambdas=False)
        assert "fusion/lambdas" not in frozen.parameters()

    def test_patch_exposure_follows_flag(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2), train_patches=True)
        assert "a/encoder.W1/A" in fusion.parameters()
        frozen = PatchFusion([_patch("a", 1)], _patch("new", 2), train_patches=False)
        assert "a/encoder.W1/A" not in frozen.parameters()

    def test_new_patch_always_trainable(self):
        fusion = PatchFusion(
            [_patch("a", 1)], _patch("new", 2),
            train_lambdas=False, train_patches=False,
        )
        assert "new/encoder.W1/A" in fusion.parameters()

    def test_no_lambda_param_without_patches(self):
        fusion = PatchFusion([], _patch("new", 2), train_lambdas=True)
        assert "fusion/lambdas" not in fusion.parameters()


class TestGrads:
    def test_lambda_gradient_is_inner_product(self):
        patch = _patch("a", 1)
        fusion = PatchFusion([patch], _patch("new", 2), initial_weight=0.3)
        d_weight = np.random.default_rng(0).normal(0, 1, SHAPES["encoder.W1"])
        grads = fusion.grad_wrt("encoder.W1", d_weight)
        expected = float(np.sum(d_weight * patch.delta("encoder.W1")))
        assert grads["fusion/lambdas"][0] == pytest.approx(expected)

    def test_patch_gradients_scaled_by_lambda(self):
        patch = _patch("a", 1)
        fusion = PatchFusion([patch], _patch("new", 2), initial_weight=0.5)
        d_weight = np.ones(SHAPES["encoder.W1"])
        grads = fusion.grad_wrt("encoder.W1", d_weight)
        direct = patch.grad_wrt("encoder.W1", d_weight)
        np.testing.assert_allclose(
            grads["a/encoder.W1/A"], 0.5 * direct["a/encoder.W1/A"]
        )

    def test_frozen_patches_get_no_gradient(self):
        fusion = PatchFusion(
            [_patch("a", 1)], _patch("new", 2), train_patches=False
        )
        grads = fusion.grad_wrt("encoder.W1", np.ones(SHAPES["encoder.W1"]))
        assert "a/encoder.W1/A" not in grads
        assert "new/encoder.W1/A" in grads


class TestIntrospection:
    def test_weight_report_names(self):
        fusion = PatchFusion(
            [_patch("a", 1), _patch("b", 2)], _patch("new", 3),
            initial_weight=0.25,
        )
        report = fusion.weight_report()
        assert report == {"a": 0.25, "b": 0.25}

    def test_num_parameters(self):
        fusion = PatchFusion([_patch("a", 1)], _patch("new", 2))
        single = _patch("x", 9).num_parameters()
        assert fusion.num_parameters() == 2 * single + 1

    def test_target_names_union(self):
        extra_shapes = {"answer.V": (6, 20)}
        mixed = LoRAPatch("c", extra_shapes, rank=2)
        fusion = PatchFusion([mixed], _patch("new", 2))
        assert set(fusion.target_names) == {"encoder.W1", "answer.V"}
