"""Integration tests for the KnowTrans facade."""

import numpy as np
import pytest

from repro.core.knowtrans import AdaptedModel, KnowTrans
from repro.eval.harness import evaluate_method


class TestFit:
    def test_returns_adapted_model(self, bundle, fast_config, beer_splits):
        adapted = KnowTrans(bundle, config=fast_config).fit(beer_splits)
        assert isinstance(adapted, AdaptedModel)
        assert adapted.task.name == "ed"
        assert adapted.akb_result is not None
        assert adapted.fusion_weights  # one λ per upstream patch

    def test_prediction_surface(self, bundle, fast_config, beer_splits):
        adapted = KnowTrans(bundle, config=fast_config, use_akb=False).fit(beer_splits)
        example = beer_splits.test.examples[0]
        assert adapted.predict(example) in ("yes", "no")
        score = evaluate_method(adapted, beer_splits.test.examples[:20], adapted.task.name)
        assert 0.0 <= score <= 100.0

    def test_ablation_without_akb_keeps_seed_knowledge(
        self, bundle, fast_config, beer_splits
    ):
        from repro.knowledge.seed import seed_knowledge

        adapted = KnowTrans(bundle, config=fast_config, use_akb=False).fit(beer_splits)
        assert adapted.knowledge == seed_knowledge("ed")
        assert adapted.akb_result is None

    def test_ablation_without_skc_uses_single_strategy(
        self, bundle, fast_config, beer_splits
    ):
        adapter = KnowTrans(bundle, config=fast_config, use_skc=False, use_akb=False)
        assert adapter.strategy == "single"
        adapted = adapter.fit(beer_splits)
        assert adapted.fusion_weights == {}

    def test_akb_knowledge_scores_at_least_seed_on_validation(
        self, bundle, fast_config, beer_splits
    ):
        adapter = KnowTrans(bundle, config=fast_config)
        adapted = adapter.fit(beer_splits)
        scorer = adapter.cross_fit_scorer(beer_splits)
        from repro.knowledge.seed import seed_knowledge

        seed_score, __ = scorer(seed_knowledge("ed"))
        best_score, __ = scorer(adapted.knowledge)
        assert best_score >= seed_score - 1e-6

    def test_deterministic_given_seed(self, bundle, fast_config, beer_splits):
        a = KnowTrans(bundle, config=fast_config).fit(beer_splits)
        b = KnowTrans(bundle, config=fast_config).fit(beer_splits)
        assert a.knowledge == b.knowledge
        preds_a = [a.predict(ex) for ex in beer_splits.test.examples[:10]]
        preds_b = [b.predict(ex) for ex in beer_splits.test.examples[:10]]
        assert preds_a == preds_b

    def test_bundle_model_not_mutated(self, bundle, fast_config, beer_splits):
        before = {k: v.copy() for k, v in bundle.upstream_model.weights.items()}
        KnowTrans(bundle, config=fast_config).fit(beer_splits)
        for name, value in bundle.upstream_model.weights.items():
            np.testing.assert_array_equal(value, before[name])

    def test_strategy_option_passthrough(self, bundle, fast_config, beer_splits):
        adapter = KnowTrans(bundle, config=fast_config, strategy="uniform", use_akb=False)
        adapted = adapter.fit(beer_splits)
        lambdas = list(adapted.fusion_weights.values())
        assert lambdas and all(l == pytest.approx(lambdas[0]) for l in lambdas)
