"""Unit tests for repro.tasks — prompts, candidates, training examples."""

import pytest

from repro.data import generators
from repro.knowledge.rules import Knowledge
from repro.knowledge.seed import oracle_knowledge, seed_knowledge
from repro.tasks.base import Task, get_task, register_task, task_names
from repro.tasks.prompts import TASK_INSTRUCTIONS, compose, full_prompt

ALL_IDS = list(generators.downstream_ids())


class TestRegistry:
    def test_eight_tasks(self):
        assert task_names() == [
            "ave", "cta", "dc", "di", "ed", "em", "qa", "sm",
        ]

    def test_rank_mode_is_the_paper_seven(self):
        assert task_names(mode="rank") == [
            "ave", "cta", "dc", "di", "ed", "em", "sm",
        ]

    def test_generate_mode(self):
        assert task_names(mode="generate") == ["qa"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            task_names(mode="oracle")

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            get_task("nope")

    def test_register_requires_name(self):
        with pytest.raises(ValueError):
            register_task(Task())

    def test_register_rejects_bad_answer_mode(self):
        class Broken(Task):
            name = "broken"
            answer_mode = "oracle"

        with pytest.raises(ValueError):
            register_task(Broken())
        assert "broken" not in task_names()

    def test_base_candidates_contract(self):
        class PoolLess(Task):
            name = "poolless"
            answer_mode = "generate"

        with pytest.raises(NotImplementedError, match="poolless"):
            PoolLess().candidates(None, Knowledge())


class TestPrompts:
    def test_compose_includes_pieces(self):
        text = compose("ed", "ignored-knowledge", ["[missing]"], "record [ x ]", "question?")
        assert TASK_INSTRUCTIONS["ed"] in text
        assert "[missing]" in text
        assert "record [ x ]" in text
        assert text.endswith("question?")

    def test_compose_excludes_knowledge_text(self):
        text = compose("ed", "SECRET_KNOWLEDGE_TEXT", [], "body", "q")
        assert "SECRET_KNOWLEDGE_TEXT" not in text

    def test_full_prompt_includes_knowledge_text(self):
        knowledge = oracle_knowledge("ed/beer")
        assert knowledge.render() in full_prompt("model prompt", knowledge)

    def test_full_prompt_handles_none(self):
        assert full_prompt("p", None) == "p"

    def test_compose_unknown_task(self):
        with pytest.raises(KeyError):
            compose("xx", "", [], "b", "q")


@pytest.mark.parametrize("dataset_id", ALL_IDS)
class TestPerDataset:
    def test_prompt_mentions_instruction_and_question(self, dataset_id):
        dataset = generators.build(dataset_id, count=12, seed=1)
        task = get_task(dataset.task)
        prompt = task.prompt(dataset.examples[0], seed_knowledge(dataset.task))
        assert TASK_INSTRUCTIONS[dataset.task] in prompt
        assert "question" in prompt

    def test_training_example_targets_gold(self, dataset_id):
        dataset = generators.build(dataset_id, count=12, seed=1)
        task = get_task(dataset.task)
        for example in dataset.examples[:6]:
            instance = task.training_example(example, seed_knowledge(dataset.task), dataset)
            assert instance.candidates[instance.target] == example.answer

    def test_oracle_knowledge_keeps_gold_reachable(self, dataset_id):
        dataset = generators.build(dataset_id, count=24, seed=1)
        task = get_task(dataset.task)
        knowledge = oracle_knowledge(dataset_id)
        reachable = sum(
            example.answer in task.candidates(example, knowledge, dataset)
            for example in dataset.examples
        )
        assert reachable / len(dataset.examples) > 0.7

    def test_predict_returns_candidate(self, dataset_id, tiny_model):
        dataset = generators.build(dataset_id, count=6, seed=1)
        task = get_task(dataset.task)
        example = dataset.examples[0]
        knowledge = seed_knowledge(dataset.task)
        prediction = task.predict(tiny_model, example, knowledge, dataset)
        assert prediction in task.candidates(example, knowledge, dataset)


class TestEvaluate:
    def test_evaluate_runs_and_bounded(self, tiny_model):
        dataset = generators.build("ed/beer", count=20, seed=1)
        task = get_task("ed")
        score = task.evaluate(
            tiny_model, dataset.examples, seed_knowledge("ed"), dataset
        )
        assert 0.0 <= score <= 100.0

    def test_dc_evaluate_uses_repair_metric(self, tiny_model):
        dataset = generators.build("dc/beer", count=12, seed=1)
        task = get_task("dc")
        score = task.evaluate(
            tiny_model, dataset.examples, seed_knowledge("dc"), dataset
        )
        assert 0.0 <= score <= 100.0


class TestKnowledgeEffects:
    def test_em_markers_change_prompt(self):
        dataset = generators.build("em/walmart_amazon", count=12, seed=1)
        task = get_task("em")
        example = dataset.examples[0]
        bare = task.prompt(example, Knowledge.empty())
        informed = task.prompt(example, oracle_knowledge("em/walmart_amazon"))
        assert bare != informed

    def test_cta_hints_change_prompt(self):
        dataset = generators.build("cta/sotab", count=20, seed=1)
        task = get_task("cta")
        knowledge = oracle_knowledge("cta/sotab")
        changed = sum(
            task.prompt(ex, knowledge) != task.prompt(ex, Knowledge.empty())
            for ex in dataset.examples
        )
        assert changed > 0

    def test_sm_prompt_contains_comparison(self):
        dataset = generators.build("sm/cms", count=6, seed=1)
        task = get_task("sm")
        prompt = task.prompt(dataset.examples[0], Knowledge.empty())
        assert "comparison [ name" in prompt
