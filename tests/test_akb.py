"""Tests for the AKB component (paper Algorithm 2)."""

import pytest

from repro.core.akb.evaluation import predict_detailed, score_knowledge, task_metric
from repro.core.akb.feedback import sample_errors
from repro.core.akb.generation import generate_pool, sample_demonstrations
from repro.core.akb.optimizer import search_knowledge
from repro.core.config import AKBConfig
from repro.data import generators
from repro.knowledge.rules import Knowledge
from repro.knowledge.seed import seed_knowledge
from repro.llm.mockgpt import ErrorCase, MockGPT
from repro.tasks.base import get_task


@pytest.fixture(scope="module")
def beer_dataset():
    return generators.build("ed/beer", count=60, seed=13)


class TestEvaluation:
    def test_score_and_errors_consistent(self, tiny_model, beer_dataset):
        task = get_task("ed")
        score, errors = score_knowledge(
            tiny_model, task, seed_knowledge("ed"), beer_dataset.examples[:20],
            beer_dataset,
        )
        assert 0.0 <= score <= 100.0
        wrong = sum(
            task.predict(tiny_model, ex, seed_knowledge("ed"), beer_dataset)
            != ex.answer
            for ex in beer_dataset.examples[:20]
        )
        assert len(errors) == wrong

    def test_predict_detailed_margins(self, tiny_model, beer_dataset):
        task = get_task("ed")
        golds, preds, margins, errors = predict_detailed(
            tiny_model, task, seed_knowledge("ed"), beer_dataset.examples[:10],
            beer_dataset,
        )
        assert len(golds) == len(preds) == len(margins) == 10
        assert all(0.0 <= m <= 1.0 for m in margins)

    def test_task_metric_dispatch(self, beer_dataset):
        task = get_task("ed")
        examples = beer_dataset.examples[:4]
        golds = [ex.answer for ex in examples]
        assert task_metric(task, golds, golds, examples) == 100.0


class TestSampling:
    def test_demonstration_sampling_bounded(self, beer_dataset):
        demos = sample_demonstrations(beer_dataset.examples, 5, seed=1)
        assert len(demos) == 5
        assert sample_demonstrations(beer_dataset.examples[:3], 10, seed=1) == list(
            beer_dataset.examples[:3]
        )

    def test_error_sampling_varies_by_round(self, beer_dataset):
        errors = [ErrorCase(ex, "no") for ex in beer_dataset.examples[:30]]
        first = sample_errors(errors, 5, seed=1, round_index=0)
        second = sample_errors(errors, 5, seed=1, round_index=1)
        assert first != second

    def test_pool_contains_seed(self, beer_dataset):
        config = AKBConfig(pool_size=3)
        seed = seed_knowledge("ed")
        pool = generate_pool(
            MockGPT(seed=1), "ed", beer_dataset.examples[:20], seed, config
        )
        assert pool[0] == seed


class TestOptimizer:
    def test_search_returns_best_scored(self, bundle, beer_dataset):
        config = AKBConfig(pool_size=3, iterations=2, refinements_per_iteration=1)
        result = search_knowledge(
            bundle.upstream_model,
            beer_dataset,
            beer_dataset.examples[:20],
            mockgpt=MockGPT(seed=1),
            config=config,
        )
        assert result.rounds
        assert result.best_score >= result.rounds[0].best_score - 1e-9

    def test_search_respects_iteration_budget(self, bundle, beer_dataset):
        config = AKBConfig(
            pool_size=2, iterations=2, refinements_per_iteration=1, patience=10
        )
        result = search_knowledge(
            bundle.upstream_model,
            beer_dataset,
            beer_dataset.examples[:20],
            mockgpt=MockGPT(seed=1),
            config=config,
        )
        assert result.iterations_run <= 2

    def test_custom_scorer_is_used(self, bundle, beer_dataset):
        calls = []

        def scorer(candidate: Knowledge):
            calls.append(candidate)
            return float(len(candidate.rules)), []

        config = AKBConfig(pool_size=3, iterations=1)
        result = search_knowledge(
            bundle.upstream_model,
            beer_dataset,
            beer_dataset.examples[:10],
            mockgpt=MockGPT(seed=1),
            config=config,
            scorer=scorer,
        )
        assert calls
        # With the rule-count scorer the richest candidate must win.
        assert len(result.knowledge.rules) == max(len(c.rules) for c in calls)

    def test_zero_error_convergence_stops_early(self, bundle, beer_dataset):
        def scorer(candidate: Knowledge):
            return 100.0, []  # perfect on validation

        config = AKBConfig(pool_size=2, iterations=5)
        result = search_knowledge(
            bundle.upstream_model,
            beer_dataset,
            beer_dataset.examples[:10],
            mockgpt=MockGPT(seed=1),
            config=config,
            scorer=scorer,
        )
        assert result.iterations_run == 1

    def test_trajectory_records_best_per_round(self, bundle, beer_dataset):
        config = AKBConfig(pool_size=2, iterations=2, refinements_per_iteration=1)
        result = search_knowledge(
            bundle.upstream_model,
            beer_dataset,
            beer_dataset.examples[:16],
            mockgpt=MockGPT(seed=1),
            config=config,
        )
        assert len(result.trajectory) == result.iterations_run
