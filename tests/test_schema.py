"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import Dataset, Example, Profile, Record, Table


@pytest.fixture()
def record():
    return Record.from_dict({"name": "widget", "price": "9.99", "note": "nan"})


class TestRecord:
    def test_from_dict_preserves_order(self, record):
        assert record.attributes == ("name", "price", "note")

    def test_get_with_default(self, record):
        assert record.get("name") == "widget"
        assert record.get("missing", "zz") == "zz"

    def test_contains(self, record):
        assert "price" in record
        assert "absent" not in record

    def test_replace_returns_new_record(self, record):
        updated = record.replace("price", "1.00")
        assert updated.get("price") == "1.00"
        assert record.get("price") == "9.99"

    def test_replace_unknown_raises(self, record):
        with pytest.raises(KeyError):
            record.replace("nope", "x")

    def test_without(self, record):
        trimmed = record.without(["price", "note"])
        assert trimmed.attributes == ("name",)

    def test_is_missing(self, record):
        assert record.is_missing("note")
        assert not record.is_missing("name")

    def test_is_missing_variants(self):
        rec = Record.from_dict({"a": "N/A", "b": "", "c": "NULL", "d": "x"})
        assert rec.is_missing("a") and rec.is_missing("b") and rec.is_missing("c")
        assert not rec.is_missing("d")

    def test_as_dict_roundtrip(self, record):
        assert Record.from_dict(record.as_dict()) == record

    def test_iteration(self, record):
        assert list(record) == list(record.values)


class TestTable:
    def test_column_values(self, record):
        table = Table("t", ("name", "price", "note"), [record, record])
        assert table.column_values("price") == ["9.99", "9.99"]

    def test_len(self, record):
        assert len(Table("t", ("name",), [record])) == 1


def _dataset(n=10):
    examples = [
        Example(task="ed", inputs={"i": i}, answer="yes" if i % 2 else "no")
        for i in range(n)
    ]
    return Dataset("d", "ed", examples, label_set=("yes", "no"))


class TestDataset:
    def test_len_and_iter(self):
        ds = _dataset(5)
        assert len(ds) == 5
        assert len(list(ds)) == 5

    def test_subset_preserves_metadata(self):
        ds = _dataset()
        sub = ds.subset([0, 2], suffix=":x")
        assert sub.name == "d:x"
        assert sub.label_set == ("yes", "no")
        assert len(sub) == 2

    def test_head(self):
        assert len(_dataset().head(3)) == 3
        assert len(_dataset(2).head(5)) == 2

    def test_positive_count(self):
        assert _dataset(10).positive_count() == 5


class TestProfile:
    def test_presets(self):
        assert Profile.ci().name == "ci"
        assert Profile.paper().scale > Profile.ci().scale

    def test_sized_applies_scale_and_minimum(self):
        profile = Profile(scale=0.1)
        assert profile.sized(1000) == 100
        assert profile.sized(10, minimum=8) == 8
