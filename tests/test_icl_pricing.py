"""Tests for ICL inference and the pricing/token-accounting model."""

import pytest

from repro.knowledge.seed import seed_knowledge
from repro.llm.icl import ICLModel, icl_prompt, render_demonstrations
from repro.llm.pricing import PRICES, PriceSheet, UsageMeter
from repro.tasks.base import get_task


class TestDemonstrationRendering:
    def test_limit_respected(self, beer_splits):
        task = get_task("ed")
        text = render_demonstrations(
            task, beer_splits.few_shot.examples, seed_knowledge("ed"), limit=2
        )
        assert text.count("example ") == 2

    def test_answers_included(self, beer_splits):
        task = get_task("ed")
        text = render_demonstrations(
            task, beer_splits.few_shot.examples[:3], seed_knowledge("ed")
        )
        assert "answer yes" in text or "answer no" in text

    def test_icl_prompt_ends_with_query(self, beer_splits):
        task = get_task("ed")
        example = beer_splits.test.examples[0]
        prompt = icl_prompt(
            task, example, beer_splits.few_shot.examples, seed_knowledge("ed")
        )
        assert prompt.endswith(task.prompt(example, seed_knowledge("ed")))


class TestICLModel:
    def test_predicts_valid_candidates(self, bundle, beer_splits):
        model = ICLModel(
            bundle.upstream_model,
            get_task("ed"),
            beer_splits.few_shot.examples,
            seed_knowledge("ed"),
            dataset=beer_splits.few_shot,
        )
        for example in beer_splits.test.examples[:10]:
            assert model.predict(example) in ("yes", "no")

    def test_vote_favours_similar_demo_answers(self, bundle, beer_splits):
        model = ICLModel(
            bundle.upstream_model,
            get_task("ed"),
            beer_splits.few_shot.examples,
            seed_knowledge("ed"),
            dataset=beer_splits.few_shot,
        )
        # Querying a demonstration itself retrieves it with sim ≈ 1.
        demo = beer_splits.few_shot.examples[0]
        features = model.model.encode_prompt(
            model.task.prompt(demo, model.knowledge)
        )
        vote = model._vote(features, ("yes", "no"))
        assert vote[("yes", "no").index(demo.answer)] > 0.3

    def test_transmitted_prompt_is_long(self, bundle, beer_splits):
        from repro.tinylm.tokenizer import count_tokens

        model = ICLModel(
            bundle.upstream_model,
            get_task("ed"),
            beer_splits.few_shot.examples,
            seed_knowledge("ed"),
            dataset=beer_splits.few_shot,
        )
        example = beer_splits.test.examples[0]
        transmitted = model.transmitted_prompt(example)
        bare = model.task.prompt(example, model.knowledge)
        assert count_tokens(transmitted) > 5 * count_tokens(bare)


class TestPricing:
    def test_price_sheet_math(self):
        sheet = PriceSheet("m", input_per_million=10.0, output_per_million=20.0)
        assert sheet.cost(1_000_000, 500_000) == pytest.approx(20.0)

    def test_known_models(self):
        assert {"gpt-3.5", "gpt-4", "gpt-4o", "knowtrans"} <= set(PRICES)

    def test_gpt4_most_expensive(self):
        tokens = (751, 3)
        costs = {
            name: PRICES[name].cost(*tokens)
            for name in ("gpt-3.5", "gpt-4", "gpt-4o")
        }
        assert costs["gpt-4"] > costs["gpt-4o"] > costs["gpt-3.5"]

    def test_meter_unknown_model(self):
        with pytest.raises(KeyError):
            UsageMeter("claude")

    def test_meter_averages(self):
        meter = UsageMeter("gpt-4")
        meter.log_call("one two three", "yes")
        meter.log_call("one two three four five", "no")
        assert meter.mean_input_tokens == pytest.approx(4.0)
        assert meter.mean_output_tokens == pytest.approx(1.0)
        assert meter.mean_cost() > 0

    def test_empty_meter(self):
        meter = UsageMeter("gpt-4")
        assert meter.mean_input_tokens == 0.0
        assert meter.mean_cost() == 0.0

    def test_summary_keys(self):
        meter = UsageMeter("knowtrans")
        meter.log_call("a b", "c")
        assert set(meter.summary()) == {
            "input_tokens", "output_tokens", "cost_per_instance",
        }
