"""Tests for the simulated closed-source LLM (MockGPT)."""

import pytest

from repro.data import generators
from repro.knowledge.rules import Knowledge
from repro.knowledge.seed import seed_knowledge
from repro.llm.mockgpt import ErrorCase, Feedback, MockGPT


@pytest.fixture(scope="module")
def beer_examples():
    return generators.build("ed/beer", count=60, seed=9).examples


class TestConstruction:
    def test_capability_bounds(self):
        with pytest.raises(ValueError):
            MockGPT(capability=0.0)
        with pytest.raises(ValueError):
            MockGPT(capability=1.5)
        with pytest.raises(ValueError):
            MockGPT(temperature=-1.0)


class TestGeneration:
    def test_pool_size_and_distinctness(self, beer_examples):
        gpt = MockGPT(seed=1)
        pool = gpt.generate_knowledge("ed", beer_examples[:10], seed_knowledge("ed"), count=5)
        assert 1 <= len(pool) <= 5
        assert len(set(pool)) == len(pool)

    def test_candidates_extend_seed(self, beer_examples):
        gpt = MockGPT(seed=1)
        seed = seed_knowledge("ed")
        pool = gpt.generate_knowledge("ed", beer_examples[:20], seed, count=5)
        assert any(len(candidate.rules) > len(seed.rules) for candidate in pool)

    def test_temperature_zero_is_thresholded(self, beer_examples):
        gpt = MockGPT(temperature=0.0, seed=1)
        pool = gpt.generate_knowledge("ed", beer_examples[:20], seed_knowledge("ed"), count=3)
        assert pool  # deterministic inclusion still yields candidates

    def test_low_capability_yields_sparser_rules(self, beer_examples):
        strong = MockGPT(capability=1.0, seed=2)
        weak = MockGPT(capability=0.35, seed=2)
        strong_pool = strong.generate_knowledge(
            "ed", beer_examples[:20], seed_knowledge("ed"), count=5
        )
        weak_pool = weak.generate_knowledge(
            "ed", beer_examples[:20], seed_knowledge("ed"), count=5
        )
        strong_rules = sum(len(k.rules) for k in strong_pool) / len(strong_pool)
        weak_rules = sum(len(k.rules) for k in weak_pool) / len(weak_pool)
        assert weak_rules < strong_rules


class TestFeedback:
    def test_empty_errors(self):
        feedback = MockGPT(seed=1).feedback("ed", Knowledge.empty(), [])
        assert not feedback
        assert "no errors" in feedback.text

    def test_feedback_suggests_missing_rules(self, beer_examples):
        gpt = MockGPT(seed=1)
        errors = [
            ErrorCase(example=ex, prediction="no")
            for ex in beer_examples
            if ex.answer == "yes"
        ][:8]
        feedback = gpt.feedback("ed", seed_knowledge("ed"), errors)
        assert feedback.add
        assert "misses" in feedback.text

    def test_feedback_deterministic_content(self, beer_examples):
        errors = [
            ErrorCase(example=ex, prediction="no") for ex in beer_examples[:10]
        ]
        a = MockGPT(seed=3).feedback("ed", seed_knowledge("ed"), errors)
        b = MockGPT(seed=3).feedback("ed", seed_knowledge("ed"), errors)
        assert [s.rule for s in a.add] == [s.rule for s in b.add]


class TestRefinement:
    def test_refine_applies_feedback(self, beer_examples):
        gpt = MockGPT(seed=1)
        errors = [
            ErrorCase(example=ex, prediction="no")
            for ex in beer_examples
            if ex.answer == "yes"
        ][:8]
        seed = seed_knowledge("ed")
        feedback = gpt.feedback("ed", seed, errors)
        refined = gpt.refine("ed", seed, errors, feedback, trajectory=[])
        assert len(refined.rules) >= len(seed.rules)

    def test_refine_avoids_repeating_trajectory(self, beer_examples):
        gpt = MockGPT(seed=1)
        errors = [
            ErrorCase(example=ex, prediction="no")
            for ex in beer_examples
            if ex.answer == "yes"
        ][:8]
        seed = seed_knowledge("ed")
        feedback = gpt.feedback("ed", seed, errors)
        if not feedback.add:
            pytest.skip("no suggestions induced on this slice")
        refined = gpt.refine("ed", seed, errors, Feedback(add=feedback.add), [seed])
        assert refined != seed
