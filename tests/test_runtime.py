"""The parallel runtime: job resolution, pooled maps, determinism.

The determinism tests force real worker processes (``clamp=False``)
even on single-core machines, so the cross-process path — pickling lean
model state, reconnecting shared caches, merging perf snapshots — is
exercised everywhere, and ``jobs=1`` vs ``jobs=N`` bit-identity is
checked on actual fork/pickle round-trips rather than on the serial
fallback.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.config import SKCConfig
from repro.core.knowtrans import KnowTrans
from repro.core.skc.patches import extract_knowledge_patches
from repro.perf import PERF, PerfRegistry
from repro.runtime import (
    SharedRef,
    WorkerPool,
    available_cpus,
    release,
    resolve_jobs,
    resolve_shared,
    share,
    shared_count,
    sharing,
)


def _square(x):
    PERF.count("test.square_calls")
    return x * x


# ----------------------------------------------------------------------
# Job resolution
# ----------------------------------------------------------------------
def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "8")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5


def test_resolve_jobs_default_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_bad_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError):
        resolve_jobs(None)


def test_resolve_jobs_floors_at_one():
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-3) == 1


def test_available_cpus_positive():
    assert available_cpus() >= 1


def test_pool_clamps_to_cpus():
    pool = WorkerPool(jobs=available_cpus() + 7)
    assert pool.effective_jobs <= available_cpus()
    unclamped = WorkerPool(jobs=3, clamp=False)
    assert unclamped.effective_jobs == 3


def test_pool_clamps_to_scheduler_affinity(monkeypatch):
    """The clamp honours the cgroup/affinity mask, not the host count.

    In containers ``os.cpu_count()`` reports the host's cores while the
    scheduler may only grant a subset; the clamp must follow
    ``sched_getaffinity``, so a 64-core host with a 2-core mask gets 2
    workers, not 64.
    """
    if not hasattr(os, "sched_getaffinity"):  # pragma: no cover - non-Linux
        pytest.skip("platform has no sched_getaffinity")
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 5})
    assert available_cpus() == 2
    assert WorkerPool(jobs=16).effective_jobs == 2


def test_non_fork_start_method_falls_back_to_serial(monkeypatch):
    """Satellite regression: spawn/forkserver must not reach the pool.

    A spawn-started worker re-imports from a fresh interpreter: it can
    resolve neither fork-inherited SharedRef tokens nor arena ownership,
    and its resource tracker would unlink the parent's live segments.
    The pool must warn loudly and degrade to the (identical) serial
    path instead.
    """
    import repro.runtime as runtime

    monkeypatch.setattr(runtime, "_start_method", lambda: "spawn")
    with pytest.warns(RuntimeWarning, match="fork"):
        pool = WorkerPool(jobs=4, clamp=False)
    assert pool.effective_jobs == 1
    assert not pool.parallel
    assert pool.map(_square, range(6)) == [0, 1, 4, 9, 16, 25]


# ----------------------------------------------------------------------
# Pool mapping
# ----------------------------------------------------------------------
def test_serial_map_preserves_order():
    assert WorkerPool(jobs=1).map(_square, range(6)) == [0, 1, 4, 9, 16, 25]


def test_process_map_preserves_order_and_merges_perf():
    pool = WorkerPool(jobs=2, clamp=False)
    assert pool.parallel
    before = PERF.counter("test.square_calls")
    assert pool.map(_square, range(6)) == [0, 1, 4, 9, 16, 25]
    # Each worker counted into its own registry; the snapshots merged
    # home, so the parent sees all six calls.
    assert PERF.counter("test.square_calls") == before + 6


def test_perf_merge_accumulates():
    registry = PerfRegistry()
    registry.count("c", 2)
    registry.add_time("t", 1.5)
    registry.merge(
        {
            "counters": {"c": 3, "new": 1},
            "timers": {"t": {"seconds": 0.5, "calls": 2}},
        }
    )
    assert registry.counter("c") == 5
    assert registry.counter("new") == 1
    assert registry.seconds("t") == 2.0
    assert registry._timers["t"][1] == 3


# ----------------------------------------------------------------------
# Fork-shared objects: lean IPC payloads
# ----------------------------------------------------------------------
def test_shared_ref_resolves_to_same_object(bundle):
    ref = share(bundle.base_model)
    assert resolve_shared(ref) is bundle.base_model
    assert share(bundle.base_model) is ref  # memoised by identity
    # Non-refs pass through untouched.
    assert resolve_shared("plain") == "plain"


def test_shared_ref_pickles_tiny(bundle):
    raw = len(pickle.dumps(bundle.base_model))
    ref = len(pickle.dumps(share(bundle.base_model)))
    assert raw > 1_000_000  # the backbone really is megabytes of weights
    assert ref < 1_000  # ...and the ref that crosses IPC is bytes


def test_unregistered_token_raises():
    with pytest.raises(RuntimeError):
        SharedRef(token=10**9).resolve()


def test_release_unpins_object():
    obj = object()
    before = shared_count()
    ref = share(obj)
    assert shared_count() == before + 1
    assert release(obj) is True
    assert shared_count() == before
    with pytest.raises(RuntimeError):
        ref.resolve()
    # Releasing again (by object or by ref) is a harmless no-op.
    assert release(obj) is False
    assert release(ref) is False


def test_release_by_ref():
    obj = object()
    ref = share(obj)
    assert release(ref) is True
    with pytest.raises(RuntimeError):
        ref.resolve()


def test_sharing_context_manager_scopes_registration():
    """Regression: the registry must not grow across fan-outs.

    Before release()/sharing(), every share() pinned its object forever
    — a leak that matters for long-lived processes like the serve
    daemon, where each request cycle used to add a backbone-sized entry.
    """
    first, second = object(), object()
    before = shared_count()
    with sharing(first, second) as (ref1, ref2):
        assert ref1.resolve() is first
        assert ref2.resolve() is second
        assert shared_count() == before + 2
    assert shared_count() == before
    with pytest.raises(RuntimeError):
        ref1.resolve()


def test_sharing_releases_on_exception():
    obj = object()
    before = shared_count()
    with pytest.raises(RuntimeError):
        with sharing(obj):
            raise RuntimeError("boom")
    assert shared_count() == before


def test_share_after_release_issues_fresh_token():
    obj = object()
    ref1 = share(obj)
    release(obj)
    ref2 = share(obj)
    assert ref2.token != ref1.token
    assert ref2.resolve() is obj
    release(obj)


def test_repeated_fanouts_do_not_grow_registry():
    """cross_fit_scorer's sharing-scoped fan-out leaves no residue."""
    obj = object()
    baseline = shared_count()
    for __ in range(3):
        with sharing(obj) as (ref,):
            assert ref.resolve() is obj
    assert shared_count() == baseline


def test_sharing_releases_previously_shared_objects():
    """Documented takeover: a pre-shared object is released on exit too."""
    obj = object()
    outer = share(obj)
    with sharing(obj) as (inner,):
        assert inner is outer  # share() memoises by identity
    with pytest.raises(RuntimeError):
        outer.resolve()


def test_patch_extraction_payload_excludes_backbone(bundle):
    """The pool ships adapter deltas and task args, never the backbone."""
    config = SKCConfig(patch_epochs=1)
    datasets = bundle.upstream_datasets[:3]
    backbone_bytes = len(pickle.dumps(bundle.base_model))
    before = PERF.counter("runtime.payload_bytes")
    extract_knowledge_patches(
        bundle.base_model, datasets, config,
        pool=WorkerPool(jobs=2, clamp=False),
    )
    payload = PERF.counter("runtime.payload_bytes") - before
    assert payload > 0
    assert payload < backbone_bytes


def test_cross_fit_shadow_payload_excludes_backbone(
    bundle, fast_config, beer_splits
):
    adapter = KnowTrans(
        bundle, config=fast_config, pool=WorkerPool(jobs=2, clamp=False)
    )
    backbone_bytes = len(pickle.dumps(bundle.upstream_model))
    before = PERF.counter("runtime.payload_bytes")
    adapter.cross_fit_scorer(beer_splits)
    payload = PERF.counter("runtime.payload_bytes") - before
    assert payload > 0
    assert payload < backbone_bytes


# ----------------------------------------------------------------------
# Determinism: serial vs worker processes
# ----------------------------------------------------------------------
def _patch_state(patch):
    return {k: np.copy(v) for k, v in patch.parameters().items()}


def test_patch_extraction_parallel_identical(bundle):
    config = SKCConfig(patch_epochs=1)
    datasets = bundle.upstream_datasets[:3]
    serial = extract_knowledge_patches(bundle.base_model, datasets, config)
    parallel = extract_knowledge_patches(
        bundle.base_model, datasets, config,
        pool=WorkerPool(jobs=2, clamp=False),
    )
    assert [p.name for p in serial] == [p.name for p in parallel]
    for left, right in zip(serial, parallel):
        ls, rs = _patch_state(left), _patch_state(right)
        assert ls.keys() == rs.keys()
        for key in ls:
            assert np.array_equal(ls[key], rs[key]), key


def test_knowtrans_fit_parallel_identical(bundle, fast_config, beer_splits):
    serial = KnowTrans(
        bundle, config=fast_config, jobs=1, pool_scoring=False
    ).fit(beer_splits)
    parallel = KnowTrans(
        bundle,
        config=fast_config,
        pool=WorkerPool(jobs=4, clamp=False),
        pool_scoring=True,
    ).fit(beer_splits)
    assert serial.knowledge == parallel.knowledge
    assert serial.akb_result.best_score == parallel.akb_result.best_score
    assert serial.akb_result.rounds == parallel.akb_result.rounds
    test_examples = beer_splits.test.examples
    assert list(serial.predict_batch(test_examples)) == list(
        parallel.predict_batch(test_examples)
    )


def test_pool_scoring_matches_per_candidate(bundle, fast_config, abt_splits):
    adapter = KnowTrans(bundle, config=fast_config, jobs=1)
    scorer = adapter.cross_fit_scorer(abt_splits)
    from repro.knowledge.seed import seed_knowledge
    from repro.llm.mockgpt import MockGPT
    from repro.core.akb.generation import generate_pool

    seed = seed_knowledge(abt_splits.few_shot.task)
    pool = generate_pool(
        MockGPT(seed=0),
        abt_splits.few_shot.task,
        abt_splits.validation.examples,
        seed,
        fast_config.akb,
    )
    pooled = scorer.score_pool(pool)
    singles = [scorer(candidate) for candidate in pool]
    assert len(pooled) == len(singles)
    for (pooled_score, pooled_errors), (score, errors) in zip(pooled, singles):
        assert pooled_score == score
        assert [e.example for e in pooled_errors] == [e.example for e in errors]
        assert [e.prediction for e in pooled_errors] == [
            e.prediction for e in errors
        ]
