"""Tests for the transcribed paper reference data and shape utilities."""

import pytest

from repro.data import generators
from repro.eval import paper_reference as ref


class TestTranscription:
    def test_table2_covers_all_datasets(self):
        assert set(ref.TABLE2) == set(generators.downstream_ids())

    def test_table2_headline_average(self):
        """Paper: KnowTrans averages 79.26, beating Jellyfish by 4.93."""
        knowtrans = sum(r["knowtrans"] for r in ref.TABLE2.values()) / 13
        jellyfish = sum(r["jellyfish"] for r in ref.TABLE2.values()) / 13
        assert knowtrans == pytest.approx(79.26, abs=0.05)
        assert knowtrans - jellyfish == pytest.approx(4.93, abs=0.05)

    def test_table5_ordering(self):
        assert (
            ref.TABLE5["wo_skc_akb"]
            < ref.TABLE5["wo_skc"]
            < ref.TABLE5["wo_akb"]
            < ref.TABLE5["knowtrans"]
        )

    def test_table6_ordering(self):
        assert (
            ref.TABLE6["single"]
            < ref.TABLE6["uniform"]
            < ref.TABLE6["adaptive"]
            < ref.TABLE6["knowtrans"]
        )

    def test_table4_headline(self):
        """Paper: KnowTrans-13B beats GPT-4 by 7.03 and GPT-4o by 6.07."""
        averages = ref.TABLE4_AVERAGES
        assert averages["knowtrans_13b"] - averages["gpt_4"] == pytest.approx(
            6.63, abs=1.0
        )
        assert averages["knowtrans_13b"] > averages["gpt_4o"]

    def test_table3_token_asymmetry(self):
        assert ref.TABLE3["knowtrans"][0] < ref.TABLE3["gpt-4"][0] / 10


class TestShapeUtilities:
    def test_shape_deltas(self):
        paper_gap, measured_gap = ref.shape_deltas(
            {"a": 10.0, "b": 15.0}, {"a": 40.0, "b": 60.0}, "a", "b"
        )
        assert paper_gap == 5.0 and measured_gap == 20.0

    def test_sign_agreement_perfect(self):
        measured = [
            {"dataset": d, "jellyfish": 50.0, "knowtrans": 60.0}
            for d in ref.TABLE2
            if ref.TABLE2[d]["knowtrans"] > ref.TABLE2[d]["jellyfish"]
        ]
        agreement = ref.sign_agreement(
            ref.TABLE2, measured, "jellyfish", "knowtrans"
        )
        assert agreement == 1.0

    def test_sign_agreement_empty(self):
        assert ref.sign_agreement(ref.TABLE2, [], "jellyfish", "knowtrans") == 0.0

    def test_sign_agreement_mixed(self):
        measured = [
            {"dataset": "ed/beer", "jellyfish": 60.0, "knowtrans": 50.0},
        ]
        agreement = ref.sign_agreement(
            ref.TABLE2, measured, "jellyfish", "knowtrans"
        )
        assert agreement == 0.0  # paper gap positive, measured negative
