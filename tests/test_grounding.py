"""Grounding tests: the marker mechanism that makes AKB work.

The substrate's causal chain is: upstream SFT grounds the canonical
derived-marker vocabulary → downstream knowledge emits the same markers
→ the fine-tuned model's predictions move in the right direction.
These tests probe each link with the session bundle.
"""

import pytest

from repro.data.schema import Example, Record
from repro.knowledge.rules import (
    FormatConstraint,
    KeyAttribute,
    Knowledge,
    MissingValuePolicy,
)
from repro.tasks.base import get_task


def _ed_example(value: str) -> Example:
    record = Record.from_dict(
        {"name": "sample row", "amount": value, "city": "portland"}
    )
    return Example(
        task="ed", inputs={"record": record, "attribute": "amount"}, answer="yes"
    )


class TestMarkerGrounding:
    def test_missing_marker_raises_error_probability(self, bundle):
        """[missing] must push the upstream model toward 'yes' (error)."""
        task = get_task("ed")
        knowledge = Knowledge(rules=(MissingValuePolicy(),))
        example = _ed_example("nan")
        with_marker = task.prompt(example, knowledge)
        without_marker = task.prompt(example, Knowledge.empty())
        model = bundle.upstream_model
        p_with = model.probabilities(with_marker, ("yes", "no"))[0]
        p_without = model.probabilities(without_marker, ("yes", "no"))[0]
        assert p_with > p_without

    def test_format_violation_marker_raises_error_probability(self, bundle):
        task = get_task("ed")
        knowledge = Knowledge(rules=(FormatConstraint("amount", "integer"),))
        example = _ed_example("12.5x%")
        model = bundle.upstream_model
        p_with = model.probabilities(
            task.prompt(example, knowledge), ("yes", "no")
        )[0]
        p_without = model.probabilities(
            task.prompt(example, Knowledge.empty()), ("yes", "no")
        )[0]
        assert p_with > p_without

    def test_checks_pass_marker_lowers_error_probability(self, bundle):
        task = get_task("ed")
        knowledge = Knowledge(rules=(FormatConstraint("amount", "integer"),))
        example = _ed_example("42")  # satisfies the constraint
        model = bundle.upstream_model
        p_with = model.probabilities(
            task.prompt(example, knowledge), ("yes", "no")
        )[0]
        p_without = model.probabilities(
            task.prompt(example, Knowledge.empty()), ("yes", "no")
        )[0]
        assert p_with < p_without

    def test_key_match_marker_raises_match_probability(self, bundle):
        task = get_task("em")
        left = Record.from_dict({"title": "gadget foo", "modelno": "ab-1234"})
        right = Record.from_dict({"title": "foo gadget", "modelno": "ab-1234"})
        example = Example(
            task="em", inputs={"left": left, "right": right}, answer="yes"
        )
        knowledge = Knowledge(rules=(KeyAttribute("modelno"),))
        model = bundle.upstream_model
        p_with = model.probabilities(
            task.prompt(example, knowledge), ("yes", "no")
        )[0]
        p_without = model.probabilities(
            task.prompt(example, Knowledge.empty()), ("yes", "no")
        )[0]
        assert p_with > p_without

    def test_key_mismatch_marker_lowers_match_probability(self, bundle):
        task = get_task("em")
        left = Record.from_dict({"title": "gadget foo", "modelno": "ab-1234"})
        right = Record.from_dict({"title": "gadget foo", "modelno": "zz-9999"})
        example = Example(
            task="em", inputs={"left": left, "right": right}, answer="no"
        )
        knowledge = Knowledge(rules=(KeyAttribute("modelno"),))
        model = bundle.upstream_model
        p_with = model.probabilities(
            task.prompt(example, knowledge), ("yes", "no")
        )[0]
        p_without = model.probabilities(
            task.prompt(example, Knowledge.empty()), ("yes", "no")
        )[0]
        assert p_with < p_without


class TestGroundingSurvivesAdaptation:
    """SKC fine-tuning must not erase the marker grounding AKB needs."""

    @pytest.fixture(scope="class")
    def adapted(self, bundle, fast_config, beer_splits):
        from repro.core.knowtrans import KnowTrans

        return KnowTrans(bundle, config=fast_config, use_akb=False).fit(beer_splits)

    def test_fmt_violation_still_flips_toward_error(self, adapted):
        task = get_task("ed")
        knowledge = Knowledge(rules=(FormatConstraint("amount", "integer"),))
        example = _ed_example("12.5x%")
        p_with = adapted.model.probabilities(
            task.prompt(example, knowledge), ("yes", "no")
        )[0]
        p_without = adapted.model.probabilities(
            task.prompt(example, Knowledge.empty()), ("yes", "no")
        )[0]
        assert p_with > p_without
