"""Unit tests for repro.data.serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Record
from repro.data.serialization import (
    MISSING_TOKEN,
    serialize_comparisons,
    serialize_pair,
    serialize_record,
    serialize_values,
    similarity_bucket,
)

words = st.text(alphabet="abcdefgh ", min_size=1, max_size=20)


@pytest.fixture()
def record():
    return Record.from_dict({"name": "widget one", "price": "9.99", "note": "nan"})


class TestSerializeRecord:
    def test_contains_attributes_and_values(self, record):
        text = serialize_record(record)
        assert "name: widget one" in text
        assert "price: 9.99" in text

    def test_highlight_marks_cell(self, record):
        text = serialize_record(record, highlight="price")
        assert "price: << 9.99 >>" in text

    def test_canonical_missing(self, record):
        text = serialize_record(record, canonical_missing=True)
        assert MISSING_TOKEN in text
        assert "note: nan" not in text

    def test_raw_missing_without_flag(self, record):
        assert "note: nan" in serialize_record(record)


class TestSimilarityBucket:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("alpha beta", "alpha beta", "equal"),
            ("ALPHA beta ", "alpha beta", "equal"),
            ("alpha beta gamma", "alpha beta delta", "similar"),
            ("alpha beta", "big alpha beta thing", "similar"),  # containment
            ("alpha beta x y", "alpha beta a b", "related"),
            ("alpha beta", "gamma delta", "different"),
            ("", "anything", "different"),
        ],
    )
    def test_buckets(self, left, right, expected):
        assert similarity_bucket(left, right) == expected

    @given(words, words)
    @settings(max_examples=60, deadline=None)
    def test_symmetric_unless_containment(self, left, right):
        forward = similarity_bucket(left, right)
        backward = similarity_bucket(right, left)
        # Containment makes ordering matter only between the same pair of
        # non-'different' outcomes; buckets must never disagree wildly.
        order = ("equal", "similar", "related", "different")
        assert abs(order.index(forward) - order.index(backward)) <= 1

    @given(words)
    @settings(max_examples=30, deadline=None)
    def test_reflexive_equal(self, text):
        assert similarity_bucket(text, text) == "equal"


class TestComparisons:
    def test_comparisons_cover_shared_attributes(self, record):
        other = Record.from_dict({"name": "widget one", "price": "5.00"})
        text = serialize_comparisons(record, other)
        assert "name equal" in text
        assert "price different" in text
        assert "note" not in text  # not shared

    def test_empty_when_no_shared(self):
        a = Record.from_dict({"x": "1"})
        b = Record.from_dict({"y": "2"})
        assert serialize_comparisons(a, b) == ""

    def test_pair_includes_both_entities_and_comparison(self, record):
        text = serialize_pair(record, record)
        assert text.count("record [") == 2
        assert "entity a" in text and "entity b" in text
        assert "comparison [" in text


class TestSerializeValues:
    def test_limit(self):
        text = serialize_values([str(i) for i in range(20)], limit=3)
        assert "0 ; 1 ; 2" in text
        assert "19" not in text

    def test_empty(self):
        assert serialize_values([]) == "column values [  ]"
