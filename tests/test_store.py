"""The persistent artifact store: keying, atomicity, robustness.

The contract under test: a hit returns exactly the bytes the
computation would produce, and *anything* unexpected — a missing entry,
a truncated file, a flipped bit, a structurally bogus payload — behaves
like a miss, so callers recompute and rewrite instead of crashing or
serving bad floats.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import store as artifact_store
from repro.perf import PERF
from repro.store import (
    ArtifactStore,
    artifact_key,
    canonical_bytes,
    fingerprint,
    model_fingerprint,
)


@pytest.fixture(autouse=True)
def _restore_active_store():
    """Keep per-test configure() calls from leaking across the suite."""
    state = (
        artifact_store._ACTIVE,
        artifact_store._NO_CACHE,
        artifact_store._ENV_RESOLVED,
    )
    yield
    (
        artifact_store._ACTIVE,
        artifact_store._NO_CACHE,
        artifact_store._ENV_RESOLVED,
    ) = state


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "cache")


def _store_delta(before):
    counters = PERF.snapshot()["counters"]
    return {
        name: counters.get("store." + name, 0) - before.get("store." + name, 0)
        for name in ("hits", "misses", "writes", "corrupt")
    }


def _counters():
    return dict(PERF.snapshot()["counters"])


# ----------------------------------------------------------------------
# Canonicalisation and keys
# ----------------------------------------------------------------------
class TestKeys:
    def test_key_is_deterministic(self):
        fields = {"seed": 3, "rate": 0.25, "names": ["a", "b"]}
        assert artifact_key("k", fields) == artifact_key("k", dict(fields))

    def test_key_sensitive_to_every_field(self):
        base = {"seed": 3, "rate": 0.25}
        key = artifact_key("k", base)
        assert artifact_key("k", {**base, "seed": 4}) != key
        assert artifact_key("k", {**base, "rate": 0.250001}) != key
        assert artifact_key("other", base) != key

    def test_float_bit_patterns_distinguished(self):
        assert canonical_bytes(0.1 + 0.2) != canonical_bytes(0.3)

    def test_dict_key_order_irrelevant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes(
            {"b": 2, "a": 1}
        )

    def test_ndarray_content_hashed(self, rng):
        arr = rng.normal(size=(4, 3))
        twin = arr.copy()
        assert fingerprint(arr) == fingerprint(twin)
        twin[2, 1] += 1e-12
        assert fingerprint(arr) != fingerprint(twin)

    def test_dataclass_provenance(self, beer_splits):
        examples = list(beer_splits.validation.examples)
        assert fingerprint(examples) == fingerprint(list(examples))
        assert fingerprint(examples[:-1]) != fingerprint(examples)

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_model_fingerprint_tracks_weights(self, fresh_tiny_model):
        before = model_fingerprint(fresh_tiny_model)
        assert before == model_fingerprint(fresh_tiny_model)
        fresh_tiny_model.weights["encoder.W1"][0, 0] += 1.0
        assert model_fingerprint(fresh_tiny_model) != before


# ----------------------------------------------------------------------
# Read/write and corruption robustness
# ----------------------------------------------------------------------
class TestRoundtrip:
    def test_put_get_bit_identical(self, store, rng):
        payload = {"arr": rng.normal(size=(8, 5)), "meta": ("x", 3, 0.5)}
        key = artifact_key("t", {"n": 1})
        store.put("t", key, payload)
        loaded = store.get("t", key)
        assert loaded["meta"] == payload["meta"]
        np.testing.assert_array_equal(loaded["arr"], payload["arr"])
        assert loaded["arr"].tobytes() == payload["arr"].tobytes()

    def test_miss_returns_none(self, store):
        before = _counters()
        assert store.get("t", "0" * 64) is None
        assert _store_delta(before)["misses"] == 1

    def test_get_or_compute_memoises(self, store):
        calls = []

        def compute():
            calls.append(1)
            return {"value": 42}

        fields = {"seed": 1}
        assert store.get_or_compute("t", fields, compute)["value"] == 42
        assert store.get_or_compute("t", fields, compute)["value"] == 42
        assert len(calls) == 1

    def test_truncated_entry_is_a_miss(self, store):
        key = artifact_key("t", {"n": 2})
        store.put("t", key, {"value": 1.0})
        path = store._path("t", key)
        path.write_bytes(path.read_bytes()[:-7])
        before = _counters()
        assert store.get("t", key) is None
        delta = _store_delta(before)
        assert delta["corrupt"] == 1 and delta["misses"] == 1
        # The bad entry is dropped so a rewrite repairs the store.
        assert not path.exists()

    def test_digest_mismatch_is_a_miss(self, store):
        key = artifact_key("t", {"n": 3})
        store.put("t", key, {"value": 1.0})
        path = store._path("t", key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload bit; the header stays intact
        path.write_bytes(bytes(blob))
        before = _counters()
        assert store.get("t", key) is None
        assert _store_delta(before)["corrupt"] == 1

    def test_garbage_file_is_a_miss(self, store):
        key = artifact_key("t", {"n": 4})
        path = store._path("t", key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an artifact at all")
        assert store.get("t", key) is None

    def test_rewrite_after_corruption(self, store):
        key = artifact_key("t", {"n": 5})
        store.put("t", key, {"value": 1.0})
        path = store._path("t", key)
        path.write_bytes(b"garbage")
        assert store.get("t", key) is None
        store.put("t", key, {"value": 2.0})
        assert store.get("t", key) == {"value": 2.0}


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def _concurrent_put(args):
    root, key, worker = args
    store = ArtifactStore(root)
    store.put("race", key, {"worker-independent": True})
    return store.get("race", key)


class TestConcurrency:
    def test_concurrent_writers_same_key(self, tmp_path):
        from repro.runtime import WorkerPool

        root = str(tmp_path / "shared")
        key = artifact_key("race", {"n": 1})
        before = _counters()
        results = WorkerPool(jobs=2, clamp=False).map(
            _concurrent_put, [(root, key, i) for i in range(4)]
        )
        # Every racer saw a complete entry (atomic rename: readers never
        # observe partial writes) and the survivor decodes cleanly.
        assert all(r == {"worker-independent": True} for r in results)
        # Worker-side store traffic merged home with the perf snapshots.
        assert _store_delta(before)["writes"] == 4
        assert ArtifactStore(root).get("race", key) == {
            "worker-independent": True
        }

    def test_interrupted_write_leaves_no_entry(self, store, monkeypatch):
        key = artifact_key("t", {"n": 6})

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(artifact_store.os, "replace", boom)
        with pytest.raises(OSError):
            store.put("t", key, {"value": 1.0})
        monkeypatch.undo()
        assert store.get("t", key) is None
        assert list(store.root.rglob("*.tmp")) == []


# ----------------------------------------------------------------------
# Activation and bypass
# ----------------------------------------------------------------------
class TestActivation:
    def test_configure_and_using_store(self, store):
        artifact_store.configure(cache_dir=str(store.root))
        assert artifact_store.active().root == store.root
        with artifact_store.using_store(None):
            assert artifact_store.active() is None
        assert artifact_store.active().root == store.root

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        artifact_store.configure(no_cache=True)
        assert artifact_store.active() is None
        # Store-aware pipeline stages degrade to plain computation: the
        # featurization warm-start must not touch the directory.
        from repro.tinylm.tokenizer import HashedFeaturizer

        artifact_store.warm_featurizations(
            HashedFeaturizer(dim=64), ["alpha", "beta"]
        )
        assert not cache_dir.exists()

    def test_env_dir_resolves_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        artifact_store._ACTIVE = None
        artifact_store._NO_CACHE = False
        artifact_store._ENV_RESOLVED = False
        assert artifact_store.active().root == tmp_path / "env"


# ----------------------------------------------------------------------
# Warm-start equivalence through real pipeline stages
# ----------------------------------------------------------------------
class TestWarmStarts:
    def test_extract_patch_warm_identical(self, bundle, store):
        from repro.core.config import SKCConfig
        from repro.core.skc.patches import extract_patch

        config = SKCConfig(patch_epochs=1)
        dataset = bundle.upstream_datasets[0]
        with artifact_store.using_store(None):
            plain = extract_patch(bundle.base_model, dataset, config)
        before = _counters()
        with artifact_store.using_store(store):
            cold = extract_patch(bundle.base_model, dataset, config)
            warm = extract_patch(bundle.base_model, dataset, config)
        delta = _store_delta(before)
        assert delta["writes"] == 1 and delta["hits"] == 1
        for reference in (cold, warm):
            state = reference.state_dict()
            for key, value in plain.state_dict().items():
                np.testing.assert_array_equal(value, state[key])

    def test_bogus_payload_triggers_retrain_and_rewrite(self, bundle, store):
        from repro.core.config import SKCConfig
        from repro.core.skc.patches import extract_patch, patch_store_key
        from repro.knowledge.seed import ORACLES
        from repro.knowledge.rules import Knowledge

        config = SKCConfig(patch_epochs=1)
        dataset = bundle.upstream_datasets[0]
        knowledge = ORACLES.get("up/" + dataset.name, Knowledge.empty())
        key = patch_store_key(bundle.base_model, dataset, config, knowledge)
        # A well-formed entry with a structurally wrong payload: decodes
        # fine, but load_state_dict must reject it and retraining must
        # overwrite it with the real arrays.
        store.put("patch", key, {"B::nonsense": np.zeros((2, 2))})
        with artifact_store.using_store(store):
            repaired = extract_patch(bundle.base_model, dataset, config)
        with artifact_store.using_store(None):
            plain = extract_patch(bundle.base_model, dataset, config)
        for k, value in plain.state_dict().items():
            np.testing.assert_array_equal(value, repaired.state_dict()[k])
        cached = store.get("patch", key)
        assert set(cached) == set(plain.state_dict())

    def test_search_knowledge_warm_identical(self, tiny_model, store):
        from repro.core.akb.optimizer import search_knowledge
        from repro.core.config import AKBConfig
        from repro.data import generators
        from repro.data.splits import split_dataset

        dataset = generators.build("ed/beer", count=40, seed=7)
        splits = split_dataset(dataset, few_shot=10, seed=7)
        config = AKBConfig(pool_size=3, iterations=2, seed=5)

        def run():
            return search_knowledge(
                tiny_model,
                dataset,
                splits.validation.examples,
                config=config,
            )

        with artifact_store.using_store(None):
            plain = run()
        before = _counters()
        with artifact_store.using_store(store):
            cold = run()
            warm = run()
        delta = _store_delta(before)
        assert delta["hits"] > 0
        for result in (cold, warm):
            assert result.knowledge == plain.knowledge
            assert result.best_score == plain.best_score
            assert result.rounds == plain.rounds

    def test_featurization_roundtrip(self, store):
        from repro.tinylm.tokenizer import HashedFeaturizer

        texts = ["entity one", "entity two", "entity one"]
        featurizer = HashedFeaturizer(dim=128, salt="store-test")
        reference = [featurizer.encode(t) for t in texts]
        with artifact_store.using_store(store):
            artifact_store.warm_featurizations(featurizer, texts)
            # A fresh featurizer after a cache wipe models a new process:
            # the warm-start must seed its sparse cache from the store.
            HashedFeaturizer.clear_shared_caches()
            fresh = HashedFeaturizer(dim=128, salt="store-test")
            before = _counters()
            artifact_store.warm_featurizations(fresh, texts)
            assert _store_delta(before)["hits"] == 1
            assert "entity one" in fresh._sparse_cache
        seeded = [fresh.encode(t) for t in texts]
        for ref, got in zip(reference, seeded):
            np.testing.assert_array_equal(ref, got)


# ----------------------------------------------------------------------
# Maintenance and stats
# ----------------------------------------------------------------------
class TestMaintenance:
    def test_disk_stats_and_clear(self, store):
        for n in range(3):
            store.put("t", artifact_key("t", {"n": n}), {"n": n})
        stats = store.disk_stats()
        assert stats["t"]["entries"] == 3 and stats["t"]["bytes"] > 0
        removed = store.clear()
        assert removed["entries"] == 3
        assert store.disk_stats() == {}

    def test_gc_drops_corrupt_and_bounds_size(self, store):
        keys = [artifact_key("t", {"n": n}) for n in range(4)]
        for n, key in enumerate(keys):
            store.put("t", key, {"n": n, "pad": "x" * 512})
        store._path("t", keys[0]).write_bytes(b"garbage")
        (store.root / "t" / "zz").mkdir(parents=True, exist_ok=True)
        (store.root / "t" / "zz" / "left.tmp").write_bytes(b"partial")
        report = store.gc(max_bytes=1)
        assert report["corrupt_removed"] == 1
        assert report["tmp_removed"] == 1
        assert report["evicted"] == 3
        assert store.disk_stats() == {}

    def test_session_log_and_render(self, store):
        key = artifact_key("t", {"n": 1})
        PERF.reset()
        store.put("t", key, {"n": 1})
        store.get("t", key)
        store.log_session()
        totals = store.session_totals()
        assert totals["sessions"] == 1
        assert totals["hits"] == 1 and totals["writes"] == 1
        text = store.render_stats()
        assert "artifact store" in text and "logged sessions: 1" in text

    def test_log_session_skips_idle(self, store):
        PERF.reset()
        store.log_session()
        assert not (store.root / "stats.jsonl").exists()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCacheCLI:
    def test_stats_clear_gc(self, store, capsys):
        from repro.cli import main

        store.put("t", artifact_key("t", {"n": 1}), {"n": 1})
        root = str(store.root)
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["cache", "gc", "--cache-dir", root]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", root]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out

    def test_stats_requires_directory(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err
