"""End-to-end integration tests: the paper's headline claims in miniature.

These assertions encode the *shape* results the reproduction is supposed
to exhibit (see DESIGN.md): KnowTrans beats plain few-shot fine-tuning
on datasets with discoverable conventions, searched knowledge
approaches the generator's oracle rules, and the public API composes.
"""

import pytest

from repro import (
    AdaptedModel,
    KnowTrans,
    Knowledge,
    get_bundle,
    get_task,
    load_splits,
)
from repro.knowledge.rules import FormatConstraint
from repro.eval.harness import evaluate_method
from repro.knowledge.seed import oracle_knowledge


class TestPublicAPI:
    def test_quickstart_surface(self, bundle, fast_config, beer_splits):
        adapted = KnowTrans(bundle, config=fast_config).fit(beer_splits)
        assert isinstance(adapted, AdaptedModel)
        score = evaluate_method(adapted, beer_splits.test.examples, adapted.task.name)
        assert 0.0 <= score <= 100.0

    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestHeadlineShapes:
    def test_knowtrans_beats_plain_finetune_on_em(self, bundle, fast_config, abt_splits):
        knowtrans = KnowTrans(bundle, config=fast_config).fit(abt_splits)
        plain = KnowTrans(
            bundle, config=fast_config, use_skc=False, use_akb=False
        ).fit(abt_splits)
        kt_score = evaluate_method(knowtrans, abt_splits.test.examples, "em")
        plain_score = evaluate_method(plain, abt_splits.test.examples, "em")
        assert kt_score > plain_score

    def test_akb_discovers_oracle_like_rules(self, bundle, fast_config, beer_splits):
        adapted = KnowTrans(bundle, config=fast_config).fit(beer_splits)
        oracle = oracle_knowledge("ed/beer")
        found = set(adapted.knowledge.rules)
        # At least one of the generator's latent conventions must have
        # been rediscovered by the search.
        assert found & set(oracle.rules)

    def test_searched_knowledge_contains_format_rule(
        self, bundle, fast_config, beer_splits
    ):
        adapted = KnowTrans(bundle, config=fast_config).fit(beer_splits)
        kinds = {type(rule) for rule in adapted.knowledge.rules}
        assert FormatConstraint in kinds or len(adapted.knowledge.rules) >= 1

    def test_oracle_knowledge_helps_fine_tuned_model(
        self, bundle, fast_config, beer_splits
    ):
        adapted = KnowTrans(bundle, config=fast_config, use_akb=False).fit(beer_splits)
        task = get_task("ed")
        bare = task.evaluate(
            adapted.model, beer_splits.test.examples, Knowledge.empty(),
            beer_splits.test,
        )
        informed = task.evaluate(
            adapted.model, beer_splits.test.examples, oracle_knowledge("ed/beer"),
            beer_splits.test,
        )
        assert informed >= bare

    def test_load_splits_roundtrip(self):
        splits = load_splits("em/walmart_amazon", count=70, seed=2)
        assert splits.task == "em"
        assert len(splits.few_shot.examples) == 20


class TestCrossTier:
    @pytest.mark.slow
    def test_bigger_tier_not_worse_on_average(self, fast_config):
        small = get_bundle("mistral-7b", seed=0, scale=0.3)
        big = get_bundle("llama-13b", seed=0, scale=0.3)
        scores = {"small": 0.0, "big": 0.0}
        for dataset_id in ("ed/beer", "em/abt_buy"):
            splits = load_splits(dataset_id, count=70, seed=5)
            scores["small"] += evaluate_method(
                KnowTrans(small, config=fast_config).fit(splits),
                splits.test.examples, splits.task,
            )
            scores["big"] += evaluate_method(
                KnowTrans(big, config=fast_config).fit(splits),
                splits.test.examples, splits.task,
            )
        # Capacity should not catastrophically hurt; allow modest noise.
        assert scores["big"] >= scores["small"] - 25.0
