"""Tests for the baseline methods (Table II / IV comparators)."""

import numpy as np
import pytest

from repro.baselines.closed import CLOSED_MODELS, make_closed_model
from repro.baselines.jellyfish import get_bundle, upstream_sft
from repro.baselines.meld import fit_meld
from repro.baselines.non_llm import NON_LLM_NAMES, fit_non_llm
from repro.data import generators
from repro.data.splits import split_dataset

ALL_IDS = list(generators.downstream_ids())


class TestJellyfishBundle:
    def test_bundle_contents(self, bundle):
        assert bundle.tier == "mistral-7b"
        assert len(bundle.upstream_datasets) == 12
        assert len(bundle.patches) == 12

    def test_bundle_cached(self, bundle):
        again = get_bundle("mistral-7b", seed=0, scale=0.3)
        assert again is bundle

    def test_fresh_models_are_copies(self, bundle):
        fresh = bundle.fresh_upstream()
        fresh.weights["encoder.b1"][0] = 1234.0
        assert bundle.upstream_model.weights["encoder.b1"][0] != 1234.0

    def test_upstream_sft_changes_weights(self, base_model):
        datasets = [generators.upstream.generate("buy", count=12, seed=1)]
        tuned = upstream_sft(base_model, datasets, epochs=1, seed=0)
        assert not np.allclose(
            tuned.weights["encoder.W1"], base_model.weights["encoder.W1"]
        )

    def test_no_sft_bundle_keeps_base(self):
        raw = get_bundle("mistral-7b", seed=0, scale=0.3, with_upstream_sft=False)
        np.testing.assert_array_equal(
            raw.upstream_model.weights["encoder.W1"],
            raw.base_model.weights["encoder.W1"],
        )

    def test_upstream_learns_upstream_data(self, bundle):
        from repro.core.skc.patches import dataset_training_examples

        dataset = bundle.upstream_datasets[0]
        examples = dataset_training_examples(dataset)[:30]
        hits = sum(
            bundle.upstream_model.predict(ex.prompt, ex.candidates) == ex.target
            for ex in examples
        )
        base_hits = sum(
            bundle.base_model.predict(ex.prompt, ex.candidates) == ex.target
            for ex in examples
        )
        assert hits >= base_hits


class TestMELD:
    def test_fit_and_predict(self, bundle, fast_config, beer_splits):
        meld = fit_meld(bundle, beer_splits, fast_config.skc)
        example = beer_splits.test.examples[0]
        assert meld.predict(example) in ("yes", "no")
        assert 0.0 <= meld.evaluate(beer_splits.test.examples[:20]) <= 100.0

    def test_router_weights_instance_level(self, bundle, fast_config, beer_splits):
        meld = fit_meld(bundle, beer_splits, fast_config.skc)
        meld.predict(beer_splits.test.examples[0])
        first = meld.fusion.lambdas.copy()
        meld.predict(beer_splits.test.examples[1])
        second = meld.fusion.lambdas.copy()
        assert not np.array_equal(first, second)

    def test_router_top_k_sparsity(self, bundle, fast_config, beer_splits):
        meld = fit_meld(bundle, beer_splits, fast_config.skc)
        meld.predict(beer_splits.test.examples[0])
        active = np.count_nonzero(meld.fusion.lambdas)
        assert active <= meld.top_k


class TestNonLLM:
    def test_name_registry_covers_tasks(self):
        assert set(NON_LLM_NAMES) == {"ed", "di", "sm", "em", "cta", "ave", "dc"}

    @pytest.mark.parametrize("dataset_id", ALL_IDS)
    def test_fit_predict_evaluate(self, dataset_id):
        dataset = generators.build(dataset_id, count=70, seed=21)
        splits = split_dataset(dataset, few_shot=20, seed=21)
        baseline = fit_non_llm(splits.task, splits.few_shot.examples)
        prediction = baseline.predict(splits.test.examples[0])
        assert isinstance(prediction, str)
        assert 0.0 <= baseline.evaluate(splits.test.examples) <= 100.0

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            fit_non_llm("xx", [])

    def test_raha_learns_missing_signal(self):
        dataset = generators.build("ed/beer", count=120, seed=3)
        splits = split_dataset(dataset, few_shot=20, seed=3)
        baseline = fit_non_llm("ed", splits.train.examples)  # generous data
        missing_cases = [
            ex
            for ex in splits.test.examples
            if ex.inputs["record"].is_missing(ex.inputs["attribute"])
        ]
        if missing_cases:
            hits = sum(baseline.predict(ex) == "yes" for ex in missing_cases)
            assert hits / len(missing_cases) > 0.5


class TestClosedModels:
    def test_model_registry(self):
        assert set(CLOSED_MODELS) == {"gpt-3.5", "gpt-4", "gpt-4o"}

    def test_unknown_model(self, beer_splits):
        with pytest.raises(KeyError):
            make_closed_model("gpt-99", "ed", beer_splits.few_shot.examples)

    @pytest.mark.parametrize("dataset_id", ["ed/beer", "em/abt_buy", "dc/beer",
                                            "di/phone", "cta/sotab", "ave/ae110k",
                                            "sm/cms"])
    def test_predict_and_evaluate(self, dataset_id):
        dataset = generators.build(dataset_id, count=60, seed=17)
        splits = split_dataset(dataset, few_shot=20, seed=17)
        model = make_closed_model(
            "gpt-4o", splits.task, splits.few_shot.examples, splits.few_shot
        )
        assert 0.0 <= model.evaluate(splits.test.examples[:24]) <= 100.0

    def test_meter_accumulates_icl_tokens(self, beer_splits):
        model = make_closed_model(
            "gpt-4", "ed", beer_splits.few_shot.examples, beer_splits.few_shot
        )
        model.predict(beer_splits.test.examples[0])
        summary = model.meter.summary()
        # ICL prompts carry ten demonstrations → hundreds of tokens.
        assert summary["input_tokens"] > 200
        assert summary["cost_per_instance"] > 0

    def test_stronger_model_beats_weaker_on_em(self):
        dataset = generators.build("em/abt_buy", count=160, seed=19)
        splits = split_dataset(dataset, few_shot=20, seed=19)
        weak = make_closed_model(
            "gpt-3.5", "em", splits.few_shot.examples, splits.few_shot
        ).evaluate(splits.test.examples)
        strong = make_closed_model(
            "gpt-4", "em", splits.few_shot.examples, splits.few_shot
        ).evaluate(splits.test.examples)
        assert strong > weak

    def test_deterministic_given_seed(self, beer_splits):
        scores = []
        for __ in range(2):
            model = make_closed_model(
                "gpt-4o", "ed", beer_splits.few_shot.examples,
                beer_splits.few_shot, seed=5,
            )
            scores.append(model.evaluate(beer_splits.test.examples[:20]))
        assert scores[0] == scores[1]
