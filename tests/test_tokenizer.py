"""Unit tests for repro.tinylm.tokenizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tinylm.tokenizer import (
    HashedFeaturizer,
    count_tokens,
    normalize,
    resolve_cache_size,
    tokenize,
)

text_strategy = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd", "Zs")),
    max_size=80,
)


class TestNormalizeAndTokenize:
    def test_normalize_lowercases_and_collapses(self):
        assert normalize("  Hello   WORLD ") == "hello world"

    def test_tokenize_words_and_numbers(self):
        assert tokenize("abc 12.5 def") == ["abc", "12.5", "def"]

    def test_tokenize_keeps_markers_atomic(self):
        assert tokenize("x [fmt_violation] y") == ["x", "[fmt_violation]", "y"]

    def test_tokenize_symbols(self):
        assert "%" in tokenize("0.05%")

    def test_count_tokens_matches_tokenize(self):
        text = "record [ abv: 0.05% ]"
        assert count_tokens(text) == len(tokenize(text))

    def test_empty_text(self):
        assert tokenize("") == []
        assert count_tokens("") == 0


class TestHashedFeaturizer:
    def test_unit_norm(self):
        featurizer = HashedFeaturizer(dim=128)
        vec = featurizer.encode("some example text here")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_empty_text_is_zero_vector(self):
        featurizer = HashedFeaturizer(dim=128)
        assert np.linalg.norm(featurizer.encode("")) == 0.0

    def test_deterministic_across_instances(self):
        a = HashedFeaturizer(dim=256).encode("hello world")
        b = HashedFeaturizer(dim=256).encode("hello world")
        np.testing.assert_array_equal(a, b)

    def test_salt_changes_embedding(self):
        a = HashedFeaturizer(dim=256, salt="one").encode("hello world")
        b = HashedFeaturizer(dim=256, salt="two").encode("hello world")
        assert not np.allclose(a, b)

    def test_different_texts_differ(self):
        featurizer = HashedFeaturizer(dim=512)
        a = featurizer.encode("alpha beta gamma")
        b = featurizer.encode("delta epsilon zeta")
        assert not np.allclose(a, b)

    def test_similar_texts_closer_than_different(self):
        featurizer = HashedFeaturizer(dim=1024)
        base = featurizer.encode("hoppy trail ipa from portland")
        near = featurizer.encode("hoppy trail ale from portland")
        far = featurizer.encode("annals of internal medicine 2015")
        assert base @ near > base @ far

    def test_marker_tokens_get_elevated_weight(self):
        featurizer = HashedFeaturizer(
            dim=1024, use_bigrams=False, use_char_ngrams=False
        )
        plain = featurizer.encode("alpha beta")
        marked = featurizer.encode("alpha [missing]")
        # The marker bucket should carry MARKER_WEIGHT times the mass of
        # a plain word bucket (up to normalisation).
        plain_mass = np.abs(plain).max()
        marked_mass = np.abs(marked).max()
        assert marked_mass > plain_mass

    def test_encode_batch_shape(self):
        featurizer = HashedFeaturizer(dim=64)
        batch = featurizer.encode_batch(["a b", "c d", "e"])
        assert batch.shape == (3, 64)

    def test_encode_batch_empty(self):
        featurizer = HashedFeaturizer(dim=64)
        assert featurizer.encode_batch([]).shape == (0, 64)

    def test_rejects_degenerate_dim(self):
        with pytest.raises(ValueError):
            HashedFeaturizer(dim=1)

    @given(text_strategy)
    @settings(max_examples=60, deadline=None)
    def test_norm_at_most_one(self, text):
        featurizer = HashedFeaturizer(dim=128)
        norm = np.linalg.norm(featurizer.encode(text))
        assert norm == pytest.approx(1.0) or norm == 0.0

    @given(text_strategy, text_strategy)
    @settings(max_examples=40, deadline=None)
    def test_encoding_is_function_of_text(self, left, right):
        featurizer = HashedFeaturizer(dim=128)
        a, b = featurizer.encode(left), featurizer.encode(right)
        if normalize(left) == normalize(right):
            np.testing.assert_array_equal(a, b)

    def test_bigram_flag_changes_features(self):
        with_bigrams = HashedFeaturizer(dim=512, use_bigrams=True)
        without = HashedFeaturizer(dim=512, use_bigrams=False)
        text = "alpha beta gamma"
        assert not np.allclose(with_bigrams.encode(text), without.encode(text))


class TestCacheSizeResolution:
    def test_explicit_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_LRU_SIZE", "100")
        assert resolve_cache_size(500, override=7) == 7

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_LRU_SIZE", "64")
        assert resolve_cache_size(500) == 64

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_LRU_SIZE", raising=False)
        assert resolve_cache_size(500) == 500

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_LRU_SIZE", "lots")
        with pytest.raises(ValueError):
            resolve_cache_size(500)

    def test_floors_at_one(self):
        assert resolve_cache_size(500, override=0) == 1

    def test_sparse_cache_respects_bound(self):
        featurizer = HashedFeaturizer(
            dim=128, salt="lru-test", cache_size=4
        )
        for i in range(20):
            featurizer.encode_sparse(f"text number {i}")
        assert len(featurizer._sparse_cache) <= 4
        # Most recent entries survive (LRU semantics).
        assert "text number 19" in featurizer._sparse_cache

    def test_env_sized_featurizers_share_a_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_LRU_SIZE", "8")
        first = HashedFeaturizer(dim=128, salt="lru-env-test")
        second = HashedFeaturizer(dim=128, salt="lru-env-test")
        assert first.cache_size == 8
        assert first._sparse_cache is second._sparse_cache
