"""Tests for repro.stream — incremental fits, drift detection, replay."""

import numpy as np
import pytest

from repro.perf import PERF
from repro.stream import (
    DriftDetector,
    StreamConfig,
    build_drift_scenario,
    cosine_distance,
    run_stream_demo,
)
from repro.tinylm.lora import LoRAPatch
from repro.tinylm.model import ModelConfig, ScoringLM
from repro.tinylm.trainer import TrainConfig, Trainer, TrainingExample


def _examples(seed: int, n: int = 12, tag: str = "a"):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        warm = int(rng.integers(2))
        color = "red" if warm else "blue"
        out.append(
            TrainingExample(
                f"stream-test-{tag}-{seed}-{i} color {color}",
                ("warm", "cold"),
                0 if warm else 1,
            )
        )
    return out


def _model(seed: int = 5) -> ScoringLM:
    return ScoringLM(
        ModelConfig(
            name="stream-test", feature_dim=256, hidden_dim=24, seed=seed
        )
    )


def _trainer(model: ScoringLM, seed: int = 0) -> Trainer:
    model.attach(LoRAPatch("p", model.config.target_shapes(), rank=2, seed=1))
    return Trainer(
        model,
        TrainConfig(epochs=2, batch_size=4, seed=seed),
        train_base=False,
    )


# ----------------------------------------------------------------------
# Trainer.fit_incremental / FrozenActivations.append
# ----------------------------------------------------------------------
class TestFitIncremental:
    def test_replay_matches_within_documented_tolerance(self):
        batches = [_examples(s, tag="replay") for s in (0, 1, 2)]

        def run():
            model = _model()
            trainer = _trainer(model)
            losses = []
            for batch in batches:
                losses.extend(trainer.fit_incremental(batch).step_losses)
            return losses, model.adapter.parameters()

        losses_a, params_a = run()
        losses_b, params_b = run()
        np.testing.assert_allclose(losses_a, losses_b, rtol=1e-9)
        assert losses_a == losses_b  # same shapes -> bit-identical
        for key, value in params_a.items():
            assert np.array_equal(value, params_b[key])

    def test_append_never_refeaturizes_prior_rows(self):
        model = _model()
        trainer = _trainer(model)
        encoded_first = trainer._encode(_examples(0, tag="append-a"))
        frozen = model.frozen_activations(encoded_first)
        encoded_second = trainer._encode(_examples(1, tag="append-b"))
        before = (
            PERF.counter("model.prompt_misses"),
            PERF.counter("model.candidate_misses"),
        )
        appends_before = PERF.counter("train.frozen_appends")
        frozen.append(encoded_second)
        after = (
            PERF.counter("model.prompt_misses"),
            PERF.counter("model.candidate_misses"),
        )
        assert after == before  # projection only, zero featurizer work
        assert PERF.counter("train.frozen_appends") == appends_before + 1
        assert frozen.X.shape[0] == len(encoded_first) + len(encoded_second)

    def test_incremental_featurizes_only_the_new_batch(self):
        model = _model()
        trainer = _trainer(model)
        first = _examples(0, tag="only-new-a")
        second = _examples(1, tag="only-new-b")
        trainer.fit_incremental(first)
        builds_before = PERF.counter("train.frozen_builds")
        misses_before = PERF.counter("model.prompt_misses")
        trainer.fit_incremental(second)
        assert (
            PERF.counter("model.prompt_misses") - misses_before
            == len(second)
        )
        # the sidecar grows in place: no second frozen build
        assert PERF.counter("train.frozen_builds") == builds_before
        assert trainer.stream_state.examples_seen == len(first) + len(second)
        assert trainer.stream_state.batches == 2

    def test_adam_state_resumes_across_calls(self):
        # Warm moments must carry over: the second batch's first step on
        # a warm trainer differs from the same step on a cold trainer.
        batch_a = _examples(0, tag="adam-a")
        batch_b = _examples(1, tag="adam-b")
        warm_model = _model()
        warm = _trainer(warm_model)
        warm.fit_incremental(batch_a)
        warm_losses = warm.fit_incremental(batch_b).step_losses

        cold_model = _model()
        cold = _trainer(cold_model)
        cold_losses = cold.fit_incremental(batch_b).step_losses
        assert warm_losses != cold_losses

    def test_empty_batch_rejected(self):
        trainer = _trainer(_model())
        with pytest.raises(ValueError):
            trainer.fit_incremental([])

    def test_requires_rank_space_path(self):
        model = _model()
        model.attach(
            LoRAPatch("p", model.config.target_shapes(), rank=2, seed=1)
        )
        dense = Trainer(model, TrainConfig(epochs=1), train_base=True)
        with pytest.raises(RuntimeError):
            dense.fit_incremental(_examples(0, tag="dense"))


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------
class TestDriftDetector:
    REF = (1.0, 0.0, 0.0)
    NEAR = (1.0, 0.01, 0.0)  # distance ~5e-5
    FAR = (0.0, 1.0, 0.0)  # distance 1.0

    def _detector(self):
        return DriftDetector(self.REF, threshold=0.1, patience=2)

    def test_cosine_distance_basics(self):
        assert cosine_distance(self.REF, self.REF) == pytest.approx(0.0)
        assert cosine_distance(self.REF, self.FAR) == pytest.approx(1.0)
        assert cosine_distance((0.0, 0.0), (0.0, 0.0)) == 0.0

    def test_no_fire_in_regime(self):
        detector = self._detector()
        for __ in range(10):
            assert not detector.update(self.NEAR).fired
        assert detector.fired_total == 0

    def test_single_noisy_batch_does_not_fire(self):
        detector = self._detector()
        update = detector.update(self.FAR)
        assert update.over_threshold and not update.fired
        # hysteresis: dropping back in-regime resets the streak
        assert not detector.update(self.NEAR).fired
        assert not detector.update(self.FAR).fired
        assert detector.fired_total == 0

    def test_sustained_shift_fires_exactly_once(self):
        detector = self._detector()
        assert not detector.update(self.FAR).fired
        assert detector.update(self.FAR).fired  # patience reached
        # re-baselined onto the new regime: no re-fire while it holds
        for __ in range(10):
            assert not detector.update(self.FAR).fired
        assert detector.fired_total == 1

    def test_second_shift_fires_again(self):
        detector = self._detector()
        detector.update(self.FAR)
        detector.update(self.FAR)
        third = (0.0, 0.0, 1.0)
        assert not detector.update(third).fired
        assert detector.update(third).fired
        assert detector.fired_total == 2


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestStreamConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            StreamConfig(mode="clairvoyant")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            StreamConfig(window_batches=0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            StreamConfig(drift_threshold=-0.1)


# ----------------------------------------------------------------------
# End-to-end episodes (small scale)
# ----------------------------------------------------------------------
class TestStreamEpisode:
    def test_scenario_shapes(self):
        scenario = build_drift_scenario(
            batches=4, batch_size=6, drift_at=2, warmup=8, holdout=8, seed=0
        )
        assert len(scenario.batches) == 4
        assert all(len(batch) == 6 for batch in scenario.batches)
        assert scenario.drift_at == 2
        assert scenario.pre_knowledge is not None
        assert scenario.post_knowledge is not None

    def test_drift_fires_once_and_reseeds(self):
        demo = run_stream_demo(batches=6, batch_size=12, seed=0)
        assert len(demo["drift_batches"]) == 1
        assert demo["drift_batches"][0] >= demo["drift_at"]
        assert demo["reseed_batches"] == demo["drift_batches"]
        assert demo["holdout_accuracy"] > 0.5

    def test_replay_is_bit_identical(self):
        first = run_stream_demo(batches=5, batch_size=10, seed=1)
        second = run_stream_demo(batches=5, batch_size=10, seed=1)
        assert first["accuracies"] == second["accuracies"]
        assert first["drift_batches"] == second["drift_batches"]
        assert first["holdout_accuracy"] == second["holdout_accuracy"]

    def test_frozen_mode_never_updates(self):
        demo = run_stream_demo(mode="frozen", batches=4, batch_size=10, seed=0)
        assert all(r["update_mode"] == "frozen" for r in demo["records"])
        assert all(r["update_seconds"] == 0.0 for r in demo["records"])
        assert demo["reseed_batches"] == []
