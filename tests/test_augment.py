"""Tests for the entity-augmentation pass (alias table + pseudo-translation)."""

import pytest

from repro.data import generators
from repro.data.augment import (
    AUGMENTABLE_TASKS,
    AliasTable,
    AugmentConfig,
    alias_form,
    augment_dataset,
    pseudo_translate,
)


class TestAliasTable:
    def test_same_seed_same_alias(self):
        for form in ("acme labs ultra series", "sharp", "western digital"):
            assert alias_form(form, 7) == alias_form(form, 7)

    def test_table_memoises_deterministically(self):
        a, b = AliasTable(3), AliasTable(3)
        forms = ["canon powershot", "philips norelco", "tdk"]
        assert [a.alias(f) for f in forms] == [b.alias(f) for f in forms]
        assert len(a) == 3
        # repeated lookups hit the memo, not a new derivation
        assert a.alias("tdk") == a.alias("tdk")
        assert len(a) == 3

    def test_seed_changes_some_aliases(self):
        forms = [f"brand {i} super line" for i in range(20)]
        one = [alias_form(f, 1) for f in forms]
        two = [alias_form(f, 2) for f in forms]
        assert one != two

    def test_alias_differs_from_original(self):
        # multi-word catalogue names always get a visible rewrite
        for form in ("acme labs ultra series", "canon powershot elph"):
            assert alias_form(form, 0) != form

    def test_empty_form_passes_through(self):
        assert alias_form("", 0) == ""
        assert alias_form("   ", 0) == "   "


class TestPseudoTranslate:
    def test_deterministic(self):
        assert pseudo_translate("acme labs", "xx-el") == pseudo_translate(
            "acme labs", "xx-el"
        )

    def test_languages_differ(self):
        text = "portable bluetooth speaker"
        assert pseudo_translate(text, "xx-el") != pseudo_translate(text, "xx-ka")

    def test_digits_and_punctuation_pass_through(self):
        out = pseudo_translate("model x-200, rev 3.5!", "xx-el")
        for ch in "-200, 3.5!":
            assert ch in out
        # every digit/punct char survives at its original position
        src = "model x-200, rev 3.5!"
        for i, ch in enumerate(src):
            if not ch.isalpha():
                assert out[i] == ch

    def test_word_shape_survives(self):
        src = "canon eos"
        out = pseudo_translate(src, "xx-ka")
        assert len(out) == len(src)
        assert out.count(" ") == src.count(" ")


class TestAugmentConfig:
    def test_parse_empty_is_default(self):
        assert AugmentConfig.parse("") == AugmentConfig()

    def test_parse_round_trip(self):
        config = AugmentConfig(
            seed=3, rate=0.5, alias_rate=0.25, languages=("xx-a", "xx-b")
        )
        assert AugmentConfig.parse(config.describe()) == config

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown augment spec key"):
            AugmentConfig.parse("seed=1,bogus=2")

    def test_parse_rejects_bare_fragment(self):
        with pytest.raises(ValueError, match="key=value"):
            AugmentConfig.parse("seed")

    def test_parse_rejects_empty_languages(self):
        with pytest.raises(ValueError, match="language"):
            AugmentConfig.parse("languages=|")


class TestAugmentDataset:
    def test_deterministic_across_rebuilds(self):
        config = AugmentConfig(seed=0)
        a = augment_dataset(generators.build("em/abt_buy", count=80, seed=0), config)
        b = augment_dataset(generators.build("em/abt_buy", count=80, seed=0), config)
        assert [e.inputs for e in a.examples] == [e.inputs for e in b.examples]
        assert a.meta["augment_rewritten"] == b.meta["augment_rewritten"]

    def test_order_count_and_answers_preserved(self):
        base = generators.build("em/walmart_amazon", count=80, seed=1)
        out = augment_dataset(base, AugmentConfig(seed=1))
        assert len(out.examples) == len(base.examples)
        assert [e.answer for e in out.examples] == [e.answer for e in base.examples]

    def test_some_examples_rewritten_at_default_rate(self):
        base = generators.build("em/abt_buy", count=120, seed=0)
        out = augment_dataset(base, AugmentConfig(seed=0))
        assert out.meta["augment_rewritten"] > 0
        rewritten = [e for e in out.examples if "augment" in e.meta]
        assert len(rewritten) == out.meta["augment_rewritten"]

    def test_rate_zero_rewrites_nothing(self):
        base = generators.build("ed/flights", count=60, seed=0)
        out = augment_dataset(base, AugmentConfig(seed=0, rate=0.0))
        assert out.meta["augment_rewritten"] == 0
        assert [e.inputs for e in out.examples] == [e.inputs for e in base.examples]

    def test_non_augmentable_task_passes_through(self):
        base = generators.build("cta/sotab", count=40, seed=0)
        assert base.task not in AUGMENTABLE_TASKS
        out = augment_dataset(base, AugmentConfig(seed=0))
        assert out is base

    def test_ed_never_touches_questioned_cell(self):
        base = generators.build("ed/rayyan", count=200, seed=2)
        out = augment_dataset(base, AugmentConfig(seed=2, rate=1.0))
        for before, after in zip(base.examples, out.examples):
            attribute = before.inputs["attribute"]
            assert after.inputs["record"].get(attribute) == before.inputs[
                "record"
            ].get(attribute)
            if "augment" in after.meta:
                assert after.meta["augment"]["attribute"] != attribute

    def test_di_gold_substring_cells_survive(self):
        base = generators.build("di/flipkart", count=200, seed=3)
        out = augment_dataset(base, AugmentConfig(seed=3, rate=1.0))
        for before, after in zip(base.examples, out.examples):
            gold = before.answer.lower()
            if not gold:
                continue
            for attr in before.inputs["record"].attributes:
                if gold in before.inputs["record"].get(attr).lower():
                    assert after.inputs["record"].get(attr) == before.inputs[
                        "record"
                    ].get(attr)

    def test_em_left_record_untouched(self):
        base = generators.build("em/abt_buy", count=120, seed=4)
        out = augment_dataset(base, AugmentConfig(seed=4, rate=1.0))
        for before, after in zip(base.examples, out.examples):
            assert after.inputs["left"] is before.inputs["left"]

    def test_meta_records_config(self):
        config = AugmentConfig(seed=5, rate=0.4)
        out = augment_dataset(
            generators.build("em/abt_buy", count=40, seed=5), config
        )
        assert out.meta["augment"] == config.describe()


class TestHarnessIntegration:
    def test_load_splits_augment_key_separates_memo(self):
        from repro.eval.harness import load_splits

        plain = load_splits("em/abt_buy", count=60, seed=0)
        augmented = load_splits(
            "em/abt_buy", count=60, seed=0, augment=AugmentConfig(seed=0)
        )
        assert plain is not augmented
        assert [e.answer for e in plain.test.examples] == [
            e.answer for e in augmented.test.examples
        ]
        # memoised: same call returns the same object
        again = load_splits(
            "em/abt_buy", count=60, seed=0, augment=AugmentConfig(seed=0)
        )
        assert again is augmented
