"""Shared fixtures for the test suite.

Expensive artifacts (pretrained base model, upstream bundle) are
session-scoped; tests must not mutate them in place — clone first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.jellyfish import get_bundle
from repro.core.config import AKBConfig, KnowTransConfig, SKCConfig
from repro.data import generators
from repro.data.splits import split_dataset
from repro.tinylm.model import ModelConfig, ScoringLM
from repro.tinylm.registry import create_base_model


@pytest.fixture(scope="session")
def tiny_model() -> ScoringLM:
    """A small untrained model for unit tests (do not mutate)."""
    return ScoringLM(ModelConfig(name="test-tiny", feature_dim=256, hidden_dim=24, seed=3))


@pytest.fixture()
def fresh_tiny_model() -> ScoringLM:
    """A small untrained model safe to train in a test."""
    return ScoringLM(ModelConfig(name="test-tiny", feature_dim=256, hidden_dim=24, seed=3))


@pytest.fixture(scope="session")
def base_model() -> ScoringLM:
    """The pretrained 7B-analogue base model (session cache)."""
    return create_base_model("mistral-7b", seed=0)


@pytest.fixture(scope="session")
def bundle():
    """A small upstream bundle shared across integration tests."""
    return get_bundle("mistral-7b", seed=0, scale=0.3)


@pytest.fixture(scope="session")
def fast_config() -> KnowTransConfig:
    return KnowTransConfig(
        skc=SKCConfig(finetune_epochs=4, patch_epochs=2),
        akb=AKBConfig(pool_size=3, iterations=1, refinements_per_iteration=1),
    )


@pytest.fixture(scope="session")
def beer_splits():
    dataset = generators.build("ed/beer", count=90, seed=11)
    return split_dataset(dataset, few_shot=20, seed=11)


@pytest.fixture(scope="session")
def abt_splits():
    dataset = generators.build("em/abt_buy", count=90, seed=11)
    return split_dataset(dataset, few_shot=20, seed=11)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(123)
