"""Unit tests for repro.tasks.candidates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Record
from repro.knowledge.rules import CandidateHint, FormatConstraint, Knowledge, VocabConstraint
from repro.tasks import candidates as C

words = st.text(alphabet="abcdefgh", min_size=1, max_size=8)


class TestEditDistance:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("abc", "abcd", 1),
            ("kitten", "sitting", 3),
        ],
    )
    def test_known_distances(self, left, right, expected):
        assert C.edit_distance(left, right) == expected

    def test_limit_early_exit(self):
        assert C.edit_distance("aaaaaaaaaa", "bbbbbbbbbb", limit=3) == 4

    @given(words, words)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert C.edit_distance(a, b) == C.edit_distance(b, a)

    @given(words)
    @settings(max_examples=30, deadline=None)
    def test_identity(self, a):
        assert C.edit_distance(a, a) == 0

    @given(words, words, words)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        limit = 20
        ab = C.edit_distance(a, b, limit)
        bc = C.edit_distance(b, c, limit)
        ac = C.edit_distance(a, c, limit)
        if ab <= limit and bc <= limit and ac <= limit:
            assert ac <= ab + bc


class TestNearestBankEntry:
    def test_exact_match(self):
        assert C.nearest_bank_entry("portland", ("portland", "austin")) == "portland"

    def test_typo_repair(self):
        assert C.nearest_bank_entry("portlnad", ("portland", "austin")) == "portland"

    def test_none_when_too_far(self):
        assert C.nearest_bank_entry("zzzzzz", ("portland",), max_distance=2) is None


class TestSpans:
    def test_text_spans_order_and_dedup(self):
        spans = C.text_spans("red red shoes")
        assert spans.index("red") < spans.index("shoes")
        assert spans.count("red") == 1
        assert "red shoes" in spans

    def test_record_spans_skip_pure_numbers(self):
        record = Record.from_dict({"a": "100", "b": "blue shoes"})
        spans = C.record_spans(record)
        assert "100" not in spans
        assert "blue" in spans and "blue shoes" in spans


class TestImputationCandidates:
    def test_gold_appended_when_absent(self):
        record = Record.from_dict({"name": "x y z", "brand": "nan"})
        pool = C.imputation_candidates(record, "brand", Knowledge.empty(), gold="acme")
        assert "acme" in pool

    def test_known_brand_promotes_bank_members(self):
        record = Record.from_dict(
            {"product_name": "zzz filler samsung galaxy phone", "brand": "nan"}
        )
        knowledge = Knowledge(
            rules=(CandidateHint("known_brand", bank="phone_brands"),)
        )
        pool = C.imputation_candidates(record, "brand", knowledge)
        assert pool[0] == "samsung"
        assert len(pool) > 1  # distractors retained

    def test_title_prefix_promotes_leading_spans(self):
        record = Record.from_dict(
            {"product_name": "acme widget deluxe edition thing", "brand": "nan"}
        )
        knowledge = Knowledge(rules=(CandidateHint("title_prefix"),))
        pool = C.imputation_candidates(record, "brand", knowledge)
        assert pool[0] in ("acme", "acme widget", "widget")

    def test_excludes_target_attribute_text(self):
        record = Record.from_dict({"brand": "leakyvalue", "name": "x y"})
        pool = C.imputation_candidates(record, "brand", Knowledge.empty())
        assert "leakyvalue" not in pool


class TestExtractionCandidates:
    def test_always_includes_null(self):
        pool = C.extraction_candidates("red shoes", "color", Knowledge.empty())
        assert C.NULL_ANSWER in pool

    def test_vocab_constraint_promotes(self):
        knowledge = Knowledge(rules=(VocabConstraint("color", "colors"),))
        pool = C.extraction_candidates(
            "mens waterproof red sneakers", "color", knowledge
        )
        assert pool[0] == "red"

    def test_descriptive_first_drops_brands_for_non_brand(self):
        knowledge = Knowledge(
            rules=(CandidateHint("descriptive_first", bank="grocery_brands"),)
        )
        pool = C.extraction_candidates(
            "folgers vanilla coffee", "flavor", knowledge
        )
        assert "folgers" not in pool

    def test_descriptive_first_keeps_brands_for_brand_query(self):
        knowledge = Knowledge(
            rules=(CandidateHint("descriptive_first", bank="grocery_brands"),)
        )
        pool = C.extraction_candidates(
            "folgers vanilla coffee", "brand", knowledge
        )
        assert "folgers" in pool

    def test_gold_guaranteed_for_training(self):
        pool = C.extraction_candidates("a b", "x", Knowledge.empty(), gold="zq")
        assert "zq" in pool


class TestCorrectionCandidates:
    def test_original_always_included(self):
        record = Record.from_dict({"style": "american ipaa"})
        pool = C.correction_candidates(record, "style", Knowledge.empty())
        assert "american ipaa" in pool

    def test_percent_strip(self):
        record = Record.from_dict({"abv": "0.05%"})
        pool = C.correction_candidates(record, "abv", Knowledge.empty())
        assert "0.05" in pool

    def test_slash_date_to_iso(self):
        record = Record.from_dict({"created": "4/3/15"})
        pool = C.correction_candidates(record, "created", Knowledge.empty())
        assert "2015-04-03" in pool

    def test_slash_date_century_rule(self):
        record = Record.from_dict({"created": "4/3/97"})
        pool = C.correction_candidates(record, "created", Knowledge.empty())
        assert "1997-04-03" in pool

    def test_issn_dash_insertion(self):
        record = Record.from_dict({"issn": "12345678"})
        pool = C.correction_candidates(record, "issn", Knowledge.empty())
        assert "1234-5678" in pool

    def test_vocab_repair_with_constraint(self):
        record = Record.from_dict({"city": "portlnad"})
        knowledge = Knowledge(rules=(VocabConstraint("city", "cities"),))
        pool = C.correction_candidates(record, "city", knowledge)
        assert "portland" in pool

    def test_derivation_for_missing_abbreviation(self):
        record = Record.from_dict(
            {"journal_title": "the lancet", "journal_abbreviation": "nan"}
        )
        pool = C.correction_candidates(record, "journal_abbreviation", Knowledge.empty())
        assert pool[0] == "lancet"  # derivation promoted for missing cells

    def test_derive_hint_promotes_derivation(self):
        record = Record.from_dict(
            {"journal_title": "the lancet", "journal_abbreviation": "lancett"}
        )
        knowledge = Knowledge(rules=(CandidateHint("derive"),))
        pool = C.correction_candidates(record, "journal_abbreviation", knowledge)
        assert pool[0] == "lancet"
