"""Tests for ASCII plotting and multi-seed repetition utilities."""

import pytest

from repro.eval import repeats
from repro.eval.experiments import ExperimentContext, table1_dataset_statistics
from repro.eval.plots import line_plot, sparkline


class TestSparkline:
    def test_length_matches_values(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_monotone_blocks(self):
        blocks = sparkline([1, 2, 3, 4])
        assert list(blocks) == sorted(blocks)


class TestLinePlot:
    def test_contains_axes_and_legend(self):
        text = line_plot("T", [1, 2, 3], {"m": [1.0, 2.0, 3.0]})
        assert text.startswith("T")
        assert "o=m" in text
        assert "+" in text and "|" in text

    def test_y_labels_are_extremes(self):
        text = line_plot("T", [1, 2], {"m": [10.0, 90.0]})
        assert "90.0" in text and "10.0" in text

    def test_multiple_series_get_distinct_markers(self):
        text = line_plot("T", [1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]})
        assert "o=a" in text and "x=b" in text

    def test_empty_data(self):
        assert "(no data)" in line_plot("T", [], {})

    def test_single_point(self):
        text = line_plot("T", [5], {"m": [42.0]})
        assert "o=m" in text


class TestAggregateRows:
    def test_mean_and_std(self):
        runs = [
            [{"dataset": "d", "score": 10.0}],
            [{"dataset": "d", "score": 20.0}],
        ]
        merged = repeats.aggregate_rows(runs)
        assert merged[0]["score"] == "15.00 ± 5.00"

    def test_non_numeric_taken_from_first(self):
        runs = [
            [{"dataset": "d", "note": "x", "score": 1.0}],
            [{"dataset": "d", "note": "y", "score": 3.0}],
        ]
        merged = repeats.aggregate_rows(runs)
        assert merged[0]["note"] == "x"

    def test_empty_runs(self):
        assert repeats.aggregate_rows([]) == []


class TestRepeatExperiment:
    def test_repeats_table1_across_seeds(self):
        ctx = ExperimentContext.quick()
        result = repeats.repeat_experiment(
            table1_dataset_statistics, ctx, seeds=(0, 1)
        )
        assert result["seeds"] == [0, 1]
        assert len(result["runs"]) == 2
        assert "±" in result["text"]

    def test_rejects_series_experiments(self):
        ctx = ExperimentContext.quick()

        def fake_experiment(context):
            return {"series": {}}

        with pytest.raises(ValueError):
            repeats.repeat_experiment(fake_experiment, ctx, seeds=(0,))
