"""The shard coordinator: partitioning, claims, crash recovery, merge."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import obs
from repro.eval import experiments
from repro.shard import (
    ShardSpec,
    cell_name,
    merge_shards,
    read_manifest,
    run_adapt_shard,
)
from repro.store import try_claim

DATASETS = ["t/a", "t/b", "t/c", "t/d", "t/e"]


def _row(dataset_id: str) -> dict:
    # Deterministic fake metric, stable across processes.
    return {"dataset": dataset_id, "score": float(len(dataset_id) + 0.25)}


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_shard_spec_parse():
    spec = ShardSpec.parse("2/4")
    assert (spec.index, spec.total) == (2, 4)
    assert spec.label == "shard-2-of-4"


@pytest.mark.parametrize("bad", ["0/2", "3/2", "2", "a/b", "1/0", "-1/3"])
def test_shard_spec_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        ShardSpec.parse(bad)


def test_partition_is_exact_and_disjoint():
    total = 3
    positions = range(11)
    owned = [
        {p for p in positions if ShardSpec(index=i, total=total).owns(p)}
        for i in range(1, total + 1)
    ]
    assert set().union(*owned) == set(positions)
    for i in range(total):
        for j in range(i + 1, total):
            assert not owned[i] & owned[j]


def test_cell_name_is_filesystem_safe():
    assert cell_name("table2", "em/abt_buy") == "table2__em_abt_buy"


# ----------------------------------------------------------------------
# Claim/compute/merge round trip
# ----------------------------------------------------------------------
def test_two_shards_cover_grid_and_merge_matches_serial(tmp_path):
    grid = tmp_path / "grid"
    for index in (1, 2):
        summary = run_adapt_shard(
            DATASETS, ShardSpec(index=index, total=2), grid, _row
        )
        assert not summary["reclaimed"]
    merged = merge_shards(grid)
    rows = [r for r in merged["rows"] if r["dataset"] in DATASETS]
    assert rows == [_row(d) for d in DATASETS]  # canonical order, exact
    average = merged["rows"][-1]
    assert average["dataset"] == "average"
    assert average["score"] == sum(r["score"] for r in rows) / len(rows)
    assert [s["shard"] for s in merged["shards"]] == [1, 2]


def test_rerun_skips_completed_cells(tmp_path):
    grid = tmp_path / "grid"
    spec = ShardSpec(index=1, total=2)
    first = run_adapt_shard(DATASETS, spec, grid, _row)
    assert len(first["computed"]) == 3  # positions 0, 2, 4
    second = run_adapt_shard(DATASETS, spec, grid, _row)
    assert second["computed"] == []
    assert len(second["skipped"]) == 3


def test_live_claim_is_respected(tmp_path):
    grid = tmp_path / "grid"
    (grid / "claims").mkdir(parents=True)
    # Another live process (us) already claimed the first owned cell.
    import socket

    assert try_claim(
        grid / "claims" / f"{cell_name('adapt', DATASETS[0])}.claim",
        {"pid": os.getpid(), "host": socket.gethostname(), "shard": 1},
    )
    summary = run_adapt_shard(
        DATASETS, ShardSpec(index=1, total=2), grid, _row
    )
    assert DATASETS[0] in summary["skipped"]
    assert DATASETS[0] not in summary["computed"]


def test_merge_incomplete_grid_fails_loudly(tmp_path):
    grid = tmp_path / "grid"
    run_adapt_shard(DATASETS, ShardSpec(index=1, total=2), grid, _row)
    with pytest.raises(ValueError, match="missing 2 cell"):
        merge_shards(grid)


def test_mismatched_grid_dir_is_rejected(tmp_path):
    grid = tmp_path / "grid"
    run_adapt_shard(DATASETS, ShardSpec(index=1, total=2), grid, _row)
    assert read_manifest(grid)["total"] == 2
    with pytest.raises(ValueError, match="refusing to mix"):
        run_adapt_shard(DATASETS, ShardSpec(index=1, total=3), grid, _row)


def test_merge_without_manifest_fails(tmp_path):
    with pytest.raises(FileNotFoundError, match="manifest"):
        merge_shards(tmp_path / "empty")


# ----------------------------------------------------------------------
# Crash safety (the killed-shard satellite)
# ----------------------------------------------------------------------
def _crashing_shard(grid_dir: str) -> None:
    """Run shard 1/2 but hard-die on its second owned cell."""
    state = {"cells": 0}

    def compute(dataset_id: str) -> dict:
        state["cells"] += 1
        if state["cells"] == 2:
            os._exit(9)  # simulate a kill mid-grid, claim left behind
        return _row(dataset_id)

    run_adapt_shard(DATASETS, ShardSpec(index=1, total=2), grid_dir, compute)


def test_killed_shard_is_reclaimed_on_rerun(tmp_path):
    grid = tmp_path / "grid"
    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(target=_crashing_shard, args=(str(grid),))
    victim.start()
    victim.join()
    assert victim.exitcode == 9
    # The victim completed its first cell, died holding the claim of its
    # second, and never reached its third.
    done = {p.name for p in (grid / "cells").glob("*.json")}
    assert len(done) == 1
    orphaned = {p.name for p in (grid / "claims").glob("*.claim")}
    assert len(orphaned) == 2  # completed cell's claim + the orphan
    # The healthy shard is unaffected.
    run_adapt_shard(DATASETS, ShardSpec(index=2, total=2), grid, _row)
    with pytest.raises(ValueError, match="missing"):
        merge_shards(grid)
    # Re-running the killed shard reclaims exactly the orphaned cell and
    # completes the remainder; nothing done is recomputed.
    rerun = run_adapt_shard(DATASETS, ShardSpec(index=1, total=2), grid, _row)
    assert len(rerun["skipped"]) == 1  # the cell the victim finished
    assert len(rerun["computed"]) == 2
    assert len(rerun["reclaimed"]) == 1  # the orphaned claim was taken over
    merged = merge_shards(grid)
    rows = [r for r in merged["rows"] if r["dataset"] in DATASETS]
    assert rows == [_row(d) for d in DATASETS]  # identical to a clean run


# ----------------------------------------------------------------------
# Grid registry plumbing
# ----------------------------------------------------------------------
def test_assemble_grid_reorders_and_validates():
    spec = experiments.GRIDS["table6"]
    fake_rows = {
        dataset_id: {
            "dataset": dataset_id,
            **{column: float(i) for i, column in enumerate(spec.columns)},
        }
        for dataset_id in spec.dataset_ids
    }
    # Feed the cells in reverse order; assembly must restore canonical.
    shuffled = dict(reversed(list(fake_rows.items())))
    result = experiments.assemble_grid("table6", shuffled)
    assert [r["dataset"] for r in result["rows"][:-1]] == list(
        spec.dataset_ids
    )
    assert result["rows"][-1]["dataset"] == "average"
    assert spec.title in result["text"]
    incomplete = dict(fake_rows)
    incomplete.pop(spec.dataset_ids[0])
    with pytest.raises(ValueError, match="missing"):
        experiments.assemble_grid("table6", incomplete)


def test_grids_registry_covers_row_experiments():
    assert set(experiments.GRIDS) == {
        "table2", "table4", "table5", "table6", "fig5", "fig6"
    }
    for spec in experiments.GRIDS.values():
        assert spec.dataset_ids
        assert spec.columns
        assert callable(spec.row_fn)
        assert callable(spec.prewarm)


# ----------------------------------------------------------------------
# Cross-tree trace merge
# ----------------------------------------------------------------------
def test_merge_trace_rows_namespaces_ids_and_sums_metrics():
    def shard_rows(pid, start):
        return [
            {
                "type": "trace", "version": obs.TRACE_SCHEMA_VERSION,
                "pid": pid, "started_at": start, "argv": ["repro", str(pid)],
            },
            {
                "type": "span", "id": f"{pid}-1", "parent": None,
                "name": "cli.experiment", "start": start, "end": start + 1.0,
            },
            {
                "type": "span", "id": f"{pid}-2", "parent": f"{pid}-1",
                "name": "shard.cell", "start": start, "end": start + 0.5,
            },
            {
                "type": "counter",
                "name": "shard.cells_computed", "attrs": {}, "value": 2,
            },
            {
                "type": "histogram",
                "name": "trainer.step_loss", "attrs": {},
                "count": 3, "total": 1.5, "min": 0.25, "max": 0.75,
            },
        ]

    # Both shards report pid 1234: ids collide across process trees.
    merged = obs.merge_trace_rows(
        [shard_rows(1234, 10.0), shard_rows(1234, 20.0)]
    )
    header = merged[0]
    assert header["merged_shards"] == 2
    assert header["started_at"] == 10.0
    assert header["shard_argv"] == [["repro", "1234"], ["repro", "1234"]]
    spans = [row for row in merged if row["type"] == "span"]
    assert len(spans) == 4
    assert len({span["id"] for span in spans}) == 4  # no collisions
    child = next(s for s in spans if s["name"] == "shard.cell" and
                 s["id"].startswith("s0:"))
    assert child["parent"] == "s0:1234-1"
    counters = [row for row in merged if row["type"] == "counter"]
    assert len(counters) == 1
    assert counters[0]["value"] == 4
    histogram = next(row for row in merged if row["type"] == "histogram")
    assert histogram["count"] == 6
    assert histogram["total"] == 3.0
    assert (histogram["min"], histogram["max"]) == (0.25, 0.75)
