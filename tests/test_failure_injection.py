"""Failure-injection tests: graceful behaviour at the edges.

A library is judged by what happens when a component misbehaves: a
scorer that throws, a knowledge writer that returns nothing, corrupted
checkpoints, degenerate candidate pools.  These tests pin the intended
behaviour for each failure.
"""

import json

import numpy as np
import pytest

from repro.core.akb.optimizer import search_knowledge
from repro.core.config import AKBConfig
from repro.data import generators
from repro.data.schema import Example, Record
from repro.knowledge.rules import Knowledge
from repro.knowledge.seed import seed_knowledge
from repro.llm.mockgpt import MockGPT
from repro.tasks.base import get_task
from repro.tinylm import serialization as ser
from repro.tinylm.model import ModelConfig, ScoringLM
from repro.tinylm.trainer import TrainConfig, Trainer, TrainingExample


@pytest.fixture(scope="module")
def beer_dataset():
    return generators.build("ed/beer", count=40, seed=23)


class _SilentGPT(MockGPT):
    """A knowledge writer that never proposes anything."""

    def generate_knowledge(self, task, examples, seed_knowledge, count=5):
        return []

    def feedback(self, task, knowledge, errors):
        from repro.llm.mockgpt import Feedback

        return Feedback(text="nothing to say")

    def refine(self, task, knowledge, errors, feedback, trajectory=()):
        return knowledge


class TestAKBFailures:
    def test_silent_gpt_falls_back_to_seed(self, tiny_model, beer_dataset):
        result = search_knowledge(
            tiny_model,
            beer_dataset,
            beer_dataset.examples[:10],
            mockgpt=_SilentGPT(seed=1),
            config=AKBConfig(pool_size=3, iterations=2),
        )
        assert result.knowledge == seed_knowledge("ed")

    def test_raising_scorer_propagates(self, tiny_model, beer_dataset):
        def scorer(candidate):
            raise RuntimeError("validation backend down")

        with pytest.raises(RuntimeError, match="validation backend down"):
            search_knowledge(
                tiny_model,
                beer_dataset,
                beer_dataset.examples[:10],
                mockgpt=MockGPT(seed=1),
                config=AKBConfig(pool_size=2, iterations=1),
                scorer=scorer,
            )

    def test_constant_scorer_terminates(self, tiny_model, beer_dataset):
        """A flat objective must hit the patience stop, not loop."""
        from repro.llm.mockgpt import ErrorCase

        errors = [ErrorCase(beer_dataset.examples[0], "no")]
        result = search_knowledge(
            tiny_model,
            beer_dataset,
            beer_dataset.examples[:10],
            mockgpt=MockGPT(seed=1),
            config=AKBConfig(pool_size=2, iterations=50, patience=1),
            scorer=lambda candidate: (50.0, list(errors)),
        )
        assert result.iterations_run <= 4


class TestCheckpointFailures:
    def test_model_shape_mismatch_rejected(self, tmp_path, tiny_model):
        path = tmp_path / "model.npz"
        ser.save_model(tiny_model, path)
        # Corrupt: rewrite one weight with a wrong shape.
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["weight::encoder.W1"] = np.zeros((2, 2))
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="shape mismatch"):
            ser.load_model(path)

    def test_unknown_weight_rejected(self, tmp_path, tiny_model):
        path = tmp_path / "model.npz"
        ser.save_model(tiny_model, path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["weight::mystery.W"] = np.zeros(3)
        np.savez(path, **payload)
        with pytest.raises(KeyError, match="mystery"):
            ser.load_model(path)

    def test_malformed_knowledge_json(self, tmp_path):
        path = tmp_path / "knowledge.json"
        path.write_text(json.dumps({"rules": [{"kind": "NotARule"}]}))
        with pytest.raises(KeyError):
            ser.load_knowledge(path)


class TestDegenerateInputs:
    def test_single_candidate_prediction(self, tiny_model):
        assert tiny_model.predict("prompt", ["only"]) == 0

    def test_single_candidate_training_is_stable(self):
        model = ScoringLM(ModelConfig(name="deg", feature_dim=64, hidden_dim=8, seed=1))
        examples = [TrainingExample("p", ("only",), 0)] * 4
        report = Trainer(model, TrainConfig(epochs=1, seed=0)).fit(examples)
        assert np.isfinite(report.final_loss)

    def test_evaluate_with_unreachable_gold(self, tiny_model):
        """Gold outside the candidate pool scores as an error, not a crash."""
        task = get_task("di")
        record = Record.from_dict({"name": "x y", "brand": "nan"})
        example = Example(
            task="di",
            inputs={"record": record, "attribute": "brand"},
            answer="unreachable-gold-value",
        )
        score = task.evaluate(tiny_model, [example], Knowledge.empty())
        assert score == 0.0

    def test_zero_learning_rate_freezes_model(self):
        model = ScoringLM(ModelConfig(name="deg", feature_dim=64, hidden_dim=8, seed=1))
        before = model.weights["encoder.W1"].copy()
        examples = [TrainingExample("p q r", ("a", "b"), 0)] * 4
        Trainer(model, TrainConfig(epochs=2, learning_rate=0.0, seed=0)).fit(examples)
        np.testing.assert_array_equal(model.weights["encoder.W1"], before)

    def test_prompt_with_only_symbols(self, tiny_model):
        assert tiny_model.predict("%%% $$$ @@@", ["a", "b"]) in (0, 1)

    def test_empty_prompt(self, tiny_model):
        assert tiny_model.predict("", ["a", "b"]) in (0, 1)
