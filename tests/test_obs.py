"""The observability layer: spans, metrics, fork merging, reporting.

The fork tests force real worker processes (``clamp=False``) so the
cross-process path — ``worker_reset`` in the child, snapshot pickling,
``merge_worker`` re-parenting in the parent — is exercised on actual
forks, and the aggregated serial vs parallel traces are compared for
exact equality, not shape.
"""

from __future__ import annotations

import io
import json
import warnings

import pytest

from repro import cli, obs
from repro import store as artifact_store
from repro.core.knowtrans import KnowTrans
from repro.eval.harness import evaluate_method
from repro.perf import Gate
from repro.reporting import Console, jsonable
from repro.runtime import WorkerPool


def _traced_task(x):
    """Module-level (picklable) worker body that emits spans + metrics."""
    with obs.span("test.task", parity=x % 2):
        obs.counter("test.calls")
        obs.histogram("test.value", float(x))
    return x * x


# ----------------------------------------------------------------------
# Disabled tracing is a true no-op
# ----------------------------------------------------------------------
def test_disabled_tracing_no_events_no_files(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with obs.using_tracer(None):
        assert not obs.enabled()
        # span() returns the shared no-op singleton — no allocation.
        assert obs.span("a") is obs.span("b", k=1)
        with obs.span("test.root"):
            obs.counter("test.calls")
            obs.gauge("test.g", 1.0)
            obs.histogram("test.h", 2.0)
        assert WorkerPool(jobs=1).map(_traced_task, [1, 2]) == [1, 4]
        assert obs.finish() is None
        assert obs.current_span_id() is None
    assert list(tmp_path.iterdir()) == []


def test_traced_decorator_records_only_when_enabled():
    @obs.traced("test.fn", tagged=True)
    def fn():
        return 7

    assert fn() == 7  # tracing off: plain call
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        assert fn() == 7
    (event,) = tracer.spans
    assert event["name"] == "test.fn"
    assert event["attrs"] == {"tagged": True}


# ----------------------------------------------------------------------
# Span semantics
# ----------------------------------------------------------------------
def test_span_nesting_records_parentage():
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert obs.current_span_id() == inner.id
            assert obs.current_span_id() == outer.id
    by_name = {event["name"]: event for event in tracer.spans}
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["outer"]["parent"] is None
    assert by_name["inner"]["ok"] and by_name["outer"]["ok"]
    assert by_name["outer"]["elapsed"] >= by_name["inner"]["elapsed"]


def test_span_records_exception_as_not_ok():
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
    (event,) = tracer.spans
    assert event["ok"] is False


def test_metric_attrs_key_separately():
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        obs.counter("hits", kind="a")
        obs.counter("hits", 2, kind="a")
        obs.counter("hits", kind="b")
    assert tracer.counters[("hits", (("kind", "a"),))] == 3
    assert tracer.counters[("hits", (("kind", "b"),))] == 1


# ----------------------------------------------------------------------
# Fork-aware merging: serial and parallel traces aggregate identically
# ----------------------------------------------------------------------
def test_worker_pool_merges_spans_and_metrics():
    items = list(range(8))

    serial = obs.Tracer()
    with obs.using_tracer(serial):
        serial_out = WorkerPool(jobs=1).map(_traced_task, items)
    parallel = obs.Tracer()
    with obs.using_tracer(parallel):
        parallel_out = WorkerPool(jobs=4, clamp=False).map(
            _traced_task, items
        )

    assert serial_out == parallel_out == [x * x for x in items]
    # Aggregated metrics are exactly equal, not merely similar.
    assert serial.counters == parallel.counters
    assert serial.histograms == parallel.histograms
    assert sorted(s["name"] for s in serial.spans) == sorted(
        s["name"] for s in parallel.spans
    )
    # Every task span is parented under the one runtime.map span, in
    # both runtimes — worker roots are re-parented on merge.
    for tracer in (serial, parallel):
        (map_span,) = [
            s for s in tracer.spans if s["name"] == "runtime.map"
        ]
        tasks = [s for s in tracer.spans if s["name"] == "test.task"]
        assert len(tasks) == len(items)
        assert {s["parent"] for s in tasks} == {map_span["id"]}
    # The parallel map actually forked: child pids differ from the
    # parent's.
    parent_pid = parallel.pid
    child_pids = {
        s["pid"] for s in parallel.spans if s["name"] == "test.task"
    }
    assert child_pids - {parent_pid}


# ----------------------------------------------------------------------
# Trace file round-trip: write → read → rollup → render
# ----------------------------------------------------------------------
def test_trace_roundtrip_and_rollup(tmp_path):
    path = tmp_path / "run.jsonl"
    tracer = obs.Tracer(path)
    with obs.using_tracer(tracer):
        with obs.span("root"):
            for value in (1.0, 3.0):
                with obs.span("child"):
                    obs.histogram("work.size", value)
            obs.counter("work.items", 2)
            obs.gauge("work.lambda", 0.5, patch="p0")
    assert tracer.write() == path

    rows = obs.read_trace(path)
    assert rows[0]["type"] == "trace"
    assert rows[0]["version"] == obs.TRACE_SCHEMA_VERSION
    summary = obs.rollup(rows)
    assert summary["spans"] == 3
    assert summary["counters"]["work.items"] == 2
    hist = summary["histograms"]["work.size"]
    assert hist["count"] == 2 and hist["min"] == 1.0 and hist["max"] == 3.0
    assert summary["gauges"]["work.lambda{patch=p0}"]["values"] == [0.5]
    (root,) = summary["tree"]
    assert root["name"] == "root" and root["count"] == 1
    (child,) = root["children"]
    assert child["name"] == "child" and child["count"] == 2

    text = obs.render_trace(summary)
    for needle in ("root", "child", "work.items", "work.lambda"):
        assert needle in text


def test_configure_finish_cycle(tmp_path):
    path = tmp_path / "cli.jsonl"
    previous = obs.active()
    try:
        obs.configure(path)
        with obs.span("only"):
            pass
        assert obs.finish() == path
        assert obs.active() is None
        assert path.exists()
    finally:
        obs.configure(None)
        obs._TRACER = previous


def test_resolve_trace_path(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "env.jsonl")
    assert obs.resolve_trace_path(None) == "env.jsonl"
    assert obs.resolve_trace_path("flag.jsonl") == "flag.jsonl"
    monkeypatch.setenv("REPRO_TRACE", "   ")
    assert obs.resolve_trace_path(None) is None


# ----------------------------------------------------------------------
# A traced adaptation covers every instrumented layer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_adapt(tmp_path_factory, bundle, fast_config, beer_splits):
    tmp = tmp_path_factory.mktemp("obs")
    tracer = obs.Tracer(tmp / "adapt.jsonl")
    store = artifact_store.ArtifactStore(tmp / "store")
    with obs.using_tracer(tracer), artifact_store.using_store(store):
        adapted = KnowTrans(bundle, config=fast_config).fit(beer_splits)
        evaluate_method(
            adapted, beer_splits.test.examples, adapted.task.name
        )
    return tracer, adapted


def test_traced_adapt_covers_all_layers(traced_adapt):
    tracer, _ = traced_adapt
    span_names = {event["name"] for event in tracer.spans}
    counter_names = {name for name, _ in tracer.counters}
    gauge_names = {name for name, _ in tracer.gauges}
    histogram_names = {name for name, _ in tracer.histograms}

    assert "knowtrans.fit" in span_names
    # 1. tinylm trainer
    assert "trainer.fit" in span_names
    assert "trainer.step_loss" in histogram_names
    # 2. inference engine
    assert {"model.batches", "model.examples"} <= counter_names
    # 3. artifact store
    assert any(name.startswith("store.") for name in counter_names)
    # 4. SKC stages (fine-tune span + fusion λ trajectory)
    assert "skc.finetune" in span_names
    assert "skc.lambda" in gauge_names
    # 5. AKB optimiser
    assert {"akb.search", "akb.round"} <= span_names
    assert "akb.candidates_scored" in counter_names
    assert {"akb.best_score", "akb.pool_size"} <= gauge_names
    # 6. eval harness
    assert "harness.evaluate" in span_names


def test_adapted_model_evaluate_is_deprecated_shim(
    traced_adapt, beer_splits
):
    _, adapted = traced_adapt
    examples = beer_splits.test.examples
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        old = adapted.evaluate(examples)
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )
    assert old == evaluate_method(adapted, examples, adapted.task.name)


# ----------------------------------------------------------------------
# CLI: the trace subcommand and console modes
# ----------------------------------------------------------------------
def _write_sample_trace(path):
    tracer = obs.Tracer(path)
    with obs.using_tracer(tracer):
        with obs.span("sample.root"):
            obs.counter("sample.items", 3)
    tracer.write()


def test_cli_trace_renders_and_gates(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_sample_trace(path)
    assert cli.main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "sample.root" in out and "sample.items" in out

    assert cli.main(["trace", str(path), "--min-spans", "99"]) == 1
    captured = capsys.readouterr()
    assert "fewer than --min-spans" in captured.err


def test_cli_trace_json_payload(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_sample_trace(path)
    assert cli.main(["trace", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rollup"]["spans"] == 1
    assert payload["path"] == str(path)


def test_cli_list_modes(capsys):
    assert cli.main(["list"]) == 0
    text_out = capsys.readouterr().out
    assert text_out.strip()

    assert cli.main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["datasets"]

    assert cli.main(["list", "--quiet"]) == 0
    assert capsys.readouterr().out


def test_console_modes():
    for mode, expect_info, expect_result in (
        ("text", True, True),
        ("quiet", False, True),
        ("json", False, False),
    ):
        out, err = io.StringIO(), io.StringIO()
        console = Console(mode, stream=out, error_stream=err)
        console.info("progress")
        console.result("answer")
        console.error("diag")
        console.set("score", 0.5)
        console.close()
        console.close()  # idempotent
        text = out.getvalue()
        assert ("progress" in text) == expect_info
        assert ("answer" in text) == expect_result
        assert err.getvalue() == "diag\n"
        if mode == "json":
            assert json.loads(text) == {"score": 0.5}


def test_jsonable_coerces_payload_types(tmp_path):
    import numpy as np

    assert jsonable(np.float64(0.5)) == 0.5
    assert jsonable(np.arange(3)) == [0, 1, 2]
    assert jsonable({1: {tmp_path}}) == {"1": [str(tmp_path)]}


# ----------------------------------------------------------------------
# The shared perf-gate protocol
# ----------------------------------------------------------------------
def test_gate_writes_and_checks(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_PRESET", raising=False)
    gate = Gate("demo", {"speedup": 4.0}, min_speedup=3.0, root=tmp_path)
    assert gate.preset == "paper"
    gate.write(speedup=4.0, extra=1)
    data = json.loads((tmp_path / "BENCH_demo.json").read_text())
    assert data == {"preset": "paper", "min_speedup": 3.0, "speedup": 4.0}
    (line,) = gate.trajectory_path.read_text().splitlines()
    assert json.loads(line) == {
        "bench": "demo", "preset": "paper", "speedup": 4.0, "extra": 1,
    }
    gate.require(True, "fine")
    gate.require_speedup()
    gate.check()  # no failures collected


def test_gate_collects_all_failures(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_PRESET", "quick")
    gate = Gate("demo", {"speedup": 1.5}, min_speedup=3.0, root=tmp_path)
    assert gate.preset == "quick"
    gate.require(False, "identity diverged")
    gate.require_speedup()
    with pytest.raises(AssertionError) as excinfo:
        gate.check()
    message = str(excinfo.value)
    assert "demo gate failed" in message
    assert "identity diverged" in message and "1.50x" in message
    # write() never ran — failing assertions must not block artifacts
    # when the gate author writes first, but nothing is written
    # implicitly either.
    assert not (tmp_path / "BENCH_demo.json").exists()
