"""Workload-surface tests: Task protocol, scoring parity, generator registry.

Pins the api-redesign invariants:

* the registry ``score_predictions`` route produces the exact same
  numbers as the legacy name-dispatch ``metrics.score`` for all seven
  discriminative tasks (bit-identical preservation);
* every generator — the 13 paper datasets plus the QA workloads —
  round-trips through :func:`repro.data.generators.get_generator`;
* the QA task family resolves pools from dataset meta and the
  per-example fallback, and the training-example contract errors are
  descriptive.
"""

import pytest

from repro.data import generators
from repro.data.generators import (
    GeneratorSpec,
    generator_names,
    get_generator,
    register_generator,
)
from repro.data.schema import Dataset, Example
from repro.knowledge.rules import Knowledge
from repro.tasks import metrics
from repro.tasks.base import Task, get_task, task_names
from repro.tinylm.model import ModelConfig, ScoringLM

#: One representative dataset per discriminative task.
RANK_DATASETS = {
    "ed": "ed/flights",
    "di": "di/flipkart",
    "sm": "sm/cms",
    "em": "em/abt_buy",
    "cta": "cta/sotab",
    "ave": "ave/ae110k",
    "dc": "dc/rayyan",
}


class TestScoringParity:
    """The registry score route matches the legacy name dispatch exactly."""

    @pytest.mark.parametrize("task_name", sorted(RANK_DATASETS))
    def test_registry_route_matches_legacy_metric(self, task_name):
        dataset = generators.build(RANK_DATASETS[task_name], count=60, seed=0)
        task = get_task(task_name)
        model = ScoringLM(ModelConfig(name=f"parity-{task_name}", seed=0))
        knowledge = Knowledge()
        examples = dataset.examples[:40]
        golds = [ex.answer for ex in examples]
        preds = task.predict_batch(model, examples, knowledge, dataset)

        via_registry = metrics.score_predictions(task_name, golds, preds, examples)

        if task_name == "dc":
            originals = [
                ex.inputs["record"].get(ex.inputs["attribute"]) for ex in examples
            ]
            legacy = metrics.repair_f1(golds, preds, originals)
        else:
            legacy = metrics.score(task_name, golds, preds)
        assert via_registry == legacy

    @pytest.mark.parametrize("task_name", sorted(RANK_DATASETS))
    def test_evaluate_matches_score_predictions(self, task_name):
        dataset = generators.build(RANK_DATASETS[task_name], count=60, seed=1)
        task = get_task(task_name)
        model = ScoringLM(ModelConfig(name=f"parity2-{task_name}", seed=1))
        knowledge = Knowledge()
        examples = dataset.examples[:30]
        golds = [ex.answer for ex in examples]
        preds = task.predict_batch(model, examples, knowledge, dataset)
        assert task.evaluate(model, examples, knowledge, dataset) == (
            metrics.score_predictions(task_name, golds, preds, examples)
        )

    def test_dc_score_requires_examples(self):
        with pytest.raises(ValueError, match="examples"):
            get_task("dc").score(["a"], ["b"], None)

    def test_qa_score_normalizes(self):
        assert get_task("qa").score(["The Beatles"], ["beatles!"]) == 100.0


class TestGeneratorRegistry:
    def test_fifteen_generators(self):
        names = generator_names()
        assert len(names) == 15
        assert set(generators.downstream_ids()) < set(names)
        assert {"qa/products", "qa/beers"} < set(names)

    @pytest.mark.parametrize("name", sorted(generator_names()))
    def test_round_trip_matches_build(self, name):
        spec = get_generator(name)
        assert isinstance(spec, GeneratorSpec)
        assert spec.name == name
        assert spec.task == name.split("/")[0]
        via_spec = spec.generate(count=30, seed=0)
        via_build = generators.build(name, count=30, seed=0)
        assert [e.inputs for e in via_spec.examples] == [
            e.inputs for e in via_build.examples
        ]
        assert [e.answer for e in via_spec.examples] == [
            e.answer for e in via_build.examples
        ]

    def test_default_count_from_base_and_scale(self):
        spec = get_generator("em/abt_buy")
        assert len(spec.generate(seed=0)) == spec.base_count
        assert len(spec.generate(seed=0, scale=0.5)) == round(spec.base_count * 0.5)

    def test_metadata_filters(self):
        assert generator_names(task="qa") == ["qa/beers", "qa/products"]
        assert "qa/products" in generator_names(scale="large")
        assert "em/abt_buy" not in generator_names(scale="large")
        assert set(generator_names(language="en")) == set(generator_names())

    def test_unknown_generator_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            get_generator("qa/nonexistent")

    def test_register_validates(self):
        build = lambda count, seed: None  # noqa: E731
        with pytest.raises(ValueError):
            register_generator(
                "noslash", build, task="qa", base_count=10, language="en"
            )
        with pytest.raises(ValueError):
            register_generator(
                "qa/bad-scale",
                build,
                task="qa",
                base_count=10,
                language="en",
                scale="huge",
            )
        with pytest.raises(ValueError):
            register_generator(
                "qa/bad-count", build, task="qa", base_count=0, language="en"
            )

    def test_paper_order_unchanged(self):
        assert generators.downstream_ids() == generators.PAPER_ORDER
        assert len(generators.PAPER_ORDER) == 13
        assert generators.PAPER_ORDER[0] == "ed/flights"


class TestAnswerModes:
    def test_eight_tasks_total(self):
        assert len(task_names()) == 8

    def test_rank_mode_is_the_paper_seven(self):
        assert task_names(mode="rank") == sorted(RANK_DATASETS)

    def test_generate_mode(self):
        assert task_names(mode="generate") == ["qa"]

    def test_all_registered_generators_target_known_tasks(self):
        known = set(task_names())
        for name in generator_names():
            assert get_generator(name).task in known


class TestTableQATask:
    def test_pool_from_dataset_meta(self):
        dataset = generators.build("qa/beers", count=60, seed=0)
        task = get_task("qa")
        example = dataset.examples[0]
        pool = task.candidates(example, Knowledge(), dataset)
        attribute = example.inputs["attribute"]
        assert pool == tuple(dataset.meta["answer_pools"][attribute]) or (
            example.answer in pool
        )
        assert example.answer in pool

    def test_pool_fallback_without_dataset(self):
        dataset = generators.build("qa/beers", count=60, seed=0)
        task = get_task("qa")
        example = dataset.examples[0]
        pool = task.candidates(example, Knowledge(), None)
        assert example.answer in pool
        assert len(pool) > 1

    def test_pool_missing_is_an_error(self):
        task = get_task("qa")
        bare = Example(
            task="qa",
            inputs={
                "record": generators.build("qa/beers", count=40, seed=0)
                .examples[0]
                .inputs["record"],
                "attribute": "style",
                "entity": "x",
            },
            answer="ipa",
            meta={},
        )
        with pytest.raises(ValueError):
            task.candidates(bare, Knowledge(), None)

    def test_pools_are_large(self):
        dataset = generators.build("qa/products", count=400, seed=0)
        task = get_task("qa")
        sizes = [
            len(task.candidates(ex, Knowledge(), dataset))
            for ex in dataset.examples[:50]
        ]
        assert sum(sizes) / len(sizes) >= 24  # past the discriminative cap

    def test_training_example_works_dataset_free(self):
        dataset = generators.build("qa/beers", count=40, seed=0)
        task = get_task("qa")
        te = task.training_example(dataset.examples[0], Knowledge())
        assert te.candidates[te.target] == dataset.examples[0].answer


class TestTrainingExampleContract:
    def test_missing_gold_error_is_descriptive(self):
        class Narrow(Task):
            name = "narrow"
            metric = "accuracy"

            def prompt(self, example, knowledge):
                return "prompt"

            def candidates(self, example, knowledge, dataset=None, gold=None):
                return ("yes", "no")

        example = Example(
            task="narrow", inputs={}, answer="maybe", meta={"id": "narrow/7"}
        )
        dataset = Dataset(
            name="narrow/test", task="narrow", examples=(example,),
            label_set=("yes", "no"), latent_rules=(),
        )
        with pytest.raises(ValueError) as err:
            Narrow().training_example(example, Knowledge(), dataset)
        message = str(err.value)
        assert "narrow" in message
        assert "narrow/test" in message
        assert "narrow/7" in message
        assert "'maybe'" in message

    def test_missing_gold_error_without_dataset(self):
        class Narrow(Task):
            name = "narrow"

            def prompt(self, example, knowledge):
                return "prompt"

            def candidates(self, example, knowledge, dataset=None, gold=None):
                return ("yes", "no")

        example = Example(task="narrow", inputs={}, answer="maybe", meta={})
        with pytest.raises(ValueError, match="<none>"):
            Narrow().training_example(example, Knowledge())
