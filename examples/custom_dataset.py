"""Adopting the library on your own data.

The benchmark datasets are synthetic, but adaptation works on any data
you can express as rows.  This example builds a small entity-matching
dataset from plain Python dicts (a product feed deduplication task),
round-trips it through JSON Lines, and adapts a DP-LLM to it.

Run:  python examples/custom_dataset.py
"""

import pathlib
import tempfile

from repro import KnowTrans, KnowTransConfig, get_bundle
from repro.data import io
from repro.data.splits import split_dataset
from repro.eval.harness import evaluate_method


def build_feed():
    """A toy product feed with duplicates under different renderings."""
    products = [
        ("acme turbo blender tb-900", "acme", "tb-900", "89.99"),
        ("acme turbo blender 900 series tb-900", "acme", "tb-900", "84.50"),
        ("acme compact blender tb-400", "acme", "tb-400", "49.99"),
        ("brewmaster coffee grinder cg-12", "brewmaster", "cg-12", "39.00"),
        ("brewmaster grinder cg-12 steel", "brewmaster", "cg-12", "41.25"),
        ("brewmaster coffee grinder cg-21", "brewmaster", "cg-21", "44.00"),
    ]
    pairs = []
    for i, (title_a, brand_a, model_a, price_a) in enumerate(products):
        for title_b, brand_b, model_b, price_b in products[i + 1 :]:
            pairs.append(
                (
                    {"title": title_a, "brand": brand_a, "price": price_a},
                    {"title": title_b, "brand": brand_b, "price": price_b},
                    model_a == model_b,
                )
            )
    # Repeat with fresh price noise so a few-shot split is possible.
    pairs = pairs * 6
    return io.matching_dataset("product-feed", pairs)


def main() -> None:
    dataset = build_feed()
    print(f"built {len(dataset)} pairs "
          f"({dataset.positive_count()} positives)")

    # Round-trip through JSONL — the on-disk interchange format.
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "feed.jsonl"
        io.save_jsonl(dataset, path)
        dataset = io.load_jsonl(path)
        print(f"round-tripped through {path.name}")

    splits = split_dataset(dataset, few_shot=20, seed=1)
    bundle = get_bundle("mistral-7b", seed=0, scale=0.6)
    adapted = KnowTrans(bundle, config=KnowTransConfig.fast()).fit(splits)
    print(f"test F1 on the custom feed: {evaluate_method(adapted, splits.test.examples, splits.task):.1f}")
    print("searched knowledge:")
    for rule in adapted.knowledge.rules:
        print(f"  - {rule.render()}")


if __name__ == "__main__":
    main()
