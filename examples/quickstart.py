"""Quickstart: adapt a DP-LLM to a novel dataset with 20 labeled examples.

Builds the upstream pipeline (pretrained base model → multi-task
upstream DP-LLM → knowledge patches), then runs the full KnowTrans
adaptation (SKC fine-tuning + AKB knowledge search) on the Beer error
detection dataset and compares against plain few-shot fine-tuning.

Run:  python examples/quickstart.py
"""

from repro import KnowTrans, KnowTransConfig, get_bundle, load_splits
from repro.eval.harness import evaluate_method

def main() -> None:
    print("1. building the upstream DP-LLM (pretraining + multi-task SFT)...")
    bundle = get_bundle("mistral-7b", seed=0, scale=0.6)
    print(f"   upstream datasets: {[d.name for d in bundle.upstream_datasets]}")

    print("2. extracting knowledge patches (one LoRA per upstream dataset)...")
    patches = bundle.patches
    print(f"   {len(patches)} patches, e.g. {patches[0].name!r} "
          f"({patches[0].num_parameters()} params each)")

    print("3. loading the novel downstream dataset (Beer error detection)...")
    splits = load_splits("ed/beer", count=200, seed=7)
    print(f"   few-shot: {len(splits.few_shot.examples)} examples, "
          f"test: {len(splits.test.examples)} examples")

    print("4. adapting with KnowTrans (SKC + AKB)...")
    config = KnowTransConfig.fast()
    adapted = KnowTrans(bundle, config=config).fit(splits)
    knowtrans_score = evaluate_method(adapted, splits.test.examples, splits.task)

    print("5. baseline: plain few-shot LoRA fine-tuning of the backbone...")
    plain = KnowTrans(bundle, config=config, use_skc=False, use_akb=False).fit(splits)
    plain_score = evaluate_method(plain, splits.test.examples, splits.task)

    print()
    print(f"   Jellyfish few-shot F1 : {plain_score:5.1f}")
    print(f"   KnowTrans F1          : {knowtrans_score:5.1f}")
    print()
    print("   searched dataset knowledge:")
    for rule in adapted.knowledge.rules:
        print(f"     - {rule.render()}")
    top = sorted(adapted.fusion_weights.items(), key=lambda kv: -kv[1])[:3]
    print("   most-selected upstream patches (λ):")
    for name, weight in top:
        print(f"     - {name}: {weight:.3f}")


if __name__ == "__main__":
    main()
