"""Profile a dirty dataset before adapting to it.

Practitioners look at the data first.  The profiler reports per
attribute missing rates, distinct counts, the dominant format validator
and a covering vocabulary bank — a human-readable preview of exactly
the evidence the AKB rule-induction engine will reason over.

Run:  python examples/dataset_profiling.py
"""

from repro.data import generators
from repro.data.profiling import profile_dataset
from repro.llm.induction import induce


def main() -> None:
    for dataset_id in ("ed/beer", "ed/rayyan", "di/phone"):
        dataset = generators.build(dataset_id, count=150, seed=4)
        profile = profile_dataset(dataset)
        print(profile.render())
        print()

    print("the same evidence, as induced knowledge rules (ed/beer, 20 shots):")
    dataset = generators.build("ed/beer", count=150, seed=4)
    for scored in sorted(
        induce("ed", dataset.examples[:20]), key=lambda s: -s.confidence
    ):
        print(f"  {scored.confidence:.2f}  {scored.rule.render()}")


if __name__ == "__main__":
    main()
