"""Entity matching across two marketplaces with knowledge augmentation.

The scenario from the paper's introduction (Fig. 1): Walmart-Amazon
offers where model numbers and capacities decide matches, descriptions
are frequently NaN, and prices differ between stores.  The example
shows how the AKB-searched knowledge turns those conventions into
derived comparison markers, and inspects individual predictions.

Run:  python examples/entity_matching_pipeline.py
"""

from repro import KnowTrans, KnowTransConfig, get_bundle, load_splits
from repro.eval.harness import evaluate_method
from repro.knowledge.apply import pair_markers
from repro.tasks.base import get_task


def main() -> None:
    bundle = get_bundle("mistral-7b", seed=0, scale=0.6)
    splits = load_splits("em/walmart_amazon", count=240, seed=3)
    task = get_task("em")

    adapted = KnowTrans(bundle, config=KnowTransConfig.fast()).fit(splits)
    plain = KnowTrans(
        bundle, config=KnowTransConfig.fast(), use_skc=False, use_akb=False
    ).fit(splits)

    print("Walmart-Amazon entity matching (20 labeled examples)")
    print(f"  plain few-shot F1 : {evaluate_method(plain, splits.test.examples, 'em'):5.1f}")
    print(f"  KnowTrans F1      : {evaluate_method(adapted, splits.test.examples, 'em'):5.1f}")
    print()
    print("searched knowledge:")
    for rule in adapted.knowledge.rules:
        print(f"  - {rule.render()}")

    print()
    print("inspecting three test pairs:")
    for example in splits.test.examples[:3]:
        left, right = example.inputs["left"], example.inputs["right"]
        markers = pair_markers(left, right, adapted.knowledge)
        prediction = adapted.predict(example)
        print(f"  A: {left.get('title')} | modelno={left.get('modelno')}")
        print(f"  B: {right.get('title')} | modelno={right.get('modelno')}")
        print(
            f"  derived: {markers or ['(none)']} -> predicted "
            f"{prediction!r} (gold {example.answer!r})"
        )
        print()


if __name__ == "__main__":
    main()
