"""Watch the AKB optimisation loop search for dataset knowledge.

Runs Algorithm 2 round by round on the Rayyan error-detection dataset:
generation seeds a candidate pool, each round scores the pool on the
validation data, and error feedback drives refinements.  Prints the
per-round best score, the pool growth, and the final knowledge next to
the generator's latent rules it was supposed to rediscover.

Run:  python examples/akb_knowledge_search.py
"""

from dataclasses import replace

from repro import KnowTrans, KnowTransConfig, MockGPT, get_bundle, load_splits
from repro.core.akb.optimizer import search_knowledge
from repro.data import generators
from repro.knowledge.seed import seed_knowledge


def main() -> None:
    bundle = get_bundle("mistral-7b", seed=0, scale=0.6)
    splits = load_splits("ed/rayyan", count=200, seed=9)
    config = KnowTransConfig.fast()

    print("fine-tuning the DP-LLM with SKC first (AKB needs M') ...")
    adapter = KnowTrans(bundle, config=config, use_akb=False)
    adapted = adapter.fit(splits)

    print("running AKB (generation -> evaluation -> feedback -> refinement)")
    akb_config = replace(config.akb, iterations=4, refinements_per_iteration=2)
    result = search_knowledge(
        adapted.model,
        splits.few_shot,
        splits.validation.examples,
        mockgpt=MockGPT(temperature=akb_config.temperature, seed=0),
        config=akb_config,
        initial_knowledge=seed_knowledge("ed"),
        scorer=adapter.cross_fit_scorer(splits),
    )

    print()
    for round_ in result.rounds:
        print(
            f"  round {round_.iteration}: best validation objective "
            f"{round_.best_score:6.2f} | pool size {round_.pool_size} | "
            f"{round_.error_count} validation errors"
        )

    print()
    print("final searched knowledge:")
    for rule in result.knowledge.rules:
        print(f"  - {rule.render()}")
    print()
    print("latent rules the generator injected (the search target):")
    for rule_text in generators.build("ed/rayyan", count=10, seed=9).latent_rules:
        print(f"  - {rule_text}")
    print()
    test_score = adapted.task.evaluate(
        adapted.model, splits.test.examples, result.knowledge, splits.test
    )
    seed_score = adapted.task.evaluate(
        adapted.model, splits.test.examples, seed_knowledge("ed"), splits.test
    )
    print(f"test F1 with seed knowledge    : {seed_score:5.1f}")
    print(f"test F1 with searched knowledge: {test_score:5.1f}")


if __name__ == "__main__":
    main()
