"""Detect dirty cells, then repair them — the ED → DC workflow.

Uses the Beer catalogue, whose latent conventions ("ABV is a decimal in
[0,1], never with a percent sign"; "styles and cities come from known
vocabularies") are exactly what AKB is supposed to discover.  The same
adapted models are then applied record by record: detection flags the
dirty cell, cleaning proposes the repair.

Run:  python examples/error_detection_cleaning.py
"""

from repro import KnowTrans, KnowTransConfig, get_bundle, load_splits
from repro.eval.harness import evaluate_method


def main() -> None:
    bundle = get_bundle("mistral-7b", seed=0, scale=0.6)
    config = KnowTransConfig.fast()

    detection_splits = load_splits("ed/beer", count=200, seed=5)
    cleaning_splits = load_splits("dc/beer", count=200, seed=5)

    print("adapting the error detector (ED) ...")
    detector = KnowTrans(bundle, config=config).fit(detection_splits)
    print(f"  test F1: {evaluate_method(detector, detection_splits.test.examples, 'ed'):5.1f}")
    print("adapting the cleaner (DC) ...")
    cleaner = KnowTrans(bundle, config=config).fit(cleaning_splits)
    print(f"  test repair-F1: {evaluate_method(cleaner, cleaning_splits.test.examples, 'dc'):5.1f}")

    print()
    print("knowledge searched for detection:")
    for rule in detector.knowledge.rules[:6]:
        print(f"  - {rule.render()}")

    print()
    print("end-to-end on five dirty records:")
    for example in cleaning_splits.test.examples[:5]:
        record = example.inputs["record"]
        attribute = example.inputs["attribute"]
        dirty_value = record.get(attribute)
        detected = detector.predict(
            type(example)(
                task="ed",
                inputs={"record": record, "attribute": attribute},
                answer="yes",
            )
        )
        repair = cleaner.predict(example)
        status = "flagged" if detected == "yes" else "MISSED"
        verdict = "ok" if repair == example.answer else f"expected {example.answer!r}"
        print(
            f"  {attribute}={dirty_value!r}: {status}; "
            f"repaired to {repair!r} ({verdict})"
        )


if __name__ == "__main__":
    main()
