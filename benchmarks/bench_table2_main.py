"""Regenerates paper Table II: open-source DP-LLMs and non-LLM methods.

Expected shape (paper): KnowTrans posts the best average, beating the
Jellyfish backbone by several points; non-LLM methods trail overall;
Jellyfish-ICL is the weakest LLM row.
"""

from conftest import run_once

from repro.eval.experiments import table2_open_source_comparison
from repro.eval.paper_reference import TABLE2, sign_agreement


def test_table2(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: table2_open_source_comparison(ctx))
    agreement = sign_agreement(
        TABLE2, result["rows"][:-1], "jellyfish", "knowtrans"
    )
    record_result(
        "table2_main",
        result["text"]
        + f"\n\nper-dataset sign agreement with paper "
        f"(knowtrans vs jellyfish gaps): {agreement:.0%}",
    )
    average = result["rows"][-1]
    assert average["dataset"] == "average"
    # Headline claim: KnowTrans beats the plain fine-tuned backbone and
    # every other open-source method on average.
    competitors = ("non_llm", "mistral", "tablellama", "meld", "jellyfish",
                   "jellyfish_icl")
    assert all(average["knowtrans"] > average[c] for c in competitors)
