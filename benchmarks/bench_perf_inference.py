"""Perf gate: batched inference must beat the per-example path ≥ 3×.

Times greedy decoding over the Table II entity-matching evaluation
surface (validation + test split of ``em/abt_buy``) through both paths
of the same engine — ``predict`` called per example vs one
``predict_batch`` call — with warm featurization caches (the AKB steady
state).  Results are written to ``BENCH_inference.json`` at the repo
root so the throughput trajectory is tracked across PRs.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_inference.py

The assertion fails if the batched path is less than 3× faster or if
the two paths ever disagree on a prediction.
"""

import json
import os
import pathlib

from repro.perf import render_benchmark, run_inference_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_inference.json"

MIN_SPEEDUP = 3.0


def test_batched_inference_speedup(record_result):
    preset = os.environ.get("REPRO_BENCH_PRESET", "paper")
    count = 200 if preset == "quick" else 400
    result = run_inference_benchmark(
        dataset_id="em/abt_buy", count=count, seed=0, repeats=3
    )
    result["preset"] = preset
    result["min_speedup"] = MIN_SPEEDUP
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    record_result("bench_perf_inference", render_benchmark(result))

    assert result["predictions_identical"], (
        "batched and per-example predictions diverged"
    )
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"batched inference only {result['speedup']:.2f}x faster than the "
        f"per-example path (need >= {MIN_SPEEDUP}x); see {BENCH_JSON}"
    )
