"""Perf gate: batched inference must beat the per-example path ≥ 3×.

Times greedy decoding over the Table II entity-matching evaluation
surface (validation + test split of ``em/abt_buy``) through both paths
of the same engine — ``predict`` called per example vs one
``predict_batch`` call — with warm featurization caches (the AKB steady
state).  Results are written to ``BENCH_inference.json`` at the repo
root and appended to ``benchmarks/results/perf_trajectory.jsonl`` via
the shared :class:`repro.perf.Gate` protocol so the throughput
trajectory is tracked across PRs.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_inference.py

The assertion fails if the batched path is less than 3× faster or if
the two paths ever disagree on a prediction.
"""

import pathlib

from repro.perf import Gate, render_benchmark, run_inference_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_SPEEDUP = 3.0


def test_batched_inference_speedup(record_result):
    gate = Gate("inference", {}, min_speedup=MIN_SPEEDUP, root=REPO_ROOT)
    count = 200 if gate.preset == "quick" else 400
    result = run_inference_benchmark(
        dataset_id="em/abt_buy", count=count, seed=0, repeats=3
    )
    gate.result.update(result)
    gate.write(
        per_example_seconds=result["per_example"]["seconds"],
        batched_seconds=result["batched"]["seconds"],
        speedup=result["speedup"],
    )
    record_result("bench_perf_inference", render_benchmark(gate.result))

    gate.require(
        result["predictions_identical"],
        "batched and per-example predictions diverged",
    )
    gate.require_speedup()
    gate.check()
