"""Regenerates paper Fig. 7: AKB performance across refinement rounds.

Expected shape: the validation (eval) curve is non-decreasing for both
tasks; the ED curve improves over rounds while the AVE curve plateaus
early (the paper's "additional knowledge may not be helpful" case).
"""

from conftest import run_once

from repro.eval.experiments import fig7_refinement_rounds


def test_fig7(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: fig7_refinement_rounds(ctx))
    record_result("fig7_refinement", result["text"])
    for series in result["series"].values():
        evals = series["eval"]
        assert all(b >= a - 1e-9 for a, b in zip(evals, evals[1:]))
