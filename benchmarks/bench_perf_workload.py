"""Perf gate: the ~100x table-QA workload must hold the batched floor.

Builds the ``qa/products`` large-scale generator (50k rows at the paper
preset — roughly 100x the discriminative generators' base sizes) and
gates three properties of the stack at that volume:

* the batched engine stays ≥ 3x faster than the per-example path even
  though the candidate pools are full column vocabularies (mean pool
  size gated ≥ 100 — an order of magnitude past the discriminative
  shortlist cap), with bit-identical predictions;
* KB profile retrieval still indexes the new QA datasets: promoting
  both ``qa/products`` and ``qa/beers`` profiles and retrieving with
  the products vector (self excluded by fingerprint) must return the
  sibling QA entry;
* entity augmentation does not wreck the discriminative workloads: a
  few-shot adapted EM model scored on an entity-augmented test split
  stays within a documented band of its unaugmented score (the band is
  recorded in ``docs/workloads.md``).

Results are written to ``BENCH_workload.json`` at the repo root and
appended to ``benchmarks/results/perf_trajectory.jsonl`` via the shared
:class:`repro.perf.Gate` protocol.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_workload.py
"""

import pathlib

from repro.data.augment import AugmentConfig
from repro.eval.harness import adapt_single, evaluate_method, load_splits
from repro.perf import (
    Gate,
    render_workload_benchmark,
    run_workload_benchmark,
)
from repro.tinylm.model import ModelConfig, ScoringLM

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_SPEEDUP = 3.0
MIN_MEAN_POOL = 100.0

#: Maximum allowed drop (in metric points) of the augmented EM score
#: relative to the unaugmented run — documented in docs/workloads.md.
AUGMENT_BAND = 15.0


def test_workload_gate(record_result):
    gate = Gate("workload", {}, min_speedup=MIN_SPEEDUP, root=REPO_ROOT)
    if gate.preset == "quick":
        count, eval_count, repeats = 6_000, 200, 2
    else:
        count, eval_count, repeats = 50_000, 400, 3
    result = run_workload_benchmark(
        count=count, eval_count=eval_count, seed=0, repeats=repeats
    )
    gate.result.update(result)
    gate.write(
        rows=result["rows"],
        mean_pool_size=result["mean_pool_size"],
        per_example_seconds=result["per_example"]["seconds"],
        batched_seconds=result["batched"]["seconds"],
        speedup=result["speedup"],
        kb_retrieved=result["kb"]["retrieved"],
    )
    record_result("bench_perf_workload", render_workload_benchmark(gate.result))

    gate.require(
        result["predictions_identical"],
        "batched and per-example predictions diverged",
    )
    gate.require(
        result["mean_pool_size"] >= MIN_MEAN_POOL,
        f"mean pool size {result['mean_pool_size']:.0f} below "
        f"{MIN_MEAN_POOL:.0f} — the workload no longer stresses large pools",
    )
    gate.require(
        result["kb"]["retrieved"] >= 1
        and "qa/beers" in result["kb"]["retrieved_datasets"],
        "KB retrieval did not surface the sibling QA dataset profile",
    )
    gate.require_speedup()
    gate.check()


def test_augmented_em_within_band(record_result):
    """Entity augmentation must stay within the documented EM band."""
    seed = 0
    base = ScoringLM(ModelConfig(name="aug-smoke", seed=seed))
    plain = load_splits("em/abt_buy", count=160, seed=seed)
    augmented = load_splits(
        "em/abt_buy", count=160, seed=seed, augment=AugmentConfig(seed=seed)
    )
    adapted = adapt_single(base, plain.few_shot)
    plain_score = evaluate_method(adapted, plain.test.examples, "em")
    augmented_score = evaluate_method(adapted, augmented.test.examples, "em")
    drop = plain_score - augmented_score
    record_result(
        "bench_perf_workload",
        "augmented EM smoke — plain "
        f"{plain_score:.2f}, augmented {augmented_score:.2f}, "
        f"drop {drop:.2f} (band {AUGMENT_BAND})",
    )
    assert drop <= AUGMENT_BAND, (
        f"augmented EM dropped {drop:.2f} points "
        f"({plain_score:.2f} -> {augmented_score:.2f}); "
        f"allowed band is {AUGMENT_BAND} — see docs/workloads.md"
    )
