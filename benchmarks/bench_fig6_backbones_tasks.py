"""Regenerates paper Fig. 6: backbones ± KnowTrans on novel tasks."""

from conftest import run_once

from repro.eval.experiments import fig6_backbones_on_tasks


def test_fig6(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: fig6_backbones_on_tasks(ctx))
    record_result("fig6_backbones_tasks", result["text"])
    average = result["rows"][-1]
    improved = sum(
        average[label + "+kt"] > average[label]
        for label in ("mistral_7b", "jellyfish_7b", "jellyfish_8b", "jellyfish_13b")
    )
    assert improved >= 2
