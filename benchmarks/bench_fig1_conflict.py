"""Regenerates paper Fig. 1 (left): the multi-task tug-of-war effect.

Measures pairwise gradient cosine similarity of the twelve upstream
datasets at the shared base-model parameters. Expected shape: a
substantial fraction of dataset pairs have obtuse (negative-cosine)
gradients — the knowledge-distraction motivation for SKC — while the
extracted knowledge patches, being isolated, never share an
optimisation step at all.
"""

from conftest import run_once

from repro.eval.diagnostics import patch_interference_matrix, summarize_conflict


def test_fig1_tug_of_war(benchmark, ctx, record_result):
    bundle = ctx.bundle()

    def run():
        report = summarize_conflict(bundle.base_model, bundle.upstream_datasets)
        patch_matrix, __ = patch_interference_matrix(bundle.patches)
        return report, patch_matrix

    report, patch_matrix = run_once(benchmark, run)
    lines = [
        "Fig. 1 (left): gradient conflict across upstream datasets",
        f"conflict rate (obtuse pairs): {report['conflict_rate']:.2%}",
        f"mean off-diagonal cosine:     {report['mean_cosine']:+.3f}",
        f"worst pair: {report['worst_pair'][0]} vs {report['worst_pair'][1]} "
        f"({report['worst_cosine']:+.3f})",
    ]
    record_result("fig1_conflict", "\n".join(lines))
    # The paper's premise: conflicting gradients exist in the shared space.
    assert report["conflict_rate"] > 0.0
    assert report["worst_cosine"] < 0.0
