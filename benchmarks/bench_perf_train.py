"""Perf gate: the rank-space frozen-backbone fit must beat dense ≥ 3×.

Times an SKC stage-3 workload — a 12-patch ``PatchFusion`` plus fresh
shared patch fine-tuned on a few-shot split with the paper's stage-3
hyperparameters — through both training engines of the same code:

* dense: every step materialises effective weights and routes adapter
  gradients through dense ``(out, in)`` matrices (the historical path);
* rank-space: frozen projections cached once per dataset
  (``FrozenActivations``), every step's adapter math stays in rank
  space (``ScoringLM.rank_loss_and_gradients``).

Results are written to ``BENCH_train.json`` at the repo root and
appended to ``benchmarks/results/perf_trajectory.jsonl`` via the shared
:class:`repro.perf.Gate` protocol so the training-path trajectory is
tracked across PRs alongside the inference, pipeline and cache gates'.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_train.py

The assertion fails if the rank-space fit is less than 3× faster, if
any per-step loss drifts past rtol 1e-9, if the downstream test metric
or any argmax prediction differs from the dense path, if the fit
materialised even one dense effective weight, or if the
``REPRO_EXACT_WEIGHTS=1`` oracle is not deterministic.
"""

import pathlib

from repro.perf import Gate, render_train_benchmark, run_train_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_SPEEDUP = 3.0
LOSS_RTOL = 1e-9


def test_rank_space_training_speedup(record_result):
    gate = Gate("train", {}, min_speedup=MIN_SPEEDUP, root=REPO_ROOT)
    count = 160 if gate.preset == "quick" else 400
    result = run_train_benchmark(seed=0, count=count)
    gate.result.update(result)
    gate.write(
        dense_seconds=result["dense"]["seconds"],
        rank_seconds=result["rank"]["seconds"],
        speedup=result["speedup"],
        steps=result["steps"],
        patches=result["patches"],
    )
    record_result("bench_perf_train", render_train_benchmark(gate.result))

    gate.require(
        result["rank"]["engaged"],
        "trainer did not auto-select the rank-space engine for a "
        "frozen-backbone fusion fit",
    )
    gate.require(
        result["weight_materializations"] == 0,
        f"rank-space fit materialised "
        f"{result['weight_materializations']} dense effective weights",
    )
    gate.require(
        result["rank_space_steps"] == result["steps"] * result["repeats"],
        "not every optimisation step of the rank arm ran in rank space",
    )
    gate.require(
        result["max_step_loss_rel_err"] <= LOSS_RTOL,
        f"per-step losses drifted: max rel err "
        f"{result['max_step_loss_rel_err']:.3e} > {LOSS_RTOL}",
    )
    gate.require(
        result["metrics_identical"],
        f"downstream task metric diverged: {result['metrics']}",
    )
    gate.require(
        result["predictions_identical"],
        "argmax test predictions diverged between dense and rank-space fits",
    )
    gate.require(
        result["exact_oracle"]["deterministic"],
        "REPRO_EXACT_WEIGHTS=1 oracle produced different results across runs",
    )
    gate.require_speedup()
    gate.check()
