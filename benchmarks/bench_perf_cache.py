"""Perf gate: a store-warm pipeline re-run must beat cold ≥ 5×.

Times the full adaptation pipeline — bundle construction (base-model
pretraining, upstream SFT, SKC stage-1 patches) plus ``KnowTrans.fit``
and test evaluation — twice against one artifact-store directory:

* cold: the store starts empty, every deterministic stage computes its
  result and persists it;
* warm: the identical workload from a fresh in-memory state, with every
  persisted stage loading its bytes instead of recomputing.

Results are written to ``BENCH_cache.json`` at the repo root and
appended to ``benchmarks/results/perf_trajectory.jsonl`` so warm-start
health is tracked across PRs alongside the inference and pipeline
gates.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_cache.py

The assertion fails if the warm run is less than 5× faster, or if any
score, AKB round, selected knowledge or test prediction differs between
the arms — the store must change *when* work happens, never *what* is
computed.
"""

import json
import os
import pathlib

from repro.perf import render_cache_benchmark, run_cache_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_cache.json"
TRAJECTORY = pathlib.Path(__file__).parent / "results" / "perf_trajectory.jsonl"

MIN_WARM_SPEEDUP = 5.0


def test_warm_start_speedup(record_result):
    preset = os.environ.get("REPRO_BENCH_PRESET", "paper")
    scale = 0.45 if preset == "quick" else 0.6
    result = run_cache_benchmark(seed=0, scale=scale)
    result["preset"] = preset
    result["min_speedup"] = MIN_WARM_SPEEDUP
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    TRAJECTORY.parent.mkdir(exist_ok=True)
    with TRAJECTORY.open("a") as handle:
        handle.write(
            json.dumps(
                {
                    "bench": "cache",
                    "preset": preset,
                    "cold_seconds": result["cold"]["seconds"],
                    "warm_seconds": result["warm"]["seconds"],
                    "speedup": result["speedup"],
                    "warm_hits": result["warm"]["store"]["hits"],
                    "warm_misses": result["warm"]["store"]["misses"],
                }
            )
            + "\n"
        )
    record_result("bench_perf_cache", render_cache_benchmark(result))

    assert result["results_identical"], (
        "store-warm results diverged from the cold run — the store must "
        "change when work happens, never what is computed"
    )
    assert result["warm"]["store"]["hits"] > 0, (
        "warm run recorded zero store hits — the store is not being used"
    )
    assert result["speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm re-run only {result['speedup']:.2f}x faster than cold "
        f"(need >= {MIN_WARM_SPEEDUP}x); see {BENCH_JSON}"
    )
