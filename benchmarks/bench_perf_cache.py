"""Perf gate: a store-warm pipeline re-run must beat cold ≥ 5×.

Times the full adaptation pipeline — bundle construction (base-model
pretraining, upstream SFT, SKC stage-1 patches) plus ``KnowTrans.fit``
and test evaluation — twice against one artifact-store directory:

* cold: the store starts empty, every deterministic stage computes its
  result and persists it;
* warm: the identical workload from a fresh in-memory state, with every
  persisted stage loading its bytes instead of recomputing.

Results are written to ``BENCH_cache.json`` at the repo root and
appended to ``benchmarks/results/perf_trajectory.jsonl`` via the shared
:class:`repro.perf.Gate` protocol so warm-start health is tracked
across PRs alongside the inference and pipeline gates.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_cache.py

The assertion fails if the warm run is less than 5× faster, or if any
score, AKB round, selected knowledge or test prediction differs between
the arms — the store must change *when* work happens, never *what* is
computed.
"""

import pathlib

from repro.perf import Gate, render_cache_benchmark, run_cache_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_WARM_SPEEDUP = 5.0


def test_warm_start_speedup(record_result):
    gate = Gate("cache", {}, min_speedup=MIN_WARM_SPEEDUP, root=REPO_ROOT)
    scale = 0.45 if gate.preset == "quick" else 0.6
    result = run_cache_benchmark(seed=0, scale=scale)
    gate.result.update(result)
    gate.write(
        cold_seconds=result["cold"]["seconds"],
        warm_seconds=result["warm"]["seconds"],
        speedup=result["speedup"],
        warm_hits=result["warm"]["store"]["hits"],
        warm_misses=result["warm"]["store"]["misses"],
    )
    record_result("bench_perf_cache", render_cache_benchmark(gate.result))

    gate.require(
        result["results_identical"],
        "store-warm results diverged from the cold run — the store must "
        "change when work happens, never what is computed",
    )
    gate.require(
        result["warm"]["store"]["hits"] > 0,
        "warm run recorded zero store hits — the store is not being used",
    )
    gate.require_speedup()
    gate.check()
