"""Perf gate: continuous batching must beat sequential dispatch ≥ 3×.

Drives the real :mod:`repro.serve` stack — TCP sockets, the asyncio
event loop, the continuous-batching scheduler — with simulated
multi-client load against a two-tenant registry sharing one backbone.
Two arms serve the identical tenant-alternating workload:

* sequential: ``max_batch=1``, one closed-loop client — every request
  dispatches alone and pays its own adapter hot-swap;
* batched: the production scheduler coalesces concurrent in-flight
  requests across tenants, grouping them so each batch pays one swap
  per tenant and one ``predict_batch`` per group.

Results are written to ``BENCH_serve.json`` at the repo root (p50/p99
for both arms included) and appended to
``benchmarks/results/perf_trajectory.jsonl`` via the shared
:class:`repro.perf.Gate` protocol, alongside the inference, pipeline,
cache and train gates'.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_serve.py

The assertion fails if batched throughput is less than 3× the
sequential arm's, if any served prediction differs from the offline
``predict_batch`` oracle, if the scheduler failed to actually coalesce
(mean batch size ≤ 1.5), if any request errored, or if the latency
percentiles are degenerate.
"""

import math
import pathlib

from repro.perf import Gate, render_serve_benchmark, run_serve_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_SPEEDUP = 3.0

#: Generous sanity ceiling on the batched arm's tail latency — the
#: quick preset's whole batched run takes well under a second, so a
#: multi-second p99 means the scheduler stalled.
MAX_BATCHED_P99_MS = 5000.0


def test_continuous_batching_speedup(record_result):
    gate = Gate("serve", {}, min_speedup=MIN_SPEEDUP, root=REPO_ROOT)
    requests = 27 if gate.preset == "quick" else 63
    repeats = 2 if gate.preset == "quick" else 3
    result = run_serve_benchmark(
        seed=0,
        clients=9,
        requests=requests,
        n_patches=16,
        rank=8,
        repeats=repeats,
    )
    gate.result.update(result)
    gate.write(
        sequential_seconds=result["sequential"]["seconds"],
        batched_seconds=result["batched"]["seconds"],
        speedup=result["speedup"],
        batched_p50_ms=result["batched"]["p50_ms"],
        batched_p99_ms=result["batched"]["p99_ms"],
        requests=result["requests"],
        mean_batch_size=result["batched"]["mean_batch_size"],
    )
    record_result("bench_perf_serve", render_serve_benchmark(gate.result))

    gate.require(
        result["sequential"]["all_ok"] and result["batched"]["all_ok"],
        "at least one served request returned an error",
    )
    gate.require(
        result["predictions_identical"],
        "served predictions diverged from the offline predict_batch oracle",
    )
    gate.require(
        result["coalesced"],
        f"scheduler did not coalesce requests: mean batch size "
        f"{result['batched']['mean_batch_size']:.2f}",
    )
    gate.require(
        result["batched"]["adapter_swaps"]
        < result["sequential"]["adapter_swaps"],
        f"batching did not reduce adapter swaps "
        f"({result['batched']['adapter_swaps']} vs "
        f"{result['sequential']['adapter_swaps']})",
    )
    for arm in ("sequential", "batched"):
        p50, p99 = result[arm]["p50_ms"], result[arm]["p99_ms"]
        gate.require(
            0.0 < p50 <= p99 and math.isfinite(p99),
            f"{arm} latency percentiles degenerate: "
            f"p50={p50:.3f} ms p99={p99:.3f} ms",
        )
    gate.require(
        result["batched"]["p99_ms"] <= MAX_BATCHED_P99_MS,
        f"batched p99 {result['batched']['p99_ms']:.1f} ms exceeds "
        f"{MAX_BATCHED_P99_MS:.0f} ms",
    )
    gate.require_speedup()
    gate.check()
