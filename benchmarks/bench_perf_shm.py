"""Perf gate: the zero-copy shm transport must beat pickle ≥ 1.5×.

Times an array-heavy fan-out — every task scores the same large
candidate pool (the frozen hot-array pattern of backbone weights and
AKB pools) — through both transports of the same :class:`WorkerPool`:

* pickle: every task's arguments are serialised in full and copied
  through the executor's pipe (the historical path);
* shm: arrays live in named shared-memory segments placed once by the
  parent's :class:`ShmArena`; the pickled skeleton carries only block
  descriptors and workers map views instead of unpickling copies.

Both pools run ``clamp=False`` forced workers, so on small CI machines
the speedup measures serialization eliminated, not cores added.

Results are written to ``BENCH_shm.json`` at the repo root and appended
to ``benchmarks/results/perf_trajectory.jsonl`` via the shared
:class:`repro.perf.Gate` protocol.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_shm.py

The assertion fails if shared memory is unavailable, if the shm arm is
less than 1.5× faster, if the skeleton payload is not under 1% of the
pickle payload, if any result differs across serial / pickle-parallel /
shm-parallel / 2-shard-merged execution, if any ``repro-*`` segment
leaks after a clean exit, or if an injected worker crash either goes
unreported or leaks a segment.
"""

import pathlib

from repro.perf import Gate, render_shm_benchmark, run_shm_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_SPEEDUP = 1.5
MAX_PAYLOAD_RATIO = 0.01


def test_shm_transport_speedup(record_result):
    gate = Gate("shm", {}, min_speedup=MIN_SPEEDUP, root=REPO_ROOT)
    repeats = 2 if gate.preset == "quick" else 3
    result = run_shm_benchmark(seed=0, jobs=8, repeats=repeats)
    gate.result.update(result)
    gate.write(
        pickle_seconds=result["pickle"]["seconds"],
        shm_seconds=result["shm"]["seconds"],
        speedup=result["speedup"],
        payload_ratio=result["payload_ratio"],
        tasks=result["tasks"],
    )
    record_result("bench_perf_shm", render_shm_benchmark(gate.result))

    gate.require(
        result["shm_available"],
        "shared memory transport unavailable (needs fork + "
        "multiprocessing.shared_memory)",
    )
    gate.require(
        result["payload_ratio"] < MAX_PAYLOAD_RATIO,
        f"skeleton payload is {result['payload_ratio']:.2%} of the "
        f"pickle payload (need < {MAX_PAYLOAD_RATIO:.0%})",
    )
    gate.require(
        result["predictions_identical"],
        "results diverged between serial, pickle-parallel and "
        "shm-parallel execution",
    )
    gate.require(
        result["sharded_identical"],
        "2-shard claim/merge round trip diverged from the serial run",
    )
    gate.require(
        not result["leaked_segments"],
        f"leaked segments after clean exit: {result['leaked_segments']}",
    )
    gate.require(
        result["crash_raised"],
        "injected worker crash was not surfaced to the caller",
    )
    gate.require(
        not result["crash_leaked_segments"],
        f"leaked segments after injected crash: "
        f"{result['crash_leaked_segments']}",
    )
    gate.require_speedup()
    gate.check()
