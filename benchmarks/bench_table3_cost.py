"""Regenerates paper Table III: per-instance tokens and USD cost.

Expected shape: KnowTrans needs far fewer input tokens than the ICL
prompts of the GPT baselines (demonstrations live in parameters, not in
context) and costs the least per instance; GPT-4 is the priciest.
"""

from conftest import run_once

from repro.eval.experiments import table3_cost_analysis


def test_table3(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: table3_cost_analysis(ctx))
    record_result("table3_cost", result["text"])
    rows = {row["dataset"]: row for row in result["rows"]}
    assert rows["knowtrans"]["input_tokens"] < rows["gpt-4"]["input_tokens"] / 5
    assert rows["knowtrans"]["cost_per_instance"] < rows["gpt-3.5"]["cost_per_instance"] * 5
    assert rows["gpt-4"]["cost_per_instance"] > rows["gpt-4o"]["cost_per_instance"]
