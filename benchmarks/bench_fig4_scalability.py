"""Regenerates paper Fig. 4: performance vs labeled instance count.

Expected shape: KnowTrans leads in the low-label regime and the gap to
the plain fine-tuned backbone narrows as labels grow.
"""

from conftest import run_once

from repro.eval.experiments import fig4_scalability


def test_fig4(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: fig4_scalability(ctx))
    record_result("fig4_scalability", result["text"])
    gaps_low, gaps_high = [], []
    for series in result["series"].values():
        gaps_low.append(series["knowtrans"][0] - series["jellyfish"][0])
        gaps_high.append(series["knowtrans"][-1] - series["jellyfish"][-1])
    # KnowTrans wins on average at 20 shots; the advantage shrinks with data.
    assert sum(gaps_low) / len(gaps_low) > 0.0
