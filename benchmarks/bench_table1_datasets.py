"""Regenerates paper Table I: downstream dataset statistics."""

from conftest import run_once

from repro.eval.experiments import table1_dataset_statistics


def test_table1(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: table1_dataset_statistics(ctx))
    record_result("table1_datasets", result["text"])
    assert len(result["rows"]) == 13
    for row in result["rows"]:
        assert row["few_shot"] == ctx.few_shot
