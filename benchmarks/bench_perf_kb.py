"""Perf gate: a KB-warmed AKB search must beat a cold one ≥ 2×.

Times the full adaptation — ``KnowTrans.fit`` plus test evaluation on a
target split — twice with no artifact store active:

* cold: no knowledge base; the candidate pool starts from
  ``generate_pool`` alone and the search grinds refinement rounds
  toward its plateau;
* warm: a knowledge base populated by an untimed search over a source
  split of the same dataset family (same generator rules, different
  examples, different fingerprint); retrieval seeds the pool with
  already-optimised knowledge, the best candidate lands in round one
  and the patience stop ends the search early.

Results are written to ``BENCH_kb.json`` at the repo root and appended
to ``benchmarks/results/perf_trajectory.jsonl`` via the shared
:class:`repro.perf.Gate` protocol so retrieve-then-refine health is
tracked across PRs alongside the other perf gates.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_kb.py

The assertion fails if the warm search is less than 2× faster in
wall-clock or rounds-to-best, if it retrieved nothing from the bank,
if its quality (test score or best validation score) regresses below
cold, or if the forked concurrent-promotion check leaves a single
corrupt entry behind.
"""

import pathlib

from repro.perf import Gate, render_kb_benchmark, run_kb_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_KB_SPEEDUP = 2.0


def test_kb_warm_search_speedup(record_result):
    gate = Gate("kb", {}, min_speedup=MIN_KB_SPEEDUP, root=REPO_ROOT)
    scale = 0.45 if gate.preset == "quick" else 0.6
    result = run_kb_benchmark(seed=0, scale=scale)
    gate.result.update(result)
    gate.write(
        cold_seconds=result["cold"]["seconds"],
        warm_seconds=result["warm"]["seconds"],
        speedup=result["speedup"],
        rounds_ratio=result["rounds_ratio"],
        cold_rounds_to_best=result["cold"]["rounds_to_best"],
        warm_rounds_to_best=result["warm"]["rounds_to_best"],
        retrieved=result["retrieved"],
    )
    record_result("bench_perf_kb", render_kb_benchmark(gate.result))

    gate.require(
        result["retrieved"] > 0,
        "warm search retrieved nothing from the populated bank",
    )
    gate.require(
        result["quality_no_worse"],
        "warm quality regressed below cold "
        f"(test {result['cold']['score']:.3f} -> "
        f"{result['warm']['score']:.3f}, best "
        f"{result['cold']['best_score']:.3f} -> "
        f"{result['warm']['best_score']:.3f})",
    )
    gate.require(
        result["rounds_ratio"] >= MIN_KB_SPEEDUP,
        f"rounds-to-best only improved {result['rounds_ratio']:.2f}x "
        f"(need >= {MIN_KB_SPEEDUP}x)",
    )
    gate.require(
        result["concurrent"]["ok"],
        "concurrent promotion corrupted the bank: "
        f"{result['concurrent']}",
    )
    gate.require_speedup()
    gate.check()
