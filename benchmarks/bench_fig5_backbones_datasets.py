"""Regenerates paper Fig. 5: backbones ± KnowTrans on novel datasets.

Expected shape: every backbone improves with KnowTrans on average, and
the bare Mistral backbone (no upstream DP training) gains the most.
"""

from conftest import run_once

from repro.eval.experiments import fig5_backbones_on_datasets


def test_fig5(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: fig5_backbones_on_datasets(ctx))
    record_result("fig5_backbones_datasets", result["text"])
    average = result["rows"][-1]
    improved = sum(
        average[label + "+kt"] > average[label]
        for label in ("mistral_7b", "jellyfish_7b", "jellyfish_8b", "jellyfish_13b")
    )
    assert improved >= 3
