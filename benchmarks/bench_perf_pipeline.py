"""Perf gate: the parallel+pooled pipeline must beat serial ≥ 2×.

Times the full adaptation pipeline — ``KnowTrans.fit`` plus test-set
evaluation on a shard of the table-bench datasets — through both
runtimes of the same code:

* serial per-candidate: rows one after another, one inference-engine
  call per AKB knowledge candidate (the historical path);
* parallel pooled: per-dataset rows fanned out over the
  :class:`repro.runtime.WorkerPool` and each AKB round scored as one
  candidate-major mega-batch per shadow fold.

Results are written to ``BENCH_pipeline.json`` at the repo root and
appended to ``benchmarks/results/perf_trajectory.jsonl`` via the shared
:class:`repro.perf.Gate` protocol so the end-to-end trajectory is
tracked across PRs alongside the inference gate's.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_pipeline.py

The assertion fails if the parallel+pooled run is less than 2× faster
or if any score, AKB round, selected knowledge or test prediction
differs from the serial path.
"""

import pathlib

from repro.perf import Gate, render_pipeline_benchmark, run_pipeline_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_SPEEDUP = 2.0


def test_pipeline_speedup(record_result):
    gate = Gate("pipeline", {}, min_speedup=MIN_SPEEDUP, root=REPO_ROOT)
    scale = 0.45 if gate.preset == "quick" else 0.6
    result = run_pipeline_benchmark(seed=0, scale=scale)
    gate.result.update(result)
    gate.write(
        serial_seconds=result["serial"]["seconds"],
        parallel_seconds=result["parallel"]["seconds"],
        speedup=result["speedup"],
        effective_jobs=result["effective_jobs"],
    )
    record_result("bench_perf_pipeline", render_pipeline_benchmark(gate.result))

    gate.require(
        result["results_identical"],
        "parallel+pooled results diverged from the serial path",
    )
    gate.require_speedup()
    gate.check()
