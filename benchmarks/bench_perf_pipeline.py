"""Perf gate: the parallel+pooled pipeline must beat serial ≥ 2×.

Times the full adaptation pipeline — ``KnowTrans.fit`` plus test-set
evaluation on a shard of the table-bench datasets — through both
runtimes of the same code:

* serial per-candidate: rows one after another, one inference-engine
  call per AKB knowledge candidate (the historical path);
* parallel pooled: per-dataset rows fanned out over the
  :class:`repro.runtime.WorkerPool` and each AKB round scored as one
  candidate-major mega-batch per shadow fold.

Results are written to ``BENCH_pipeline.json`` at the repo root and
appended to ``benchmarks/results/perf_trajectory.jsonl`` so the
end-to-end trajectory is tracked across PRs alongside the inference
gate's.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_pipeline.py

The assertion fails if the parallel+pooled run is less than 2× faster
or if any score, AKB round, selected knowledge or test prediction
differs from the serial path.
"""

import json
import os
import pathlib

from repro.perf import render_pipeline_benchmark, run_pipeline_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_pipeline.json"
TRAJECTORY = pathlib.Path(__file__).parent / "results" / "perf_trajectory.jsonl"

MIN_SPEEDUP = 2.0


def test_pipeline_speedup(record_result):
    preset = os.environ.get("REPRO_BENCH_PRESET", "paper")
    scale = 0.45 if preset == "quick" else 0.6
    result = run_pipeline_benchmark(seed=0, scale=scale)
    result["preset"] = preset
    result["min_speedup"] = MIN_SPEEDUP
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    TRAJECTORY.parent.mkdir(exist_ok=True)
    with TRAJECTORY.open("a") as handle:
        handle.write(
            json.dumps(
                {
                    "bench": "pipeline",
                    "preset": preset,
                    "serial_seconds": result["serial"]["seconds"],
                    "parallel_seconds": result["parallel"]["seconds"],
                    "speedup": result["speedup"],
                    "effective_jobs": result["effective_jobs"],
                }
            )
            + "\n"
        )
    record_result("bench_perf_pipeline", render_pipeline_benchmark(result))

    assert result["results_identical"], (
        "parallel+pooled results diverged from the serial path"
    )
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"parallel+pooled pipeline only {result['speedup']:.2f}x faster than "
        f"the serial path (need >= {MIN_SPEEDUP}x); see {BENCH_JSON}"
    )
