"""Regenerates paper Table V: ablation of SKC and AKB.

Expected shape: removing either component loses points on average and
removing both loses the most (w/o both ≤ w/o SKC, w/o AKB ≤ full).
"""

from conftest import run_once

from repro.eval.experiments import table5_ablation


def test_table5(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: table5_ablation(ctx))
    record_result("table5_ablation", result["text"])
    average = result["rows"][-1]
    assert average["knowtrans"] > average["wo_skc_akb"]
    assert average["knowtrans"] >= max(average["wo_skc"], average["wo_akb"]) - 2.0
