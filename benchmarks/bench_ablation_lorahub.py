"""Extension ablation: SKC's gradient-learned fusion vs LoRAHub search.

The paper's Related Work positions SKC against LoRAHub's black-box
coefficient search over frozen LoRA modules. Expected shape: SKC
(adaptive λ + trainable patches + fresh patch) beats the search-only
composition on average, because the few-shot gradient signal can also
move the patches themselves.
"""

from conftest import run_once

from repro.core.knowtrans import KnowTrans
from repro.core.skc.lorahub import LoRAHubConfig, lorahub_search
from repro.knowledge.seed import seed_knowledge
from repro.tasks.base import get_task

DATASETS = ("ed/beer", "em/abt_buy", "ed/rayyan")


def test_lorahub_ablation(benchmark, ctx, record_result):
    bundle = ctx.bundle()

    def run():
        rows = []
        for dataset_id in DATASETS:
            splits = ctx.splits(dataset_id)
            task = get_task(splits.task)
            model, __, __ = lorahub_search(
                bundle.upstream_model,
                bundle.patches,
                splits.few_shot,
                LoRAHubConfig(iterations=30),
                ctx.config.skc,
            )
            lorahub = task.evaluate(
                model, splits.test.examples, seed_knowledge(splits.task),
                splits.test,
            )
            skc = KnowTrans(bundle, config=ctx.config, use_akb=False).fit(
                splits
            ).evaluate(splits.test.examples)
            rows.append((dataset_id, lorahub, skc))
        return rows

    rows = run_once(benchmark, run)
    lines = ["LoRAHub black-box search vs SKC (no AKB), test scores"]
    for dataset_id, lorahub, skc in rows:
        lines.append(f"  {dataset_id:18s} lorahub={lorahub:6.2f} skc={skc:6.2f}")
    record_result("ablation_lorahub", "\n".join(lines))
    mean_lorahub = sum(r[1] for r in rows) / len(rows)
    mean_skc = sum(r[2] for r in rows) / len(rows)
    assert mean_skc > mean_lorahub - 2.0
