"""Regenerates paper Table IV: closed-source LLMs vs KnowTrans tiers.

Expected shape: the KnowTrans tiers are competitive with the simulated
GPT baselines on average despite the GPTs' strong CTA/DI rows, and the
13B tier posts the best KnowTrans average.
"""

from conftest import run_once

from repro.eval.experiments import table4_closed_source_comparison


def test_table4(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: table4_closed_source_comparison(ctx))
    record_result("table4_closed", result["text"])
    average = result["rows"][-1]
    best_knowtrans = max(
        average["knowtrans_7b"], average["knowtrans_8b"], average["knowtrans_13b"]
    )
    assert best_knowtrans > average["gpt_3_5"]
