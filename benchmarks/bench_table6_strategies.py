"""Regenerates paper Table VI: patch weighting strategies.

Expected shape: single < uniform ≤ adaptive ≤ full KnowTrans on
average — dynamically weighted upstream knowledge beats both no
upstream knowledge and fixed uniform mixing.
"""

from conftest import run_once

from repro.eval.experiments import table6_weight_strategies


def test_table6(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: table6_weight_strategies(ctx))
    record_result("table6_strategies", result["text"])
    average = result["rows"][-1]
    assert average["knowtrans"] > average["single"]
    assert average["adaptive"] > average["single"] - 2.0
