"""Regenerates paper Table VII: upstream dataset statistics."""

from conftest import run_once

from repro.eval.experiments import table7_upstream_statistics


def test_table7(benchmark, ctx, record_result):
    result = run_once(benchmark, lambda: table7_upstream_statistics(ctx))
    record_result("table7_upstream", result["text"])
    assert len(result["rows"]) == 12
