"""Perf gate: streaming incremental updates must beat refit ≥ 3×.

Runs the corrupted-drift stream scenario (``repro.stream``) four ways:

* frozen — warm-started adapter, never updated after warmup;
* adaptive — incremental rank-space updates per micro-batch plus the
  drift detector re-seeding knowledge from a populated KB when the
  error distribution shifts mid-stream;
* replay — the adaptive arm re-run on the identical stream, asserted
  bit-identical (accuracy trajectory, drift firings, holdout score and
  every adapter parameter);
* refit — the same event log replayed from scratch on a pristine clone
  after every micro-batch, the O(stream-so-far) baseline the
  incremental path must beat ≥ 3× in summed update wall-clock while
  finishing in the **bit-identical** final state (so "equal final
  accuracy" is exact, not approximate).

Results are written to ``BENCH_stream.json`` at the repo root and
appended to ``benchmarks/results/perf_trajectory.jsonl`` via the
shared :class:`repro.perf.Gate` protocol.

CI smoke target::

    REPRO_BENCH_PRESET=quick python -m pytest benchmarks/bench_perf_stream.py

The assertion fails if the incremental arm is less than 3× faster, if
its final state (holdout accuracy or adapter parameters) diverges from
the refit arm, if the drift-adaptive arm does not strictly beat the
frozen arm on post-drift accuracy, if the detector fires more or less
than exactly once for the single injected shift, if no KB re-seed
happened, or if the replay is not bit-identical.
"""

import pathlib

from repro.perf import Gate
from repro.stream import render_stream_benchmark, run_stream_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

MIN_STREAM_SPEEDUP = 3.0


def test_stream_incremental_speedup(record_result):
    gate = Gate("stream", {}, min_speedup=MIN_STREAM_SPEEDUP, root=REPO_ROOT)
    scale = 0.8 if gate.preset == "quick" else 1.0
    result = run_stream_benchmark(seed=0, scale=scale)
    gate.result.update(result)
    arms = result["arms"]
    gate.write(
        speedup=result["speedup"],
        incremental_seconds=result["incremental_seconds"],
        refit_seconds=result["refit_seconds"],
        frozen_post_drift=arms["frozen"]["post_drift_accuracy"],
        adaptive_post_drift=arms["adaptive"]["post_drift_accuracy"],
        adaptive_holdout=arms["adaptive"]["holdout_accuracy"],
        drift_fired_batches=result["drift_fired_batches"],
        replay_identical=result["replay_identical"],
    )
    record_result("bench_perf_stream", render_stream_benchmark(result))

    gate.require(
        result["equal_final_accuracy"],
        "incremental and refit arms diverged on holdout accuracy "
        f"({arms['adaptive']['holdout_accuracy']:.3f} vs "
        f"{arms['refit']['holdout_accuracy']:.3f})",
    )
    gate.require(
        result["refit_state_identical"],
        "incremental and refit final adapter parameters are not "
        "bit-identical",
    )
    gate.require(
        arms["adaptive"]["post_drift_accuracy"]
        > arms["frozen"]["post_drift_accuracy"],
        "drift-adaptive arm did not beat the frozen arm post-drift "
        f"({arms['adaptive']['post_drift_accuracy']:.3f} vs "
        f"{arms['frozen']['post_drift_accuracy']:.3f})",
    )
    gate.require(
        arms["adaptive"]["holdout_accuracy"]
        > arms["frozen"]["holdout_accuracy"],
        "drift-adaptive arm did not beat the frozen arm on the "
        "post-drift holdout "
        f"({arms['adaptive']['holdout_accuracy']:.3f} vs "
        f"{arms['frozen']['holdout_accuracy']:.3f})",
    )
    gate.require(
        result["drift_fired_once"],
        "drift detector must fire exactly once for the single shift "
        f"(fired at batches {result['drift_fired_batches']})",
    )
    gate.require(
        result["reseeded"],
        "drift firing did not trigger a KB re-seed",
    )
    gate.require(
        result["replay_identical"],
        "replaying the identical stream was not bit-identical",
    )
    gate.require_speedup()
    gate.check()
