"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper by
calling the corresponding entry of :mod:`repro.eval.experiments` and
printing the rendered rows/series.  Results are also appended to
``benchmarks/results/`` so a full run leaves the regenerated paper
artifacts on disk.

Set ``REPRO_BENCH_PRESET=quick`` to run the whole harness at a reduced
scale (used by CI); the default ``paper`` preset regenerates the tables
at full benchmark scale.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.experiments import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    preset = os.environ.get("REPRO_BENCH_PRESET", "paper")
    if preset == "quick":
        return ExperimentContext.quick()
    return ExperimentContext.paper()


@pytest.fixture(scope="session")
def record_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
