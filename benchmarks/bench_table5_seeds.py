"""Paper protocol check: Table V ablation averaged over three seeds.

Section VII-A: "All experiments are conducted 3 times and the averaged
performances are reported."  This bench repeats a three-dataset slice
of the ablation across seeds and reports mean ± std per cell, checking
that the component ordering survives pipeline variance.
"""

from conftest import run_once

from repro.eval.experiments import table5_ablation
from repro.eval.repeats import repeat_experiment

DATASETS = ("di/flipkart", "dc/beer", "ave/oa_mine")


def test_table5_across_seeds(benchmark, ctx, record_result):
    def experiment(context):
        return table5_ablation(context, dataset_ids=DATASETS)

    result = run_once(
        benchmark,
        lambda: repeat_experiment(
            experiment, ctx, seeds=(0, 1, 2),
            title="Table V slice, mean ± std over 3 seeds",
        ),
    )
    record_result("table5_seeds", result["text"])
    averages = [run[-1] for run in result["runs"]]
    wins = sum(
        1 for row in averages if row["knowtrans"] > row["wo_skc_akb"]
    )
    assert wins >= 2  # the full framework wins in at least 2 of 3 seeds
