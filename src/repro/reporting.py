"""Unified console reporting for the CLI — text, quiet and JSON modes.

Every ``python -m repro`` command used to talk to the terminal through
ad-hoc ``print()`` calls, which made machine consumption impossible and
interleaved progress chatter with results.  :class:`Console` is the one
output channel:

* ``text`` (default) — progress lines (:meth:`Console.info`) and
  results (:meth:`Console.result`) both print to stdout.
* ``quiet`` (``--quiet``) — progress chatter is suppressed; only
  results print.
* ``json`` (``--json``) — nothing prints as it happens; commands also
  record their results into a structured payload (:meth:`Console.set`)
  and :meth:`Console.close` emits it as a single JSON document, so
  scripts get machine-readable output with no scraping.

Errors (:meth:`Console.error`) always go to stderr in every mode, so a
``--json`` consumer never sees diagnostics mixed into the payload.

This module reports *to the operator*; table/series rendering for
experiment text lives in :mod:`repro.eval.reporting`, and run-level
tracing in :mod:`repro.obs`.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, TextIO

__all__ = ["Console", "jsonable"]


def jsonable(value: Any) -> Any:
    """Best-effort coercion of payload values to JSON-encodable data.

    Handles the types commands actually put in payloads — numpy arrays
    and scalars, paths, sets, dataclasses — and falls back to ``str``
    so a payload can never crash the reporter.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, Path):
        return str(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy arrays and scalars
        return jsonable(tolist())
    item = getattr(value, "item", None)
    if callable(item):
        return jsonable(item())
    return str(value)


class Console:
    """One output channel for a CLI command (see module docstring)."""

    MODES = ("text", "quiet", "json")

    def __init__(
        self,
        mode: str = "text",
        stream: Optional[TextIO] = None,
        error_stream: Optional[TextIO] = None,
    ):
        if mode not in self.MODES:
            raise ValueError(f"unknown console mode {mode!r}")
        self.mode = mode
        self._stream = stream
        self._error_stream = error_stream
        self.payload: Dict[str, Any] = {}
        self._closed = False

    @classmethod
    def from_args(cls, args: Any) -> "Console":
        """Build from parsed CLI args (``--json`` wins over ``--quiet``)."""
        if getattr(args, "json", False):
            return cls("json")
        if getattr(args, "quiet", False):
            return cls("quiet")
        return cls("text")

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stdout

    @property
    def error_stream(self) -> TextIO:
        return (
            self._error_stream
            if self._error_stream is not None
            else sys.stderr
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def info(self, message: str = "") -> None:
        """Progress chatter: shown in ``text`` mode only."""
        if self.mode == "text":
            print(message, file=self.stream)

    def result(self, message: str = "") -> None:
        """A human-readable result line: shown in ``text`` and ``quiet``."""
        if self.mode != "json":
            print(message, file=self.stream)

    def error(self, message: str) -> None:
        """A diagnostic: always printed, always to stderr."""
        print(message, file=self.error_stream)

    # ------------------------------------------------------------------
    # Structured payload (emitted in ``json`` mode)
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.payload[key] = jsonable(value)

    def update(self, mapping: Dict[str, Any]) -> None:
        for key, value in mapping.items():
            self.set(key, value)

    def close(self) -> None:
        """Emit the payload as one JSON document (``json`` mode only)."""
        if self._closed:
            return
        self._closed = True
        if self.mode == "json":
            json.dump(self.payload, self.stream, indent=2, sort_keys=True)
            print(file=self.stream)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Console(mode={self.mode!r}, keys={sorted(self.payload)})"
