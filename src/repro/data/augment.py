"""Entity augmentation: aliased and pseudo-translated surface forms.

LEIA-style (SNIPPETS §2) scenario diversification for the EM/DI/ED
workloads: a deterministic per-seed alias table rewrites entity surface
forms — catalogue abbreviations, word drops, initialisms — and a
pseudo-translation cipher maps words into synthetic "languages"
(deterministic consonant/vowel substitution keyed by a language code),
so one English dataset yields multilingual-looking variants without any
external resources.  The point is the same as LEIA's: force knowledge
learned on canonical surface forms to transfer across surface
variation.

Safety invariant: augmentation **never rewrites answer-bearing text**.

* EM — only the non-key descriptive attributes of the *right* record
  are rewritten (match/mismatch is decided by key identifiers and the
  gold label is untouched);
* ED — only attributes other than the cell under question;
* DI — only attributes other than the imputed one whose value does not
  contain the gold answer as a substring (the gold brand recurring
  inside name/description must survive verbatim).

Other tasks pass through :func:`augment_dataset` unchanged.

Everything is deterministic in ``(config.seed, dataset.name)``: the
same seed always produces the same alias table and the same choice of
augmented examples — the property the workload tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs import counter
from .schema import Dataset, Example, MISSING_MARKERS, Record

__all__ = [
    "AugmentConfig",
    "AliasTable",
    "AUGMENTABLE_TASKS",
    "alias_form",
    "pseudo_translate",
    "augment_dataset",
]

#: Tasks whose examples the augmentation pass may rewrite.
AUGMENTABLE_TASKS: Tuple[str, ...] = ("em", "di", "ed")

_VOWELS = "aeiou"
_CONSONANTS = "bcdfghjklmnpqrstvwxyz"


def _stable_hash(text: str) -> int:
    """FNV-1a — deterministic across processes, unlike ``hash()``."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) % (1 << 64)
    return value


@dataclass(frozen=True)
class AugmentConfig:
    """Knobs of the entity-augmentation pass.

    ``rate`` is the fraction of examples rewritten; among those,
    ``alias_rate`` selects aliasing and the rest are pseudo-translated
    into one of ``languages`` (synthetic ``xx-*`` codes — each keys its
    own substitution cipher).
    """

    seed: int = 0
    rate: float = 0.35
    alias_rate: float = 0.5
    languages: Tuple[str, ...] = ("xx-el", "xx-ka")

    @classmethod
    def parse(cls, spec: str) -> "AugmentConfig":
        """Parse a CLI spec such as ``seed=3,rate=0.5,languages=xx-a|xx-b``.

        An empty string yields the defaults.
        """
        config = cls()
        spec = spec.strip()
        if not spec:
            return config
        for part in spec.split(","):
            if "=" not in part:
                raise ValueError(
                    f"bad augment spec fragment {part!r}; expected key=value"
                )
            key, value = (s.strip() for s in part.split("=", 1))
            if key == "seed":
                config = dc_replace(config, seed=int(value))
            elif key == "rate":
                config = dc_replace(config, rate=float(value))
            elif key == "alias_rate":
                config = dc_replace(config, alias_rate=float(value))
            elif key == "languages":
                languages = tuple(
                    lang for lang in value.split("|") if lang
                )
                if not languages:
                    raise ValueError("augment spec needs >= 1 language")
                config = dc_replace(config, languages=languages)
            else:
                raise ValueError(
                    f"unknown augment spec key {key!r}; "
                    "known: seed, rate, alias_rate, languages"
                )
        return config

    def describe(self) -> str:
        """A canonical string form — used in memo keys and dataset meta."""
        return (
            f"seed={self.seed},rate={self.rate},"
            f"alias_rate={self.alias_rate},"
            f"languages={'|'.join(self.languages)}"
        )


@lru_cache(maxsize=32)
def _cipher(language: str) -> Dict[str, str]:
    """The substitution table of one pseudo-language.

    Vowels map to vowels and consonants to consonants (rotations keyed
    by the language code), so translated words stay pronounceable and
    word shape survives — the property that makes pseudo-translation a
    meaningful stand-in for transliterated entity names.
    """
    key = _stable_hash(language)
    vowel_shift = 1 + key % (len(_VOWELS) - 1)
    consonant_shift = 1 + (key // 7) % (len(_CONSONANTS) - 1)
    table = {}
    for i, ch in enumerate(_VOWELS):
        table[ch] = _VOWELS[(i + vowel_shift) % len(_VOWELS)]
    for i, ch in enumerate(_CONSONANTS):
        table[ch] = _CONSONANTS[(i + consonant_shift) % len(_CONSONANTS)]
    return table


def pseudo_translate(text: str, language: str) -> str:
    """Deterministically map ``text`` into a synthetic language.

    Only ASCII letters are substituted; digits, punctuation, and
    whitespace pass through, so model numbers and prices — the
    answer-adjacent tokens — keep their exact surface form.
    """
    table = _cipher(language)
    return "".join(table.get(ch, ch) for ch in text)


def _drop_vowels(word: str) -> str:
    if len(word) < 4:
        return word
    head, rest = word[0], word[1:]
    stripped = head + "".join(ch for ch in rest if ch not in _VOWELS)
    return stripped if len(stripped) >= 2 else word


def alias_form(form: str, seed: int) -> str:
    """One deterministic alias of an entity surface form.

    Three catalogue-style strategies, chosen by a stable hash of
    ``(seed, form)``: vowel-dropped abbreviation, initialism of the
    leading words, or dropping the final word of a multi-word form.
    The alias of a given form under a given seed never changes — the
    alias-table determinism the tests pin.
    """
    words = form.split()
    if not words:
        return form
    strategy = _stable_hash(f"{seed}/{form}") % 3
    if strategy == 0:
        return " ".join(_drop_vowels(w) for w in words)
    if strategy == 1 and len(words) > 1:
        initials = [w[0] + "." for w in words[:-1] if w]
        return " ".join(initials + [words[-1]])
    if len(words) > 2:
        return " ".join(words[:-1])
    return " ".join(_drop_vowels(w) for w in words)


class AliasTable:
    """A memoised, seed-deterministic surface-form → alias mapping."""

    def __init__(self, seed: int):
        self.seed = seed
        self._table: Dict[str, str] = {}

    def alias(self, form: str) -> str:
        if form not in self._table:
            self._table[form] = alias_form(form, self.seed)
        return self._table[form]

    def __len__(self) -> int:
        return len(self._table)


def _rewritable(value: str) -> bool:
    """Whether a cell value is sensible augmentation material."""
    lowered = value.strip().lower()
    if lowered in MISSING_MARKERS:
        return False
    return any(ch.isalpha() for ch in value)


def _em_targets(example: Example) -> Tuple[str, Tuple[str, ...]]:
    """EM: descriptive attributes of the right record (keys excluded)."""
    record = example.inputs["right"]
    keyish = ("modelno", "model_number", "capacity")
    attrs = tuple(
        attr
        for attr in record.attributes
        if attr not in keyish and _rewritable(record.get(attr))
    )
    return "right", attrs


def _cell_targets(example: Example) -> Tuple[str, Tuple[str, ...]]:
    """ED/DI: every attribute except the one under question."""
    record = example.inputs["record"]
    questioned = example.inputs["attribute"]
    gold = example.answer
    attrs = []
    for attr in record.attributes:
        if attr == questioned:
            continue
        value = record.get(attr)
        if not _rewritable(value):
            continue
        # DI recovers the gold from other cells (brand inside the
        # product name); those occurrences must survive verbatim.
        if example.task == "di" and gold and gold.lower() in value.lower():
            continue
        attrs.append(attr)
    return "record", tuple(attrs)


def _rewrite(
    example: Example,
    aliases: AliasTable,
    config: AugmentConfig,
    rng: np.random.Generator,
) -> Optional[Example]:
    """One augmented copy of ``example``, or ``None`` if untouchable."""
    if example.task == "em":
        input_key, attrs = _em_targets(example)
    else:
        input_key, attrs = _cell_targets(example)
    if not attrs:
        return None
    attribute = attrs[int(rng.integers(len(attrs)))]
    record: Record = example.inputs[input_key]
    value = record.get(attribute)
    if rng.random() < config.alias_rate:
        mode, language = "alias", ""
        new_value = aliases.alias(value)
        counter("augment.aliased", attribute=attribute, task=example.task)
    else:
        mode = "translate"
        language = config.languages[int(rng.integers(len(config.languages)))]
        new_value = pseudo_translate(value, language)
        counter(
            "augment.translated",
            language=language,
            attribute=attribute,
            task=example.task,
        )
    if new_value == value:
        return None
    inputs = dict(example.inputs)
    inputs[input_key] = record.replace(attribute, new_value)
    meta = dict(example.meta)
    meta["augment"] = {
        "mode": mode,
        "language": language,
        "attribute": attribute,
        "original": value,
    }
    return Example(
        task=example.task,
        inputs=inputs,
        answer=example.answer,
        meta=meta,
    )


def augment_dataset(dataset: Dataset, config: AugmentConfig) -> Dataset:
    """Apply the entity-augmentation pass to one dataset.

    Non-augmentable tasks (everything outside EM/DI/ED) pass through
    unchanged.  Output is deterministic in ``(config.seed,
    dataset.name)``; examples keep their order and count — a rewritten
    example *replaces* its original, so split boundaries and label
    balance are unchanged.
    """
    if dataset.task not in AUGMENTABLE_TASKS:
        counter("augment.skipped", len(dataset.examples), task=dataset.task)
        return dataset
    rng = np.random.default_rng(
        _stable_hash(f"augment/{config.seed}/{dataset.name}") % (1 << 32)
    )
    aliases = AliasTable(config.seed)
    examples = []
    rewritten = 0
    for example in dataset.examples:
        counter("augment.examples", task=dataset.task)
        candidate = None
        if rng.random() < config.rate:
            candidate = _rewrite(example, aliases, config, rng)
        if candidate is None:
            examples.append(example)
        else:
            examples.append(candidate)
            rewritten += 1
    meta = dict(dataset.meta)
    meta["augment"] = config.describe()
    meta["augment_rewritten"] = rewritten
    return Dataset(
        name=dataset.name,
        task=dataset.task,
        examples=examples,
        label_set=dataset.label_set,
        latent_rules=dataset.latent_rules,
        meta=meta,
    )
