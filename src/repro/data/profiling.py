"""Dataset profiling: per-attribute statistics over record datasets.

Data preparation work starts with looking at the data; this module
computes the profile a practitioner (or an example script) would want
before running adaptation: per-attribute missing rates, distinct
counts, dominant format validators, and candidate vocabulary banks.
The profile is also a readable cross-check of what the rule-induction
engine will be able to discover — `dominant_validator` and
`covering_bank` mirror the evidence `repro.llm.induction` uses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..knowledge import validators
from .schema import Dataset, Example, Record

__all__ = ["AttributeProfile", "DatasetProfile", "profile_dataset"]

_FORMAT_VALIDATORS = (
    "time_12h", "iso_date", "issn", "flight_code", "pagination",
    "phone_spaced", "unit_decimal", "integer", "numeric",
)


@dataclass
class AttributeProfile:
    """Statistics for one attribute across the profiled records."""

    attribute: str
    count: int = 0
    missing: int = 0
    values: Counter = field(default_factory=Counter)
    dominant_validator: Optional[str] = None
    validator_coverage: float = 0.0
    covering_bank: Optional[str] = None

    @property
    def missing_rate(self) -> float:
        return self.missing / self.count if self.count else 0.0

    @property
    def distinct(self) -> int:
        return len(self.values)

    def top_values(self, k: int = 5) -> List[Tuple[str, int]]:
        return self.values.most_common(k)


@dataclass
class DatasetProfile:
    """The full per-attribute profile of a record dataset."""

    dataset_name: str
    task: str
    examples_profiled: int
    attributes: Dict[str, AttributeProfile]

    def render(self) -> str:
        lines = [
            f"profile of {self.dataset_name} ({self.task}, "
            f"{self.examples_profiled} examples)"
        ]
        width = max((len(a) for a in self.attributes), default=4)
        for name, prof in self.attributes.items():
            fmt = prof.dominant_validator or "-"
            bank = prof.covering_bank or "-"
            lines.append(
                f"  {name.ljust(width)}  missing={prof.missing_rate:5.1%}  "
                f"distinct={prof.distinct:4d}  format={fmt} "
                f"({prof.validator_coverage:.0%})  bank={bank}"
            )
        return "\n".join(lines)


def _records_of(example: Example) -> List[Record]:
    records = []
    for key in ("record", "left", "right"):
        value = example.inputs.get(key)
        if isinstance(value, Record):
            records.append(value)
    return records


def _dominant_validator(values: Sequence[str]) -> Tuple[Optional[str], float]:
    """The most specific validator most of the present values satisfy."""
    present = [v for v in values if v.strip()]
    if not present:
        return None, 0.0
    best: Tuple[Optional[str], float] = (None, 0.0)
    for name in _FORMAT_VALIDATORS:
        coverage = sum(
            1 for value in present if validators.validate(name, value)
        ) / len(present)
        if coverage >= 0.8:
            return name, coverage  # ordered most-specific-first
        if coverage > best[1]:
            best = (name, coverage)
    return best if best[1] >= 0.5 else (None, best[1])


def _covering_bank(
    values: Sequence[str], threshold: float = 0.8
) -> Optional[str]:
    """Smallest bank covering ≥ ``threshold`` of the distinct values.

    A dirty column still *has* a home vocabulary; requiring full
    coverage would let a single typo hide it.
    """
    present = [v.strip().lower() for v in values if v.strip()]
    if not present:
        return None
    covering = []
    for bank in validators.BANKS:
        coverage = sum(
            1 for value in present if validators.bank_contains(bank, value)
        ) / len(present)
        if coverage >= threshold:
            covering.append((len(validators.BANKS[bank]), bank))
    if not covering:
        return None
    return min(covering)[1]


def profile_dataset(
    dataset: Dataset, sample: Optional[int] = None
) -> DatasetProfile:
    """Profile the record-bearing attributes of a dataset.

    Non-record tasks (CTA, AVE, SM) have no row structure to profile
    and yield an empty attribute map.
    """
    examples = dataset.examples[: sample or len(dataset.examples)]
    profiles: Dict[str, AttributeProfile] = {}
    for example in examples:
        for record in _records_of(example):
            for attribute, value in record:
                prof = profiles.setdefault(
                    attribute, AttributeProfile(attribute=attribute)
                )
                prof.count += 1
                if record.is_missing(attribute):
                    prof.missing += 1
                else:
                    prof.values[value.strip().lower()] += 1
    for prof in profiles.values():
        non_missing = list(prof.values.elements())
        prof.dominant_validator, prof.validator_coverage = _dominant_validator(
            non_missing
        )
        prof.covering_bank = _covering_bank(non_missing)
    return DatasetProfile(
        dataset_name=dataset.name,
        task=dataset.task,
        examples_profiled=len(examples),
        attributes=profiles,
    )
