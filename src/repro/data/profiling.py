"""Dataset profiling: per-attribute statistics over record datasets.

Data preparation work starts with looking at the data; this module
computes the profile a practitioner (or an example script) would want
before running adaptation: per-attribute missing rates, distinct
counts, dominant format validators, and candidate vocabulary banks.
The profile is also a readable cross-check of what the rule-induction
engine will be able to discover — `dominant_validator` and
`covering_bank` mirror the evidence `repro.llm.induction` uses.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..knowledge import validators
from .schema import Dataset, Example, Record

__all__ = [
    "AttributeProfile",
    "DatasetProfile",
    "profile_dataset",
    "FEATURE_VERSION",
    "feature_names",
]

#: Version stamp of the :meth:`DatasetProfile.feature_vector` layout.
#: Stored alongside every knowledge-base entry so vectors produced by a
#: different layout are never compared component-wise.
FEATURE_VERSION = 1

_FORMAT_VALIDATORS = (
    "time_12h", "iso_date", "issn", "flight_code", "pagination",
    "phone_spaced", "unit_decimal", "integer", "numeric",
)


@dataclass
class AttributeProfile:
    """Statistics for one attribute across the profiled records."""

    attribute: str
    count: int = 0
    missing: int = 0
    values: Counter = field(default_factory=Counter)
    dominant_validator: Optional[str] = None
    validator_coverage: float = 0.0
    covering_bank: Optional[str] = None

    @property
    def missing_rate(self) -> float:
        return self.missing / self.count if self.count else 0.0

    @property
    def distinct(self) -> int:
        return len(self.values)

    def top_values(self, k: int = 5) -> List[Tuple[str, int]]:
        return self.values.most_common(k)


def _feature_basis() -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """The fixed, order-stable basis the feature vector is laid out on."""
    return tuple(_FORMAT_VALIDATORS), tuple(sorted(validators.BANKS))


def feature_names() -> List[str]:
    """Component names of :meth:`DatasetProfile.feature_vector`, in order."""
    validator_names, bank_names = _feature_basis()
    return (
        [
            "log_examples",
            "log_attributes",
            "missing_rate_mean",
            "missing_rate_max",
            "log_distinct_mean",
            "log_distinct_max",
            "validator_fraction",
            "validator_coverage_mean",
            "bank_fraction",
            "log_distinct_answers",
            "log_answer_length",
            "answer_entropy",
        ]
        + [f"validator:{name}" for name in validator_names]
        + [f"bank:{name}" for name in bank_names]
    )


@dataclass
class DatasetProfile:
    """The full per-attribute profile of a record dataset."""

    dataset_name: str
    task: str
    examples_profiled: int
    attributes: Dict[str, AttributeProfile]
    distinct_answers: int = 0
    mean_answer_length: float = 0.0
    answer_entropy: float = 0.0

    def feature_vector(self) -> np.ndarray:
        """A fixed-length numeric summary of the profile.

        The vector is the retrieval index of the persistent knowledge
        base (:mod:`repro.knowledge.kb`): two datasets whose profiles
        are close in cosine distance are likely to respond to the same
        dataset-informed knowledge.  The layout is order-stable (see
        :func:`feature_names`) and independent of how many attributes
        the dataset happens to have — per-attribute statistics enter
        only through means/maxima and through fixed histograms over the
        format-validator and vocabulary-bank inventories.  Every
        component is finite: empty profiles (CTA/AVE/SM have no record
        structure) fall back to the answer-distribution features, and
        divisions guard their denominators, so the result is NaN-free
        by construction.
        """
        attrs = [
            self.attributes[name] for name in sorted(self.attributes)
        ]
        count = len(attrs)
        missing = [prof.missing_rate for prof in attrs]
        distinct = [math.log1p(prof.distinct) for prof in attrs]
        coverage = [prof.validator_coverage for prof in attrs]
        validator_names, bank_names = _feature_basis()

        def _mean(values: Sequence[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        def _frac(predicate) -> float:
            return (
                sum(1 for prof in attrs if predicate(prof)) / count
                if count
                else 0.0
            )

        base = [
            math.log1p(max(self.examples_profiled, 0)),
            math.log1p(count),
            _mean(missing),
            max(missing, default=0.0),
            _mean(distinct),
            max(distinct, default=0.0),
            _frac(lambda p: p.dominant_validator is not None),
            _mean(coverage),
            _frac(lambda p: p.covering_bank is not None),
            math.log1p(max(self.distinct_answers, 0)),
            math.log1p(max(self.mean_answer_length, 0.0)),
            max(self.answer_entropy, 0.0),
        ]
        validator_hist = [
            _frac(lambda p, n=name: p.dominant_validator == n)
            for name in validator_names
        ]
        bank_hist = [
            _frac(lambda p, n=name: p.covering_bank == n)
            for name in bank_names
        ]
        vector = np.asarray(
            base + validator_hist + bank_hist, dtype=np.float64
        )
        return np.nan_to_num(vector, nan=0.0, posinf=0.0, neginf=0.0)

    def render(self) -> str:
        lines = [
            f"profile of {self.dataset_name} ({self.task}, "
            f"{self.examples_profiled} examples)"
        ]
        width = max((len(a) for a in self.attributes), default=4)
        for name, prof in self.attributes.items():
            fmt = prof.dominant_validator or "-"
            bank = prof.covering_bank or "-"
            lines.append(
                f"  {name.ljust(width)}  missing={prof.missing_rate:5.1%}  "
                f"distinct={prof.distinct:4d}  format={fmt} "
                f"({prof.validator_coverage:.0%})  bank={bank}"
            )
        return "\n".join(lines)


def _records_of(example: Example) -> List[Record]:
    records = []
    for key in ("record", "left", "right"):
        value = example.inputs.get(key)
        if isinstance(value, Record):
            records.append(value)
    return records


def _dominant_validator(values: Sequence[str]) -> Tuple[Optional[str], float]:
    """The most specific validator most of the present values satisfy."""
    present = [v for v in values if v.strip()]
    if not present:
        return None, 0.0
    best: Tuple[Optional[str], float] = (None, 0.0)
    for name in _FORMAT_VALIDATORS:
        coverage = sum(
            1 for value in present if validators.validate(name, value)
        ) / len(present)
        if coverage >= 0.8:
            return name, coverage  # ordered most-specific-first
        if coverage > best[1]:
            best = (name, coverage)
    return best if best[1] >= 0.5 else (None, best[1])


def _covering_bank(
    values: Sequence[str], threshold: float = 0.8
) -> Optional[str]:
    """Smallest bank covering ≥ ``threshold`` of the distinct values.

    A dirty column still *has* a home vocabulary; requiring full
    coverage would let a single typo hide it.
    """
    present = [v.strip().lower() for v in values if v.strip()]
    if not present:
        return None
    covering = []
    for bank in validators.BANKS:
        coverage = sum(
            1 for value in present if validators.bank_contains(bank, value)
        ) / len(present)
        if coverage >= threshold:
            covering.append((len(validators.BANKS[bank]), bank))
    if not covering:
        return None
    return min(covering)[1]


def profile_dataset(
    dataset: Dataset, sample: Optional[int] = None
) -> DatasetProfile:
    """Profile the record-bearing attributes of a dataset.

    Non-record tasks (CTA, AVE, SM) have no row structure to profile
    and yield an empty attribute map.
    """
    examples = dataset.examples[: sample or len(dataset.examples)]
    profiles: Dict[str, AttributeProfile] = {}
    for example in examples:
        for record in _records_of(example):
            for attribute, value in record:
                prof = profiles.setdefault(
                    attribute, AttributeProfile(attribute=attribute)
                )
                prof.count += 1
                if record.is_missing(attribute):
                    prof.missing += 1
                else:
                    prof.values[value.strip().lower()] += 1
    for prof in profiles.values():
        non_missing = list(prof.values.elements())
        prof.dominant_validator, prof.validator_coverage = (
            _dominant_validator(non_missing)
        )
        prof.covering_bank = _covering_bank(non_missing)
    answers = Counter(
        example.answer.strip().lower() for example in examples
    )
    total = sum(answers.values())
    entropy = 0.0
    if total:
        for freq in answers.values():
            p = freq / total
            entropy -= p * math.log(p)
    return DatasetProfile(
        dataset_name=dataset.name,
        task=dataset.task,
        examples_profiled=len(examples),
        attributes=profiles,
        distinct_answers=len(answers),
        mean_answer_length=(
            sum(len(answer) * freq for answer, freq in answers.items())
            / total
            if total
            else 0.0
        ),
        answer_entropy=entropy,
    )
