"""Dataset import/export — run KnowTrans on your own data.

The benchmark datasets are synthesised, but the library is meant to be
pointed at real tables.  This module reads and writes datasets as JSON
Lines (one example per line) and offers task-specific constructors that
turn plain dict rows into :class:`~repro.data.schema.Example` payloads:

* :func:`matching_dataset` — EM from (left row, right row, label) triples
* :func:`cell_dataset` — ED/DC/DI from (row, attribute, answer) triples
* :func:`column_dataset` — CTA from (values, label) pairs
* :func:`extraction_dataset` — AVE from (text, attribute, value) triples
* :func:`schema_dataset` — SM from column-pair descriptions
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .schema import Dataset, Example, Record

__all__ = [
    "save_jsonl",
    "load_jsonl",
    "matching_dataset",
    "cell_dataset",
    "column_dataset",
    "extraction_dataset",
    "schema_dataset",
]

PathLike = Union[str, pathlib.Path]


def _encode_inputs(inputs: Dict) -> Dict:
    encoded = {}
    for key, value in inputs.items():
        if isinstance(value, Record):
            encoded[key] = {"__record__": value.as_dict()}
        elif isinstance(value, tuple):
            encoded[key] = {"__tuple__": list(value)}
        else:
            encoded[key] = value
    return encoded


def _decode_inputs(inputs: Dict) -> Dict:
    decoded = {}
    for key, value in inputs.items():
        if isinstance(value, dict) and "__record__" in value:
            decoded[key] = Record.from_dict(value["__record__"])
        elif isinstance(value, dict) and "__tuple__" in value:
            decoded[key] = tuple(value["__tuple__"])
        else:
            decoded[key] = value
    return decoded


def save_jsonl(dataset: Dataset, path: PathLike) -> None:
    """Write a dataset as JSON Lines with a leading header record."""
    path = pathlib.Path(path)
    with path.open("w") as handle:
        header = {
            "__header__": True,
            "name": dataset.name,
            "task": dataset.task,
            "label_set": list(dataset.label_set),
            "latent_rules": list(dataset.latent_rules),
        }
        handle.write(json.dumps(header) + "\n")
        for example in dataset.examples:
            handle.write(
                json.dumps(
                    {
                        "task": example.task,
                        "inputs": _encode_inputs(example.inputs),
                        "answer": example.answer,
                        "meta": example.meta,
                    }
                )
                + "\n"
            )


def load_jsonl(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`save_jsonl`."""
    path = pathlib.Path(path)
    examples: List[Example] = []
    header: Optional[Dict] = None
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("__header__"):
                header = payload
                continue
            examples.append(
                Example(
                    task=payload["task"],
                    inputs=_decode_inputs(payload["inputs"]),
                    answer=payload["answer"],
                    meta=payload.get("meta", {}),
                )
            )
    if header is None:
        raise ValueError(f"{path} has no dataset header line")
    return Dataset(
        name=header["name"],
        task=header["task"],
        examples=examples,
        label_set=tuple(header.get("label_set", ())),
        latent_rules=tuple(header.get("latent_rules", ())),
    )


# ---------------------------------------------------------------------------
# Task-specific constructors over plain Python rows
# ---------------------------------------------------------------------------
def matching_dataset(
    name: str,
    pairs: Iterable[Tuple[Dict[str, str], Dict[str, str], bool]],
) -> Dataset:
    """Entity matching from (left row, right row, is_match) triples."""
    examples = [
        Example(
            task="em",
            inputs={
                "left": Record.from_dict(left),
                "right": Record.from_dict(right),
            },
            answer="yes" if is_match else "no",
        )
        for left, right, is_match in pairs
    ]
    return Dataset(name, "em", examples, label_set=("yes", "no"))


def cell_dataset(
    name: str,
    task: str,
    rows: Iterable[Tuple[Dict[str, str], str, str]],
) -> Dataset:
    """ED / DC / DI from (row, attribute, answer) triples.

    For ED the answer is ``"yes"``/``"no"``; for DC the corrected value;
    for DI the value to impute (the cell itself should hold a missing
    marker).
    """
    if task not in ("ed", "dc", "di"):
        raise ValueError(f"cell_dataset supports ed/dc/di, got {task!r}")
    examples = [
        Example(
            task=task,
            inputs={"record": Record.from_dict(row), "attribute": attribute},
            answer=answer,
        )
        for row, attribute, answer in rows
    ]
    label_set = ("yes", "no") if task == "ed" else ()
    return Dataset(name, task, examples, label_set=label_set)


def column_dataset(
    name: str,
    columns: Iterable[Tuple[Sequence[str], str]],
    label_set: Sequence[str] = (),
) -> Dataset:
    """CTA from (cell values, type label) pairs."""
    examples = [
        Example(task="cta", inputs={"values": tuple(values)}, answer=label)
        for values, label in columns
    ]
    labels = tuple(label_set) or tuple(
        sorted({example.answer for example in examples})
    )
    return Dataset(name, "cta", examples, label_set=labels)


def extraction_dataset(
    name: str,
    rows: Iterable[Tuple[str, str, str]],
) -> Dataset:
    """AVE from (text, attribute, value-or-'n/a') triples."""
    examples = [
        Example(
            task="ave", inputs={"text": text, "attribute": attribute}, answer=value
        )
        for text, attribute, value in rows
    ]
    return Dataset(name, "ave", examples)


def schema_dataset(
    name: str,
    pairs: Iterable[Tuple[Tuple[str, str], Tuple[str, str], bool]],
) -> Dataset:
    """SM from ((name, desc), (name, desc), is_match) triples."""
    examples = [
        Example(
            task="sm",
            inputs={
                "left_name": left[0],
                "left_desc": left[1],
                "right_name": right[0],
                "right_desc": right[1],
            },
            answer="yes" if is_match else "no",
        )
        for left, right, is_match in pairs
    ]
    return Dataset(name, "sm", examples, label_set=("yes", "no"))
