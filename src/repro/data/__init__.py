"""Data substrate: schemas, vocab banks, splits, generators, and IO."""

from . import io, profiling
from .schema import Dataset, Example, Profile, Record, Table
from .splits import DatasetSplits, few_shot_slice, split_dataset

__all__ = [
    "io",
    "profiling",
    "Dataset",
    "Example",
    "Profile",
    "Record",
    "Table",
    "DatasetSplits",
    "few_shot_slice",
    "split_dataset",
]
