"""Train / few-shot / validation / test splitting.

The paper's few-shot setting (Table I) gives each downstream dataset a
large training pool, a 20-example few-shot subset, and a test set.  Per
Section VI-B the AKB validation set is the same as the few-shot data, so
:class:`DatasetSplits` exposes ``validation`` as an alias by default; the
scalability analysis (Fig. 4) instead draws growing slices from the
training pool via :func:`few_shot_slice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .schema import Dataset

__all__ = ["DatasetSplits", "split_dataset", "few_shot_slice"]


@dataclass
class DatasetSplits:
    """The evaluation views over one dataset.

    ``validation_override`` lets experiments cap the AKB validation set
    when the "few-shot" slice grows large (the Fig. 4 scalability axis):
    scoring every knowledge candidate against hundreds of examples per
    refinement round adds nothing but wall-clock there.  At the paper's
    20-shot setting the override is never used.
    """

    train: Dataset
    few_shot: Dataset
    test: Dataset
    validation_override: Optional[Dataset] = None

    @property
    def validation(self) -> Dataset:
        """AKB validation data — the few-shot set itself (paper VI-B)."""
        if self.validation_override is not None:
            return self.validation_override
        return self.few_shot

    @property
    def name(self) -> str:
        return self.train.name

    @property
    def task(self) -> str:
        return self.train.task


def _interleave_classes(
    dataset: Dataset, indices: np.ndarray
) -> np.ndarray:
    """Reorder ``indices`` so classes alternate at the front.

    A 20-example few-shot draw from a 25%-positive matching dataset
    would otherwise frequently contain almost no positives, making
    binary F1 degenerate — the paper's few-shot sets are curated to
    avoid this.  Datasets with open answer spaces pass through as-is.
    """
    answers = [dataset.examples[int(i)].answer for i in indices]
    distinct = sorted(set(answers))
    if len(distinct) < 2 or len(distinct) > 10:
        return indices
    buckets = {answer: [] for answer in distinct}
    for position, answer in zip(indices, answers):
        buckets[answer].append(position)
    interleaved = []
    cursors = {answer: 0 for answer in distinct}
    remaining = len(indices)
    while remaining:
        for answer in distinct:
            bucket = buckets[answer]
            cursor = cursors[answer]
            if cursor < len(bucket):
                interleaved.append(bucket[cursor])
                cursors[answer] += 1
                remaining -= 1
    return np.array(interleaved)


def split_dataset(
    dataset: Dataset,
    few_shot: int = 20,
    test_fraction: float = 0.4,
    seed: int = 0,
) -> DatasetSplits:
    """Partition a generated dataset into train / few-shot / test views.

    The few-shot set is drawn from the training pool (so ``train``
    ⊇ ``few_shot`` never overlaps ``test``).
    """
    if len(dataset.examples) < few_shot + 2:
        raise ValueError(
            f"dataset {dataset.name} too small ({len(dataset.examples)}) "
            f"for a {few_shot}-shot split"
        )
    rng = np.random.default_rng([seed & 0xFFFFFFFF, len(dataset.examples)])
    order = rng.permutation(len(dataset.examples))
    n_test = max(1, int(round(test_fraction * len(order))))
    # The test split is a plain random sample (natural class mix, like
    # the paper's test sets); only the few-shot prefix is interleaved
    # so a 20-shot draw stays class-balanced.
    test_idx = order[:n_test]
    train_idx = _interleave_classes(dataset, order[n_test:])
    few_idx = train_idx[: min(few_shot, len(train_idx))]
    return DatasetSplits(
        train=dataset.subset(train_idx, suffix=":train"),
        few_shot=dataset.subset(few_idx, suffix=":few"),
        test=dataset.subset(test_idx, suffix=":test"),
    )


def few_shot_slice(splits: DatasetSplits, count: int) -> Dataset:
    """First ``count`` training examples — the Fig. 4 growing-label axis."""
    return splits.train.head(count, suffix=f":slice{count}")
