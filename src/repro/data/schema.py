"""Core data types shared by every dataset and task.

The paper unifies all seven data preparation tasks into a text-to-text
form over tabular inputs; these types are the pre-serialisation
representation.  An :class:`Example` carries a task-specific ``inputs``
payload (records, attribute names, column values, free text) plus the
reference ``answer`` string; :mod:`repro.tasks` turns it into a prompt
and candidate responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Record", "Table", "Example", "Dataset", "MISSING_MARKERS"]

#: Surface forms that denote a missing value in raw data.
MISSING_MARKERS: Tuple[str, ...] = ("nan", "n/a", "", "null", "none", "missing")


@dataclass(frozen=True)
class Record:
    """One table row: an ordered attribute → value mapping."""

    values: Tuple[Tuple[str, str], ...]

    @staticmethod
    def from_dict(mapping: Dict[str, str]) -> "Record":
        return Record(tuple((str(k), str(v)) for k, v in mapping.items()))

    @property
    def attributes(self) -> Tuple[str, ...]:
        return tuple(attr for attr, __ in self.values)

    def get(self, attribute: str, default: str = "") -> str:
        for attr, value in self.values:
            if attr == attribute:
                return value
        return default

    def __contains__(self, attribute: str) -> bool:
        return any(attr == attribute for attr, __ in self.values)

    def replace(self, attribute: str, new_value: str) -> "Record":
        """Return a copy with one attribute's value replaced."""
        if attribute not in self:
            raise KeyError(f"record has no attribute {attribute!r}")
        return Record(
            tuple(
                (attr, new_value if attr == attribute else value)
                for attr, value in self.values
            )
        )

    def without(self, attributes: Sequence[str]) -> "Record":
        """Return a copy that drops the given attributes."""
        dropped = set(attributes)
        return Record(
            tuple((a, v) for a, v in self.values if a not in dropped)
        )

    def as_dict(self) -> Dict[str, str]:
        return dict(self.values)

    def is_missing(self, attribute: str) -> bool:
        return self.get(attribute).strip().lower() in MISSING_MARKERS

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self.values)


@dataclass
class Table:
    """A named collection of homogeneous records."""

    name: str
    columns: Tuple[str, ...]
    rows: List[Record] = field(default_factory=list)

    def column_values(self, column: str) -> List[str]:
        return [row.get(column) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class Example:
    """One supervised instance of a data preparation task.

    ``inputs`` payloads per task:

    * EM:  ``{"left": Record, "right": Record}``
    * DI:  ``{"record": Record, "attribute": str}``
    * SM:  ``{"left_name", "left_desc", "right_name", "right_desc"}``
    * ED:  ``{"record": Record, "attribute": str}``
    * DC:  ``{"record": Record, "attribute": str}``
    * CTA: ``{"values": tuple of cell strings}``
    * AVE: ``{"text": str, "attribute": str}``
    * QA:  ``{"record": Record, "attribute": str, "entity": str}``
    """

    task: str
    inputs: Dict[str, Any]
    answer: str
    meta: Dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:  # inputs is a dict → identity hash is fine
        return id(self)


@dataclass
class Dataset:
    """A named dataset bound to one task.

    ``latent_rules`` documents the generative quirks the synthesiser
    injected (the "dataset-informed knowledge" AKB is supposed to
    rediscover) — used by tests and never shown to models.
    """

    name: str
    task: str
    examples: List[Example]
    label_set: Tuple[str, ...] = ()
    latent_rules: Tuple[str, ...] = ()
    meta: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self) -> Iterator[Example]:
        return iter(self.examples)

    def subset(self, indices: Sequence[int], suffix: str = "") -> "Dataset":
        return Dataset(
            name=self.name + suffix,
            task=self.task,
            examples=[self.examples[i] for i in indices],
            label_set=self.label_set,
            latent_rules=self.latent_rules,
            meta=dict(self.meta),
        )

    def head(self, count: int, suffix: str = "") -> "Dataset":
        return self.subset(range(min(count, len(self.examples))), suffix)

    def positive_count(self, positive: str = "yes") -> int:
        """Number of positive-class examples (binary tasks)."""
        return sum(1 for ex in self.examples if ex.answer == positive)


@dataclass(frozen=True)
class Profile:
    """Scale profile: how large generated datasets and training runs are.

    ``ci`` keeps the test suite fast; ``paper`` is used by the benchmark
    harness to regenerate the tables.  ``scale`` multiplies per-dataset
    base sizes.
    """

    name: str = "ci"
    scale: float = 1.0
    few_shot: int = 20
    upstream_epochs: int = 3
    patch_epochs: int = 3
    finetune_epochs: int = 8

    @staticmethod
    def ci() -> "Profile":
        return Profile(name="ci", scale=0.5, finetune_epochs=6)

    @staticmethod
    def paper() -> "Profile":
        return Profile(name="paper", scale=2.0, finetune_epochs=10)

    def sized(self, base: int, minimum: int = 8) -> int:
        return max(minimum, int(round(base * self.scale)))
