"""Table-QA datasets: generative lookup over serialized rows.

Two datasets for the ``qa`` family (KBLaM-style, SNIPPETS §1):

* ``qa/products`` — a synthetic product catalogue.  This is the repo's
  **large-scale stress generator** (``scale="large"``): its paper-preset
  row count is ~100x the discriminative datasets (50k rows) and its
  attribute banks are built programmatically so that full column
  vocabularies — the QA answer pools — land in the 100–1000 candidate
  range the family exists to exercise.
* ``qa/beers`` — a standard-sized QA view over the same clean
  craft-beer rows the ED/DC generators corrupt, so the QA family shares
  an entity space with the discriminative tasks.

Each example asks ``what is the {attribute} of {entity}`` about one
row.  The generator computes ``answer_pools`` (attribute → sorted
distinct column values over the whole dataset), stores them in
``dataset.meta["answer_pools"]``, and stamps the matching pool tuple on
every ``example.meta["pool"]`` (a shared reference, so the per-example
cost is one pointer) for call paths that do not thread the dataset —
the stream engine's training and accuracy loops.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...obs import counter
from ..schema import Dataset, Example, Record
from . import beer
from .common import make_rng, model_number
from .registry import register_generator

__all__ = ["generate", "generate_beers", "PRODUCT_ATTRIBUTES", "BEER_ATTRIBUTES"]


def _bank(parts_a: Sequence[str], parts_b: Sequence[str]) -> Tuple[str, ...]:
    """The cross product of two word lists — a large, deterministic bank."""
    return tuple(f"{a} {b}" for a in parts_a for b in parts_b)


# Programmatic banks: sized so full column vocabularies reach the
# 100-1000 candidate range once the row count saturates them.
_BRANDS = _bank(
    (
        "acme", "nova", "zenith", "apex", "orion", "vertex", "lumen",
        "quasar", "borealis", "solstice", "meridian", "cascade", "summit",
        "atlas", "pioneer", "beacon", "harbor", "crestline", "ridgeway",
        "stellar",
    ),
    (
        "labs", "works", "industries", "dynamics", "systems", "gear",
        "craft", "forge", "supply", "collective", "union", "corp",
    ),
)

_LINES = _bank(
    (
        "ultra", "pro", "classic", "compact", "prime", "elite", "sport",
        "urban", "alpine", "coastal", "heritage", "fusion", "quantum",
        "aero", "terra", "polar",
    ),
    (
        "series", "edition", "line", "wave", "pulse", "core", "flex",
        "shift", "drift", "spark", "trail", "craft", "motion", "current",
    ),
)

_CATEGORIES = (
    "headphones", "speaker", "keyboard", "mouse", "monitor", "charger",
    "backpack", "jacket", "lantern", "tent", "blender", "kettle",
    "camera", "tripod", "router", "drone", "scooter", "helmet",
    "wristwatch", "thermostat", "projector", "microphone", "turntable",
    "binoculars",
)

_COLORS = _bank(
    (
        "midnight", "arctic", "forest", "ember", "dusty", "pale",
        "electric", "deep", "matte", "glacier", "sunset", "storm",
    ),
    (
        "black", "white", "blue", "green", "red", "grey", "silver",
        "gold", "copper", "teal", "violet", "amber",
    ),
)

_MATERIALS = _bank(
    (
        "brushed", "anodized", "recycled", "woven", "polished",
        "hammered", "reinforced", "laminated", "waxed", "coated",
    ),
    (
        "aluminum", "steel", "titanium", "walnut", "bamboo", "canvas",
        "leather", "nylon", "carbon", "ceramic", "cork", "wool",
    ),
)

_ORIGINS = _bank(
    (
        "north", "south", "east", "west", "port", "lake", "fort",
        "mount", "new", "old",
    ),
    (
        "haven", "field", "bridge", "harbor", "ridge", "dale", "grove",
        "crossing", "junction", "falls", "mills", "hollow",
    ),
)

#: The attributes a ``qa/products`` question may target.
PRODUCT_ATTRIBUTES: Tuple[str, ...] = (
    "brand", "line", "category", "color", "material", "origin", "price",
)

#: The attributes a ``qa/beers`` question may target.
BEER_ATTRIBUTES: Tuple[str, ...] = (
    "style", "city", "state", "brewery_name",
)

_LATENT_RULES: Tuple[str, ...] = (
    "every answer is the exact cell value of the questioned attribute",
    "answer pools are full column vocabularies, not curated shortlists",
)


def _pick(rng: np.random.Generator, bank: Sequence[str]) -> str:
    return bank[int(rng.integers(len(bank)))]


def _product_record(rng: np.random.Generator) -> Tuple[Record, str]:
    """One clean catalogue row plus its entity surface form."""
    brand = _pick(rng, _BRANDS)
    line = _pick(rng, _LINES)
    name = f"{brand} {line} {model_number(rng)}"
    record = Record.from_dict(
        {
            "name": name,
            "brand": brand,
            "line": line,
            "category": _pick(rng, _CATEGORIES),
            "color": _pick(rng, _COLORS),
            "material": _pick(rng, _MATERIALS),
            "origin": _pick(rng, _ORIGINS),
            "price": str(int(rng.integers(19, 999))),
        }
    )
    return record, name


def _assemble(
    name: str,
    rows: List[Tuple[Record, str]],
    attributes: Tuple[str, ...],
    rng: np.random.Generator,
) -> Dataset:
    """Two-pass build: collect column vocabularies, then emit examples."""
    vocabularies: Dict[str, set] = {attr: set() for attr in attributes}
    for record, __entity in rows:
        for attr in attributes:
            vocabularies[attr].add(record.get(attr))
    pools: Dict[str, Tuple[str, ...]] = {
        attr: tuple(sorted(values)) for attr, values in vocabularies.items()
    }
    examples: List[Example] = []
    for i, (record, entity) in enumerate(rows):
        attribute = attributes[int(rng.integers(len(attributes)))]
        pool = pools[attribute]
        examples.append(
            Example(
                task="qa",
                inputs={
                    "record": record,
                    "attribute": attribute,
                    "entity": entity,
                },
                answer=record.get(attribute),
                meta={"id": f"{name}/{i}", "pool": pool},
            )
        )
    counter("qa.rows", len(examples), dataset=name)
    counter(
        "qa.pool_vocab",
        sum(len(pool) for pool in pools.values()),
        dataset=name,
    )
    return Dataset(
        name=name,
        task="qa",
        examples=examples,
        latent_rules=_LATENT_RULES,
        meta={"answer_pools": pools},
    )


def generate(count: int, seed: int = 0) -> Dataset:
    """``qa/products`` — the ~100x-scale catalogue QA dataset."""
    rng = make_rng(seed, "qa/products")
    rows = [_product_record(rng) for __ in range(count)]
    return _assemble("qa/products", rows, PRODUCT_ATTRIBUTES, rng)


def generate_beers(count: int, seed: int = 0) -> Dataset:
    """``qa/beers`` — QA over the clean craft-beer catalogue rows."""
    rng = make_rng(seed, "qa/beers")
    rows = []
    for __ in range(count):
        record = beer.clean_record(rng)
        rows.append((record, record.get("beer_name")))
    return _assemble("qa/beers", rows, BEER_ATTRIBUTES, rng)


register_generator(
    "qa/products",
    generate,
    task="qa",
    base_count=500,
    scale="large",
    description=(
        "synthetic product catalogue; paper preset runs ~100x rows to "
        "stress the batched engine, artifact store, and KB profiling"
    ),
)
register_generator(
    "qa/beers",
    generate_beers,
    task="qa",
    base_count=280,
    description="QA view over the clean craft-beer catalogue rows",
)
