"""Flipkart — data imputation (paper: DI / Flipkart).

E-commerce listings whose ``brand`` cell is missing; the answer is
recoverable because the brand opens the product name and recurs inside
the marketing description — the exact patterns the paper's searched
Flipkart knowledge describes ("the brand is often mentioned at the
beginning or within the product name … repeated within the description").
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...data import vocab
from ..schema import Dataset, Example, Record
from .common import make_rng, maybe, price_string

__all__ = ["generate"]

_CATEGORIES = (
    "jewellery", "automotive", "footwear", "home decor", "computers",
    "clothing", "watches", "home furnishing", "kitchen", "toys",
)


def _listing(rng: np.random.Generator) -> Record:
    brand = vocab.choice(rng, vocab.RETAIL_BRANDS)
    product = vocab.choice(rng, vocab.RETAIL_PRODUCTS)
    color = vocab.choice(rng, vocab.COLORS)
    material = vocab.choice(rng, vocab.MATERIALS)
    price = price_string(rng, 199, 4999)
    name = f"{brand} {color} {material} {product}"
    description = (
        f"buy {name} for rs.{price} online. "
        f"{brand} {product} at best prices with free shipping"
    )
    if maybe(rng, 0.3):  # some listings only carry the brand in the name
        description = f"buy {color} {material} {product} for rs.{price} online"
    return Record.from_dict(
        {
            "product_name": name,
            "description": description,
            "retail_price": price,
            "product_category": vocab.choice(rng, _CATEGORIES),
            "brand": brand,
        }
    )


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the Flipkart brand-imputation dataset."""
    rng = make_rng(seed, "di/flipkart")
    examples: List[Example] = []
    for __ in range(count):
        record = _listing(rng)
        brand = record.get("brand")
        examples.append(
            Example(
                task="di",
                inputs={
                    "record": record.replace("brand", "nan"),
                    "attribute": "brand",
                },
                answer=brand,
            )
        )
    return Dataset(
        name="flipkart",
        task="di",
        examples=examples,
        latent_rules=(
            "the brand opens the product name",
            "the description usually repeats the brand",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "di/flipkart",
    generate,
    task="di",
    base_count=280,
    description="e-commerce listings with missing brand cells",
)
