"""Flights — error detection (paper: ED / Flights).

Flight status records whose clean cells follow strict conventions:
12-hour times with month-day suffixes (``7:10 a.m. dec 1``), dashed
flight codes (``aa-1007-ord-phx``).  Injected errors: 24-hour time
strings, missing markers, typos in the flight code / datasource —
exactly the error families the paper's searched Flights knowledge
enumerates (format consistency, missing values, contextual errors).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...data import vocab
from ..schema import Dataset, Example, Record
from .common import make_rng, maybe

__all__ = ["generate", "clean_record", "TIME_ATTRIBUTES"]

_MONTHS = ("jan", "feb", "mar", "apr", "may", "jun",
           "jul", "aug", "sep", "oct", "nov", "dec")
_SOURCES = ("flightview", "flightaware", "flightstats", "airtravelcenter",
            "myrateplan", "orbitz", "travelocity")

TIME_ATTRIBUTES = (
    "scheduled_departure",
    "actual_departure",
    "scheduled_arrival",
    "actual_arrival",
)


def _time_string(rng: np.random.Generator, month: str, day: int) -> str:
    hour = int(rng.integers(1, 13))
    minute = int(rng.integers(0, 60))
    half = "a.m." if maybe(rng, 0.5) else "p.m."
    return f"{hour}:{minute:02d} {half} {month} {day}"


def _twenty_four_hour(rng: np.random.Generator, month: str, day: int) -> str:
    hour = int(rng.integers(0, 24))
    minute = int(rng.integers(0, 60))
    return f"{hour:02d}:{minute:02d} {month} {day}"


def clean_record(rng: np.random.Generator) -> Record:
    """A fully clean flight-status record."""
    airline = vocab.choice(rng, vocab.AIRLINES)
    origin, destination = vocab.sample_distinct(rng, vocab.AIRPORTS, 2)
    month = _MONTHS[int(rng.integers(12))]
    day = int(rng.integers(1, 29))
    return Record.from_dict(
        {
            "datasource": vocab.choice(rng, _SOURCES),
            "flight": f"{airline}-{int(rng.integers(100, 9999))}-{origin}-{destination}",
            "scheduled_departure": _time_string(rng, month, day),
            "actual_departure": _time_string(rng, month, day),
            "scheduled_arrival": _time_string(rng, month, day),
            "actual_arrival": _time_string(rng, month, day),
        }
    )


def _corrupt(
    rng: np.random.Generator, record: Record, attribute: str
) -> Tuple[Record, str]:
    value = record.get(attribute)
    if attribute in TIME_ATTRIBUTES:
        roll = rng.random()
        if roll < 0.45:  # 24-hour format violation
            month = value.split()[-2]
            day = int(value.split()[-1])
            return record.replace(
                attribute, _twenty_four_hour(rng, month, day)
            ), "format"
        if roll < 0.8:
            return record.replace(attribute, "nan"), "missing"
        # strip the a.m./p.m. marker — still a format violation
        stripped = value.replace(" a.m.", "").replace(" p.m.", "")
        return record.replace(attribute, stripped), "format"
    if attribute == "flight":
        mangled = value.replace("-", " ", 1)
        return record.replace(attribute, mangled), "format"
    # datasource: missing or typo
    if maybe(rng, 0.5):
        return record.replace(attribute, "n/a"), "missing"
    return record.replace(attribute, value[:-1] + "x"), "typo"


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the Flights error-detection dataset with ``count`` examples."""
    rng = make_rng(seed, "ed/flights")
    examples: List[Example] = []
    attributes = ("datasource", "flight") + TIME_ATTRIBUTES
    for __ in range(count):
        record = clean_record(rng)
        attribute = attributes[int(rng.integers(len(attributes)))]
        is_error = maybe(rng, 0.4)
        error_type = "clean"
        if is_error:
            record, error_type = _corrupt(rng, record, attribute)
        examples.append(
            Example(
                task="ed",
                inputs={"record": record, "attribute": attribute},
                answer="yes" if is_error else "no",
                meta={"error_type": error_type},
            )
        )
    return Dataset(
        name="flights",
        task="ed",
        examples=examples,
        label_set=("yes", "no"),
        latent_rules=(
            "times follow the 12-hour 'h:mm a.m./p.m. mon d' format",
            "nan and n/a always indicate errors",
            "flight codes are dash-separated airline-number-origin-destination",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "ed/flights",
    generate,
    task="ed",
    base_count=300,
    description="flight status table with strict time and flight-code formats",
)
