"""Abt-Buy — entity matching (paper: EM / Abt-Buy).

Consumer-electronics offers from two stores.  A latent product is
identified by its *model number*; the two renderers disagree on word
order, abbreviations, verbosity and — crucially — price (a deliberate
distractor the searched knowledge says to disregard).  Hard negatives
share brand and product family but differ in model number, so surface
similarity alone misclassifies them.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...data import vocab
from ..schema import Dataset, Record
from .common import (
    build_matching_examples,
    make_rng,
    maybe,
    model_number,
    perturb_title,
    price_string,
)

__all__ = ["generate"]


def _entity(rng: np.random.Generator) -> Dict[str, str]:
    brand = vocab.choice(rng, vocab.ELECTRONICS_BRANDS)
    product = vocab.choice(rng, vocab.ELECTRONICS_PRODUCTS[brand])
    return {
        "brand": brand,
        "product": product,
        "model": model_number(rng),
        "color": vocab.choice(rng, vocab.COLORS),
        "base_price": price_string(rng, 30, 900),
    }


def _hard_negative(
    rng: np.random.Generator, entity: Dict[str, str]
) -> Dict[str, str]:
    other = dict(entity)
    other["model"] = model_number(rng)
    if maybe(rng, 0.4):
        other["color"] = vocab.choice(rng, vocab.COLORS)
    if maybe(rng, 0.3):
        other["product"] = vocab.choice(
            rng, vocab.ELECTRONICS_PRODUCTS[entity["brand"]]
        )
    return other


def _render_abt(rng: np.random.Generator, entity: Dict[str, str]) -> Record:
    name = f"{entity['brand']} {entity['color']} {entity['product']} {entity['model']}"
    description = (
        f"{entity['brand']} {entity['product']} model {entity['model']} "
        f"in {entity['color']} finish with full manufacturer warranty"
    )
    return Record.from_dict(
        {
            "name": name,
            "description": description,
            "price": entity["base_price"],
        }
    )


def _render_buy(rng: np.random.Generator, entity: Dict[str, str]) -> Record:
    name = perturb_title(
        rng, f"{entity['brand']} {entity['product']} {entity['model']}"
    )
    description = "nan" if maybe(rng, 0.5) else (
        f"{entity['product']} by {entity['brand']} {entity['model']}"
    )
    # Prices differ across stores — a distractor, not a signal.
    price = price_string(rng, 30, 900)
    return Record.from_dict(
        {"name": name, "description": description, "price": price}
    )


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the Abt-Buy entity-matching dataset."""
    rng = make_rng(seed, "em/abt_buy")
    examples = build_matching_examples(
        task="em",
        count=count,
        rng=rng,
        entity_factory=_entity,
        render_left=_render_abt,
        render_right=_render_buy,
        hard_negative=_hard_negative,
        positive_rate=0.4,
    )
    return Dataset(
        name="abt_buy",
        task="em",
        examples=examples,
        label_set=("yes", "no"),
        latent_rules=(
            "model numbers are the primary identifiers",
            "prices differ across stores and should be disregarded",
            "nan descriptions mean: compare the other attributes",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "em/abt_buy",
    generate,
    task="em",
    base_count=300,
    description="consumer-electronics offers keyed by model number",
)
