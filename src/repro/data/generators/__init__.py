"""Synthetic dataset generators for the full paper benchmark suite.

``DOWNSTREAM_SPECS`` enumerates the 13 downstream datasets of paper
Table I; :func:`build` constructs one by id (``"task/name"``), and
:mod:`repro.data.generators.upstream` provides the 12 upstream datasets
of Table VII.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..schema import Dataset
from . import (
    abt_buy,
    ae110k,
    beer,
    cms,
    flights,
    flipkart,
    oa_mine,
    phone,
    rayyan,
    sotab,
    upstream,
    walmart_amazon,
)

__all__ = ["DOWNSTREAM_SPECS", "build", "downstream_ids", "upstream"]

#: dataset id -> (builder, base example count at scale 1.0)
DOWNSTREAM_SPECS: Dict[str, Tuple[Callable[[int, int], Dataset], int]] = {
    "ed/flights": (flights.generate, 300),
    "ed/rayyan": (rayyan.generate, 300),
    "ed/beer": (beer.generate, 300),
    "di/flipkart": (flipkart.generate, 280),
    "di/phone": (phone.generate, 280),
    "sm/cms": (cms.generate, 320),
    "em/abt_buy": (abt_buy.generate, 300),
    "em/walmart_amazon": (walmart_amazon.generate, 300),
    "cta/sotab": (sotab.generate, 260),
    "ave/ae110k": (ae110k.generate, 280),
    "ave/oa_mine": (oa_mine.generate, 280),
    "dc/rayyan": (rayyan.generate_cleaning, 280),
    "dc/beer": (beer.generate_cleaning, 280),
}


def downstream_ids() -> Tuple[str, ...]:
    """All downstream dataset ids in paper Table I/II order."""
    return tuple(DOWNSTREAM_SPECS)


def build(dataset_id: str, count: int | None = None, seed: int = 0,
          scale: float = 1.0) -> Dataset:
    """Construct a downstream dataset.

    ``count`` overrides the spec's base size; otherwise the base size is
    multiplied by ``scale``.
    """
    if dataset_id not in DOWNSTREAM_SPECS:
        raise KeyError(
            f"unknown dataset id {dataset_id!r}; "
            f"known: {sorted(DOWNSTREAM_SPECS)}"
        )
    builder, base = DOWNSTREAM_SPECS[dataset_id]
    if count is None:
        count = max(40, int(round(base * scale)))
    return builder(count, seed)
