"""Synthetic dataset generators for the full paper benchmark suite.

Generator modules self-register :class:`~.registry.GeneratorSpec`
entries at import time (see :mod:`repro.data.generators.registry`);
this package imports them all, exposes :func:`build` — the one
construction entry point, now with an optional entity-augmentation
pass — and keeps the paper surface stable: ``DOWNSTREAM_SPECS`` /
``downstream_ids()`` remain exactly the 13 downstream datasets of
paper Table I in table order, while :func:`registry.generator_names`
is the full registered superset (the 13 plus the QA workload
datasets).  :mod:`repro.data.generators.upstream` provides the 12
upstream datasets of Table VII.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..schema import Dataset
from . import (  # noqa: F401 - imports trigger registration
    abt_buy,
    ae110k,
    beer,
    cms,
    flights,
    flipkart,
    oa_mine,
    phone,
    rayyan,
    sotab,
    tableqa,
    upstream,
    walmart_amazon,
)
from .registry import (
    GeneratorSpec,
    generator_names,
    get_generator,
    register_generator,
)

__all__ = [
    "DOWNSTREAM_SPECS",
    "GeneratorSpec",
    "build",
    "downstream_ids",
    "generator_names",
    "get_generator",
    "register_generator",
    "upstream",
]

#: The 13 downstream dataset ids of paper Table I, in table order.
#: This tuple is the *paper* surface — experiment grids, Table II
#: references, and the KB corpus iterate it; registry lookups via
#: :func:`generator_names` see the registered superset.
PAPER_ORDER: Tuple[str, ...] = (
    "ed/flights",
    "ed/rayyan",
    "ed/beer",
    "di/flipkart",
    "di/phone",
    "sm/cms",
    "em/abt_buy",
    "em/walmart_amazon",
    "cta/sotab",
    "ave/ae110k",
    "ave/oa_mine",
    "dc/rayyan",
    "dc/beer",
)

#: dataset id -> (builder, base example count at scale 1.0); kept for
#: compatibility, derived from the registry in paper order.
DOWNSTREAM_SPECS: Dict[str, Tuple[Callable[[int, int], Dataset], int]] = {
    name: (get_generator(name).build, get_generator(name).base_count)
    for name in PAPER_ORDER
}


def downstream_ids() -> Tuple[str, ...]:
    """All downstream dataset ids in paper Table I/II order."""
    return PAPER_ORDER


def build(
    dataset_id: str,
    count: Optional[int] = None,
    seed: int = 0,
    scale: float = 1.0,
    augment: Optional[object] = None,
) -> Dataset:
    """Construct any registered dataset by id.

    ``count`` overrides the spec's base size; otherwise the base size
    is multiplied by ``scale``.  ``augment`` is an optional
    :class:`repro.data.augment.AugmentConfig` (or a spec string it
    parses) applying the entity-augmentation pass to the built dataset;
    tasks outside the augmentable set pass through unchanged.
    """
    dataset = get_generator(dataset_id).generate(count, seed, scale)
    if augment is not None:
        from ..augment import AugmentConfig, augment_dataset

        config = (
            AugmentConfig.parse(augment)
            if isinstance(augment, str)
            else augment
        )
        dataset = augment_dataset(dataset, config)
    return dataset
