"""Phone — data imputation (paper: DI / Phone).

Unlocked-mobile listings whose ``brand`` cell is missing.  The brand is
the first recognisable manufacturer inside the product name (the paper's
searched Phone knowledge verbatim: "look for the first recognizable and
distinct brand name within the product name").  Some names lead with
marketing noise, which is what makes position-only heuristics imperfect
and the vocabulary prior valuable.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...data import vocab
from ..schema import Dataset, Example, Record
from .common import make_rng, maybe, price_string

__all__ = ["generate"]

_STORAGES = ("16gb", "32gb", "64gb", "128gb", "256gb")
_CONDITIONS = ("unlocked", "refurbished", "certified pre owned", "new")
_NOISE_PREFIXES = ("brand new", "hot sale", "original", "us version")


def _listing(rng: np.random.Generator) -> Record:
    brand = vocab.choice(rng, vocab.PHONE_BRANDS)
    line = vocab.choice(rng, vocab.PHONE_LINES[brand])
    storage = vocab.choice(rng, _STORAGES)
    color = vocab.choice(rng, vocab.COLORS)
    condition = vocab.choice(rng, _CONDITIONS)
    name = f"{brand} {line} {int(rng.integers(3, 23))} {storage} {color} {condition} smartphone"
    if maybe(rng, 0.25):
        name = vocab.choice(rng, _NOISE_PREFIXES) + " " + name
    return Record.from_dict(
        {
            "product_name": name,
            "price": price_string(rng, 79, 999),
            "rating": f"{float(rng.uniform(2.5, 5.0)):.1f}",
            "review_votes": str(int(rng.integers(0, 4000))),
            "brand": brand,
        }
    )


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the Phone brand-imputation dataset."""
    rng = make_rng(seed, "di/phone")
    examples: List[Example] = []
    for __ in range(count):
        record = _listing(rng)
        brand = record.get("brand")
        examples.append(
            Example(
                task="di",
                inputs={
                    "record": record.replace("brand", "nan"),
                    "attribute": "brand",
                },
                answer=brand,
            )
        )
    return Dataset(
        name="phone",
        task="di",
        examples=examples,
        latent_rules=(
            "the brand is the first recognizable manufacturer in the name",
            "a quarter of names lead with marketing noise",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "di/phone",
    generate,
    task="di",
    base_count=280,
    description="unlocked-mobile listings with missing brand cells",
)
