"""OA-mine — attribute value extraction (paper: AVE / OA-mine, novel task).

Grocery product titles with flavor/scent/brand attributes.  The searched
OA knowledge is baked in as generative structure: descriptive terms
(flavors, scents) take precedence over brand names, brand names are
valid answers only for the ``brand`` attribute, and absent attributes
map to ``n/a``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ...data import vocab
from ..schema import Dataset, Example
from .common import make_rng, maybe

__all__ = ["generate", "ATTRIBUTES"]

ATTRIBUTES = ("flavor", "scent", "brand", "item form")

_FORMS = vocab.ITEM_FORMS
_PRODUCTS = ("coffee", "tea", "candle", "soap", "creamer", "syrup", "lotion")
_COUNTS = ("12 count", "24 pack", "6 oz", "16 oz", "2 pound bag")


def _listing(rng: np.random.Generator) -> Dict[str, str]:
    product = vocab.choice(rng, _PRODUCTS)
    scented = product in ("candle", "soap", "lotion")
    slots = {
        "brand": vocab.choice(rng, vocab.GROCERY_BRANDS),
        "flavor": "" if scented else (
            vocab.choice(rng, vocab.FLAVORS) if maybe(rng, 0.8) else ""
        ),
        "scent": (
            vocab.choice(rng, vocab.SCENTS) if scented and maybe(rng, 0.85) else ""
        ),
        "item form": vocab.choice(rng, _FORMS) if maybe(rng, 0.6) else "",
    }
    decaf = "decaf" if product == "coffee" and maybe(rng, 0.3) else ""
    fillers = ("premium", "organic", "family size", "value pack", "gourmet")
    parts = [
        vocab.choice(rng, fillers) if maybe(rng, 0.45) else "",
        slots["brand"],
        slots["flavor"],
        slots["scent"],
        decaf,
        product,
        slots["item form"],
        vocab.choice(rng, _COUNTS) if maybe(rng, 0.6) else "",
    ]
    slots["title"] = " ".join(p for p in parts if p)
    return slots


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the OA-mine attribute-value-extraction dataset."""
    rng = make_rng(seed, "ave/oa_mine")
    examples: List[Example] = []
    for __ in range(count):
        listing = _listing(rng)
        attribute = ATTRIBUTES[int(rng.integers(len(ATTRIBUTES)))]
        answer = listing[attribute] or "n/a"
        examples.append(
            Example(
                task="ave",
                inputs={"text": listing["title"], "attribute": attribute},
                answer=answer,
            )
        )
    return Dataset(
        name="oa_mine",
        task="ave",
        examples=examples,
        latent_rules=(
            "descriptive terms (flavors, scents) outrank brand names",
            "brand names answer only the brand attribute",
            "absent attributes map to n/a",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "ave/oa_mine",
    generate,
    task="ave",
    base_count=280,
    description="grocery titles for attribute value extraction",
)
