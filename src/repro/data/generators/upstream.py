"""Upstream datasets (paper Table VII — the Jellyfish-Instruct suite).

Twelve datasets across four upstream tasks train the upstream DP-LLM and
yield one SKC knowledge patch each.  Their domains deliberately overlap
the downstream suite the way the real benchmarks do — beer entities,
product model numbers, medical schemata, brand-bearing product names —
because that shared structure is precisely what makes upstream knowledge
patches transferable:

* ED:  Adult (census), Hospital (provider records)
* DI:  Buy (manufacturer), Restaurant (city from area code)
* SM:  MIMIC, Synthea (clinical schemata)
* EM:  Amazon-Google, Beer, DBLP-ACM, DBLP-GoogleScholar,
       Fodors-Zagats, iTunes-Amazon
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ...data import vocab
from ..corruption import typo
from ..schema import Dataset, Example, Record
from . import beer as beer_mod
from .common import (
    build_matching_examples,
    make_rng,
    maybe,
    model_number,
    perturb_title,
    price_string,
)

__all__ = ["UPSTREAM_SPECS", "generate", "generate_all"]

# ---------------------------------------------------------------------------
# ED / Adult
# ---------------------------------------------------------------------------
_WORKCLASSES = ("private", "self employed", "federal gov", "state gov", "local gov")
_EDUCATIONS = ("bachelors", "masters", "doctorate", "hs grad", "some college", "assoc")
_OCCUPATIONS = (
    "tech support", "craft repair", "sales", "exec managerial",
    "prof specialty", "machine op", "adm clerical", "farming fishing",
)


def _adult(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/ed/adult")
    attributes = ("age", "workclass", "education", "occupation", "hours_per_week")
    examples: List[Example] = []
    for __ in range(count):
        record = Record.from_dict(
            {
                "age": str(int(rng.integers(17, 80))),
                "workclass": vocab.choice(rng, _WORKCLASSES),
                "education": vocab.choice(rng, _EDUCATIONS),
                "occupation": vocab.choice(rng, _OCCUPATIONS),
                "hours_per_week": str(int(rng.integers(10, 70))),
            }
        )
        attribute = attributes[int(rng.integers(len(attributes)))]
        is_error = maybe(rng, 0.4)
        if is_error:
            value = record.get(attribute)
            if attribute in ("age", "hours_per_week"):
                record = record.replace(
                    attribute, "nan" if maybe(rng, 0.5) else str(int(value) * 10 + 900)
                )
            else:
                record = record.replace(
                    attribute, "nan" if maybe(rng, 0.4) else typo(rng, value)[0]
                )
        examples.append(
            Example(
                task="ed",
                inputs={"record": record, "attribute": attribute},
                answer="yes" if is_error else "no",
            )
        )
    return Dataset("adult", "ed", examples, label_set=("yes", "no"))


# ---------------------------------------------------------------------------
# ED / Hospital
# ---------------------------------------------------------------------------
_MEASURES = (
    "heart attack mortality", "pneumonia care", "surgical infection prevention",
    "heart failure readmission", "emergency wait time", "stroke care",
)


def _hospital(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/ed/hospital")
    attributes = ("hospital_name", "city", "state", "measure_name", "phone")
    examples: List[Example] = []
    for __ in range(count):
        record = Record.from_dict(
            {
                "hospital_name": vocab.choice(rng, vocab.CITIES)
                + " "
                + ("general hospital", "medical center", "regional clinic")[
                    int(rng.integers(3))
                ],
                "city": vocab.choice(rng, vocab.CITIES),
                "state": vocab.choice(rng, vocab.STATES),
                "measure_name": vocab.choice(rng, _MEASURES),
                "phone": f"{int(rng.integers(200, 999))} {int(rng.integers(200, 999))} {int(rng.integers(1000, 9999))}",
            }
        )
        attribute = attributes[int(rng.integers(len(attributes)))]
        is_error = maybe(rng, 0.4)
        if is_error:
            value = record.get(attribute)
            if attribute == "phone":
                # Reformat violations ground the [fmt_violation] marker.
                mangled = value.replace(" ", "-") if maybe(rng, 0.6) else "nan"
                record = record.replace(attribute, mangled)
            elif maybe(rng, 0.4):
                record = record.replace(attribute, "nan")
            else:
                record = record.replace(attribute, typo(rng, value)[0])
        examples.append(
            Example(
                task="ed",
                inputs={"record": record, "attribute": attribute},
                answer="yes" if is_error else "no",
            )
        )
    return Dataset("hospital", "ed", examples, label_set=("yes", "no"))


# ---------------------------------------------------------------------------
# DI / Buy (impute manufacturer) and Restaurant (impute city)
# ---------------------------------------------------------------------------
def _buy(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/di/buy")
    examples: List[Example] = []
    for __ in range(count):
        brand = vocab.choice(rng, vocab.ELECTRONICS_BRANDS)
        product = vocab.choice(rng, vocab.ELECTRONICS_PRODUCTS[brand])
        name = f"{brand} {product} {model_number(rng)}"
        record = Record.from_dict(
            {
                "name": name,
                "description": f"{product} by {brand} with warranty",
                "price": price_string(rng, 40, 800),
                "manufacturer": "nan",
            }
        )
        examples.append(
            Example(
                task="di",
                inputs={"record": record, "attribute": "manufacturer"},
                answer=brand,
            )
        )
    return Dataset("buy", "di", examples)


def _area_code(city: str) -> str:
    """Deterministic city → area code mapping (the latent DI rule)."""
    acc = 7
    for ch in city:
        acc = (acc * 31 + ord(ch)) % 800
    return str(200 + acc)


def _restaurant(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/di/restaurant")
    examples: List[Example] = []
    for __ in range(count):
        city = vocab.choice(rng, vocab.CITIES)
        name = (
            vocab.choice(rng, vocab.LAST_NAMES)
            + " "
            + vocab.choice(rng, vocab.RESTAURANT_WORDS)
        )
        record = Record.from_dict(
            {
                "name": name,
                "address": f"{int(rng.integers(10, 9999))} "
                + vocab.choice(rng, vocab.BEER_NOUNS)
                + " street "
                + city,
                "cuisine": vocab.choice(rng, vocab.CUISINES),
                "phone": f"{_area_code(city)}-{int(rng.integers(200, 999))}-{int(rng.integers(1000, 9999))}",
                "city": "nan",
            }
        )
        examples.append(
            Example(
                task="di",
                inputs={"record": record, "attribute": "city"},
                answer=city,
            )
        )
    return Dataset("restaurant", "di", examples)


# ---------------------------------------------------------------------------
# SM / MIMIC and Synthea
# ---------------------------------------------------------------------------
_MIMIC_CONCEPTS: Tuple[Tuple[Tuple[str, str], ...], ...] = (
    (("subject_id", "unique identifier of the patient"),
     ("patient_id", "identifier assigned to the patient")),
    (("hadm_id", "identifier of the hospital admission"),
     ("admission_id", "id of the admission event")),
    (("icustay_id", "identifier of the icu stay"),
     ("icu_stay", "id of the intensive care stay")),
    (("charttime", "time at which the observation was charted"),
     ("observation_time", "timestamp of the recorded observation")),
    (("itemid", "identifier of the measured item"),
     ("measurement_code", "code of the measurement taken")),
    (("valuenum", "numeric value of the measurement"),
     ("measurement_value", "recorded numeric result")),
    (("dob", "date of birth of the patient"),
     ("birth_date", "patient date of birth")),
    (("dod", "date of death of the patient"),
     ("death_date", "patient date of death")),
    (("admittime", "time the patient was admitted"),
     ("admission_time", "timestamp of hospital admission")),
    (("dischtime", "time the patient was discharged"),
     ("discharge_time", "timestamp of hospital discharge")),
)

_SYNTHEA_CONCEPTS: Tuple[Tuple[Tuple[str, str], ...], ...] = (
    (("encounter_id", "identifier of the clinical encounter"),
     ("visit_id", "id of the patient visit")),
    (("payer_name", "name of the insurance payer"),
     ("insurance_company", "company providing the insurance")),
    (("med_code", "rxnorm code of the medication"),
     ("medication_code", "code of the prescribed medication")),
    (("proc_start", "start timestamp of the procedure"),
     ("procedure_start_time", "when the procedure began")),
    (("proc_stop", "stop timestamp of the procedure"),
     ("procedure_end_time", "when the procedure finished")),
    (("total_cost", "total claim cost of the encounter"),
     ("encounter_cost", "overall cost billed for the visit")),
    (("provider_id", "identifier of the care provider"),
     ("practitioner_id", "id of the attending practitioner")),
    (("condition_code", "snomed code of the condition"),
     ("diagnosis_snomed", "snomed identifier of the diagnosis")),
)

_SM_HARD: Dict[str, Tuple[Tuple[int, int], ...]] = {
    "mimic": ((6, 7), (8, 9), (3, 8)),
    "synthea": ((3, 4), (0, 6)),
}


def _schema_matching(
    name: str,
    concepts: Tuple[Tuple[Tuple[str, str], ...], ...],
    count: int,
    seed: int,
) -> Dataset:
    rng = make_rng(seed, f"up/sm/{name}")
    hard_pairs = _SM_HARD.get(name, ())
    examples: List[Example] = []
    for __ in range(count):
        is_match = maybe(rng, 0.3)
        if is_match:
            cluster = concepts[int(rng.integers(len(concepts)))]
            idx = rng.choice(len(cluster), size=2, replace=False)
            left, right = cluster[int(idx[0])], cluster[int(idx[1])]
        elif hard_pairs and maybe(rng, 0.5):
            i, j = hard_pairs[int(rng.integers(len(hard_pairs)))]
            left = concepts[i][int(rng.integers(len(concepts[i])))]
            right = concepts[j][int(rng.integers(len(concepts[j])))]
        else:
            i, j = rng.choice(len(concepts), size=2, replace=False)
            left = concepts[int(i)][int(rng.integers(len(concepts[int(i)])))]
            right = concepts[int(j)][int(rng.integers(len(concepts[int(j)])))]
        examples.append(
            Example(
                task="sm",
                inputs={
                    "left_name": left[0],
                    "left_desc": left[1],
                    "right_name": right[0],
                    "right_desc": right[1],
                },
                answer="yes" if is_match else "no",
            )
        )
    return Dataset(name, "sm", examples, label_set=("yes", "no"))


# ---------------------------------------------------------------------------
# EM suite
# ---------------------------------------------------------------------------
def _software_entity(rng: np.random.Generator) -> Dict[str, str]:
    brand = vocab.choice(rng, vocab.ELECTRONICS_BRANDS)
    product = vocab.choice(rng, vocab.ELECTRONICS_PRODUCTS[brand])
    return {
        "brand": brand,
        "product": product,
        "model": model_number(rng),
        "base_price": price_string(rng, 20, 600),
    }


def _software_negative(rng, entity):
    other = dict(entity)
    other["model"] = model_number(rng)
    return other


def _render_store(rng: np.random.Generator, entity: Dict[str, str]) -> Record:
    title = perturb_title(
        rng, f"{entity['brand']} {entity['product']} {entity['model']}"
    )
    return Record.from_dict(
        {
            "title": title,
            "manufacturer": entity["brand"],
            "price": price_string(rng, 20, 600),
        }
    )


def _amazon_google(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/em/amazon_google")
    examples = build_matching_examples(
        "em", count, rng, _software_entity, _render_store, _render_store,
        _software_negative, positive_rate=0.35,
    )
    return Dataset("amazon_google", "em", examples, label_set=("yes", "no"))


def _beer_em(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/em/beer")

    def entity(rng_):
        return {
            "beer_name": beer_mod.beer_name(rng_),
            "brewery": beer_mod.brewery_name(rng_),
            "style": vocab.choice(rng_, vocab.BEER_STYLES),
        }

    def negative(rng_, ent):
        other = dict(ent)
        other["beer_name"] = beer_mod.beer_name(rng_)
        return other

    def render(rng_, ent):
        name = ent["beer_name"]
        if maybe(rng_, 0.3):
            name = perturb_title(rng_, name)
        return Record.from_dict(
            {"beer_name": name, "brewery_name": ent["brewery"], "style": ent["style"]}
        )

    examples = build_matching_examples(
        "em", count, rng, entity, render, render, negative, positive_rate=0.35,
    )
    return Dataset("beer_em", "em", examples, label_set=("yes", "no"))


def _citation_entity(rng: np.random.Generator) -> Dict[str, str]:
    title = " ".join(vocab.sample_distinct(rng, vocab.ACADEMIC_WORDS, 6))
    authors = ", ".join(
        vocab.choice(rng, vocab.FIRST_NAMES) + " " + vocab.choice(rng, vocab.LAST_NAMES)
        for __ in range(2)
    )
    return {
        "title": title,
        "authors": authors,
        "venue": vocab.choice(rng, ("sigmod", "vldb", "icde", "kdd", "www", "cikm")),
        "year": str(int(rng.integers(1995, 2024))),
    }


def _citation_negative(rng, entity):
    other = dict(entity)
    other["title"] = " ".join(vocab.sample_distinct(rng, vocab.ACADEMIC_WORDS, 6))
    return other


def _render_citation(rng: np.random.Generator, entity: Dict[str, str]) -> Record:
    title = entity["title"]
    authors = entity["authors"]
    if maybe(rng, 0.4):
        title = perturb_title(rng, title)
    if maybe(rng, 0.3):  # swap author order
        parts = authors.split(", ")
        authors = ", ".join(reversed(parts))
    return Record.from_dict(
        {
            "title": title,
            "authors": authors,
            "venue": entity["venue"],
            "year": entity["year"],
        }
    )


def _dblp_acm(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/em/dblp_acm")
    examples = build_matching_examples(
        "em", count, rng, _citation_entity, _render_citation, _render_citation,
        _citation_negative, positive_rate=0.35,
    )
    return Dataset("dblp_acm", "em", examples, label_set=("yes", "no"))


def _dblp_scholar(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/em/dblp_scholar")
    examples = build_matching_examples(
        "em", count, rng, _citation_entity, _render_citation, _render_citation,
        _citation_negative, positive_rate=0.35,
    )
    return Dataset("dblp_scholar", "em", examples, label_set=("yes", "no"))


def _restaurant_entity(rng: np.random.Generator) -> Dict[str, str]:
    return {
        "name": vocab.choice(rng, vocab.LAST_NAMES)
        + " "
        + vocab.choice(rng, vocab.RESTAURANT_WORDS),
        "city": vocab.choice(rng, vocab.CITIES),
        "cuisine": vocab.choice(rng, vocab.CUISINES),
        "street_no": str(int(rng.integers(10, 9999))),
    }


def _restaurant_negative(rng, entity):
    other = dict(entity)
    other["name"] = (
        vocab.choice(rng, vocab.LAST_NAMES)
        + " "
        + vocab.choice(rng, vocab.RESTAURANT_WORDS)
    )
    return other


def _render_restaurant(rng: np.random.Generator, entity: Dict[str, str]) -> Record:
    name = entity["name"]
    if maybe(rng, 0.3):
        name = perturb_title(rng, name)
    return Record.from_dict(
        {
            "name": name,
            "address": entity["street_no"] + " main street " + entity["city"],
            "cuisine": entity["cuisine"],
        }
    )


def _fodors_zagats(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/em/fodors_zagats")
    examples = build_matching_examples(
        "em", count, rng, _restaurant_entity, _render_restaurant,
        _render_restaurant, _restaurant_negative, positive_rate=0.35,
    )
    return Dataset("fodors_zagats", "em", examples, label_set=("yes", "no"))


def _song_entity(rng: np.random.Generator) -> Dict[str, str]:
    return {
        "song": " ".join(vocab.sample_distinct(rng, vocab.BEER_ADJECTIVES, 2)),
        "artist": vocab.choice(rng, vocab.FIRST_NAMES)
        + " "
        + vocab.choice(rng, vocab.LAST_NAMES),
        "album": vocab.choice(rng, vocab.BEER_NOUNS) + " sessions",
        "genre": vocab.choice(rng, vocab.MUSIC_GENRES),
        "time": f"{int(rng.integers(2, 6))}:{int(rng.integers(0, 60)):02d}",
    }


def _song_negative(rng, entity):
    other = dict(entity)
    other["song"] = " ".join(vocab.sample_distinct(rng, vocab.BEER_ADJECTIVES, 2))
    other["time"] = f"{int(rng.integers(2, 6))}:{int(rng.integers(0, 60)):02d}"
    return other


def _render_song(rng: np.random.Generator, entity: Dict[str, str]) -> Record:
    return Record.from_dict(
        {
            "song_name": entity["song"],
            "artist_name": entity["artist"],
            "album_name": entity["album"],
            "genre": entity["genre"],
            "time": entity["time"],
            "price": price_string(rng, 0.5, 2),
        }
    )


def _itunes_amazon(count: int, seed: int) -> Dataset:
    rng = make_rng(seed, "up/em/itunes_amazon")
    examples = build_matching_examples(
        "em", count, rng, _song_entity, _render_song, _render_song,
        _song_negative, positive_rate=0.35,
    )
    return Dataset("itunes_amazon", "em", examples, label_set=("yes", "no"))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
#: (dataset name, task, builder, base sample count reflecting Table VII)
UPSTREAM_SPECS: Tuple[Tuple[str, str, Callable[[int, int], Dataset], int], ...] = (
    ("adult", "ed", _adult, 110),
    ("hospital", "ed", _hospital, 170),
    ("buy", "di", _buy, 60),
    ("restaurant", "di", _restaurant, 80),
    ("mimic", "sm", lambda c, s: _schema_matching("mimic", _MIMIC_CONCEPTS, c, s), 180),
    ("synthea", "sm", lambda c, s: _schema_matching("synthea", _SYNTHEA_CONCEPTS, c, s), 140),
    ("amazon_google", "em", _amazon_google, 170),
    ("beer_em", "em", _beer_em, 60),
    ("dblp_acm", "em", _dblp_acm, 130),
    ("dblp_scholar", "em", _dblp_scholar, 130),
    ("fodors_zagats", "em", _fodors_zagats, 60),
    ("itunes_amazon", "em", _itunes_amazon, 60),
)


def generate(name: str, count: int, seed: int = 0) -> Dataset:
    """Build one upstream dataset by name."""
    for spec_name, __task, builder, __base in UPSTREAM_SPECS:
        if spec_name == name:
            return builder(count, seed)
    raise KeyError(f"unknown upstream dataset {name!r}")


def generate_all(seed: int = 0, scale: float = 1.0) -> List[Dataset]:
    """Build the full upstream suite at a given scale."""
    suite = []
    for name, __task, builder, base in UPSTREAM_SPECS:
        count = max(24, int(round(base * scale)))
        suite.append(builder(count, seed))
    return suite
