"""Walmart-Amazon — entity matching (paper: EM / Walmart-Amazon).

Marketplace offers with explicit ``brand`` / ``modelno`` / ``capacity``
attributes (the paper's example dataset in Fig. 1).  The searched
knowledge for this dataset is encoded literally in the generator:
model numbers and capacities are the deciding identifiers, descriptions
are frequently ``nan``, and prices vary between marketplaces.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...data import vocab
from ..schema import Dataset, Record
from .common import (
    build_matching_examples,
    make_rng,
    maybe,
    model_number,
    perturb_title,
    price_string,
)

__all__ = ["generate"]

_CAPACITIES = ("8gb", "16gb", "32gb", "64gb", "128gb", "256gb", "1tb", "2tb")


def _entity(rng: np.random.Generator) -> Dict[str, str]:
    brand = vocab.choice(rng, vocab.ELECTRONICS_BRANDS)
    product = vocab.choice(rng, vocab.ELECTRONICS_PRODUCTS[brand])
    return {
        "brand": brand,
        "product": product,
        "model": model_number(rng, prefix_len=3),
        "capacity": vocab.choice(rng, _CAPACITIES),
    }


def _hard_negative(
    rng: np.random.Generator, entity: Dict[str, str]
) -> Dict[str, str]:
    other = dict(entity)
    if maybe(rng, 0.5):
        other["model"] = model_number(rng, prefix_len=3)
    else:
        # Same model family, different capacity — the subtlest negative.
        choices = [c for c in _CAPACITIES if c != entity["capacity"]]
        other["capacity"] = choices[int(rng.integers(len(choices)))]
    return other


def _render(store: str):
    def render(rng: np.random.Generator, entity: Dict[str, str]) -> Record:
        title = f"{entity['brand']} {entity['product']} {entity['capacity']} {entity['model']}"
        if store == "amazon":
            title = perturb_title(rng, title)
        description = "nan"
        if maybe(rng, 0.35):
            description = (
                f"{entity['product']} with {entity['capacity']} storage "
                f"from {entity['brand']}"
            )
        return Record.from_dict(
            {
                "title": title,
                "brand": entity["brand"],
                "modelno": entity["model"],
                "capacity": entity["capacity"],
                "price": price_string(rng, 25, 700),
                "description": description,
            }
        )

    return render


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the Walmart-Amazon entity-matching dataset."""
    rng = make_rng(seed, "em/walmart_amazon")
    examples = build_matching_examples(
        task="em",
        count=count,
        rng=rng,
        entity_factory=_entity,
        render_left=_render("walmart"),
        render_right=_render("amazon"),
        hard_negative=_hard_negative,
        positive_rate=0.4,
    )
    return Dataset(
        name="walmart_amazon",
        task="em",
        examples=examples,
        label_set=("yes", "no"),
        latent_rules=(
            "modelno and capacity are the deciding identifiers",
            "descriptions are usually nan; compare the other attributes",
            "prices vary between marketplaces",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "em/walmart_amazon",
    generate,
    task="em",
    base_count=300,
    description="marketplace offers keyed by modelno and capacity",
)
