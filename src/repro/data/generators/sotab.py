"""SOTAB — column type annotation (paper: CTA / SOTAB, a novel *task*).

Columns sampled from web tables must be labelled with a semantic type.
The type inventory and the tell-tale per-type surface patterns follow
the paper's searched SOTAB knowledge: repeated country codes, schema.org
event-status URLs, narrative descriptions, locality names, numeric
coordinates and ``$$``-style price ranges.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ...data import vocab
from ..schema import Dataset, Example
from .common import make_rng

__all__ = ["generate", "LABELS"]

LABELS: Tuple[str, ...] = (
    "country",
    "event_status",
    "description",
    "address_locality",
    "coordinate",
    "price_range",
    "telephone",
    "date",
    "postal_code",
    "organization",
    # Alpha-word types that are surface-confusable with localities and
    # organizations — separating them takes vocabulary semantics, which
    # is why feature-statistics annotators stall on SOTAB (paper: Doduo
    # at 25 while LLMs reach 80+).
    "person_name",
    "cuisine",
    "music_genre",
)

_COUNTRY_CODES = ("be", "fr", "de", "us", "it", "nl", "es", "uk", "jp", "ca")
_EVENT_STATUS = (
    "https://schema.org/eventscheduled",
    "https://schema.org/eventcancelled",
    "https://schema.org/eventpostponed",
    "https://schema.org/eventrescheduled",
)
_LOCALITIES = (
    "monza and brianza", "greater manchester", "alameda county",
    "ile de france", "north holland", "new taipei", "east flanders",
) + vocab.CITIES[:10]


def _values(
    rng: np.random.Generator, label: str, count: int
) -> List[str]:
    makers: Dict[str, Callable[[], str]] = {
        "country": lambda: vocab.choice(rng, _COUNTRY_CODES),
        "event_status": lambda: vocab.choice(rng, _EVENT_STATUS),
        "description": lambda: "the annual "
        + vocab.choice(rng, vocab.MUSIC_GENRES)
        + " festival returns with "
        + vocab.choice(rng, vocab.ACADEMIC_WORDS)
        + " performances and local food",
        "address_locality": lambda: vocab.choice(rng, _LOCALITIES),
        "coordinate": lambda: f"{float(rng.uniform(-90, 90)):.4f}, {float(rng.uniform(-180, 180)):.4f}",
        "price_range": lambda: "$" * int(rng.integers(1, 5)),
        "telephone": lambda: f"+{int(rng.integers(1, 99))} {int(rng.integers(100, 999))} "
        f"{int(rng.integers(100, 999))} {int(rng.integers(1000, 9999))}",
        "date": lambda: f"{int(rng.integers(2015, 2025))}-{int(rng.integers(1, 13)):02d}-{int(rng.integers(1, 29)):02d}",
        "postal_code": lambda: f"{int(rng.integers(10000, 99999))}",
        "organization": lambda: vocab.choice(rng, vocab.ORGANIZATIONS),
        "person_name": lambda: vocab.choice(rng, vocab.FIRST_NAMES)
        + " "
        + vocab.choice(rng, vocab.LAST_NAMES),
        "cuisine": lambda: vocab.choice(rng, vocab.CUISINES),
        "music_genre": lambda: vocab.choice(rng, vocab.MUSIC_GENRES),
    }
    maker = makers[label]
    values = [maker() for __ in range(count)]
    return values


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the SOTAB column-type-annotation dataset."""
    rng = make_rng(seed, "cta/sotab")
    examples: List[Example] = []
    for __ in range(count):
        label = LABELS[int(rng.integers(len(LABELS)))]
        sample_size = int(rng.integers(4, 8))
        examples.append(
            Example(
                task="cta",
                inputs={"values": tuple(_values(rng, label, sample_size))},
                answer=label,
            )
        )
    return Dataset(
        name="sotab",
        task="cta",
        examples=examples,
        label_set=LABELS,
        latent_rules=(
            "repeated two-letter codes indicate a country column",
            "schema.org urls indicate event status",
            "narrative text indicates a description column",
            "$-runs indicate a price range",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "cta/sotab",
    generate,
    task="cta",
    base_count=260,
    description="web-table columns for semantic type annotation",
)
