"""AE-110k — attribute value extraction (paper: AVE / AE-110k, novel task).

Sports/apparel listing titles paired with a target attribute; the answer
is the value span inside the title, or ``n/a`` when the title does not
carry the attribute.  Encodes the searched AE knowledge: extract a
*single* value, prefer the first occurrence, default to ``n/a`` when the
attribute is absent.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ...data import vocab
from ..schema import Dataset, Example
from .common import make_rng, maybe

__all__ = ["generate", "ATTRIBUTES"]

ATTRIBUTES = ("sport type", "feature", "gender", "color", "material")

_ITEMS = ("shoes", "shorts", "jersey", "jacket", "socks", "gloves", "cap", "backpack")


def _listing(rng: np.random.Generator) -> Dict[str, str]:
    """Draw a latent listing; some attributes are intentionally absent."""
    slots = {
        "gender": vocab.choice(rng, vocab.GENDERS) if maybe(rng, 0.8) else "",
        "feature": vocab.choice(rng, vocab.FEATURES) if maybe(rng, 0.75) else "",
        "sport type": vocab.choice(rng, vocab.SPORT_TYPES) if maybe(rng, 0.8) else "",
        "color": vocab.choice(rng, vocab.COLORS) if maybe(rng, 0.7) else "",
        "material": vocab.choice(rng, vocab.MATERIALS) if maybe(rng, 0.5) else "",
    }
    # A second feature may trail the title only when a primary feature
    # exists — the "first occurrence wins" convention; a lone trailing
    # feature would contradict the n/a label.
    extra_feature = ""
    if slots["feature"] and maybe(rng, 0.3):
        extra_feature = vocab.choice(
            rng, [f for f in vocab.FEATURES if f != slots["feature"]]
        )
    fillers = ("new", "hot sale", "2024", "premium", "classic", "outdoor")
    parts = [
        vocab.choice(rng, fillers) if maybe(rng, 0.45) else "",
        slots["gender"],
        slots["feature"],
        slots["sport type"],
        vocab.choice(rng, _ITEMS),
        slots["color"],
        slots["material"],
        extra_feature,
        "sportswear" if maybe(rng, 0.3) else "",
    ]
    slots["title"] = " ".join(p for p in parts if p)
    return slots


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the AE-110k attribute-value-extraction dataset."""
    rng = make_rng(seed, "ave/ae110k")
    examples: List[Example] = []
    for __ in range(count):
        listing = _listing(rng)
        attribute = ATTRIBUTES[int(rng.integers(len(ATTRIBUTES)))]
        answer = listing[attribute] or "n/a"
        examples.append(
            Example(
                task="ave",
                inputs={"text": listing["title"], "attribute": attribute},
                answer=answer,
            )
        )
    return Dataset(
        name="ae110k",
        task="ave",
        examples=examples,
        latent_rules=(
            "extract one value; when two features occur the first wins",
            "answer n/a when the title does not mention the attribute",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "ave/ae110k",
    generate,
    task="ave",
    base_count=280,
    description="sports/apparel titles for attribute value extraction",
)
