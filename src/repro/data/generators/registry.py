"""The generator registry: one metadata-bearing entry per dataset.

Mirrors :func:`repro.tasks.base.register_task`: each generator module
self-registers a :class:`GeneratorSpec` at import time, and everything
that used to hard-code the per-module builder functions (the package's
``build``/``downstream_ids``, the CLI's dataset resolution, the perf
gates) resolves names through :func:`get_generator` instead.

A spec carries the knobs workload tooling filters on:

* ``task`` — which task family the dataset exercises (``"em"``,
  ``"qa"``, ...);
* ``language`` — the entity surface-form language of the *unaugmented*
  dataset.  Every built-in generator emits English (``"en"``);
  multilingual variation is layered on by
  :mod:`repro.data.augment`, not baked into generators;
* ``scale`` — ``"standard"`` for the paper-sized datasets (a few
  hundred rows) or ``"large"`` for the ~100x stress generators that
  exist to exercise the batched engine, artifact store, and KB
  profiling at volume.

This module deliberately imports no sibling generator modules, so
generators can import it freely without cycles; the package
``__init__`` imports the modules (triggering registration) exactly the
way ``tasks/__init__`` imports the task modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..schema import Dataset

__all__ = [
    "GeneratorSpec",
    "register_generator",
    "get_generator",
    "generator_names",
    "GENERATOR_SCALES",
]

#: The recognised ``scale`` classes.
GENERATOR_SCALES: Tuple[str, ...] = ("standard", "large")


@dataclass(frozen=True)
class GeneratorSpec:
    """One registered dataset generator plus its workload metadata."""

    name: str
    build: Callable[[int, int], Dataset] = field(repr=False)
    task: str
    base_count: int
    language: str = "en"
    scale: str = "standard"
    description: str = ""

    def generate(self, count: Optional[int] = None, seed: int = 0,
                 scale: float = 1.0) -> Dataset:
        """Build the dataset; ``count=None`` uses ``base_count * scale``."""
        if count is None:
            count = max(40, int(round(self.base_count * scale)))
        return self.build(count, seed)


_REGISTRY: Dict[str, GeneratorSpec] = {}


def register_generator(
    name: str,
    build: Callable[[int, int], Dataset],
    *,
    task: str,
    base_count: int,
    language: str = "en",
    scale: str = "standard",
    description: str = "",
) -> GeneratorSpec:
    """Register a dataset generator under its ``task/name`` id."""
    if not name or "/" not in name:
        raise ValueError(
            f"generator name must look like 'task/name', got {name!r}"
        )
    if scale not in GENERATOR_SCALES:
        raise ValueError(
            f"generator {name!r} declares scale={scale!r}; "
            f"must be one of {GENERATOR_SCALES}"
        )
    if base_count <= 0:
        raise ValueError(f"generator {name!r} needs a positive base_count")
    spec = GeneratorSpec(
        name=name,
        build=build,
        task=task,
        base_count=base_count,
        language=language,
        scale=scale,
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def _ensure_registered() -> None:
    if not _REGISTRY:  # pragma: no cover - defensive import ordering
        from . import build  # noqa: F401 - package import registers all


def get_generator(name: str) -> GeneratorSpec:
    """Look up a generator spec by dataset id."""
    _ensure_registered()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown dataset id {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def generator_names(
    task: Optional[str] = None,
    language: Optional[str] = None,
    scale: Optional[str] = None,
) -> List[str]:
    """Registered dataset ids, optionally filtered by metadata."""
    _ensure_registered()
    names = []
    for name, spec in sorted(_REGISTRY.items()):
        if task is not None and spec.task != task:
            continue
        if language is not None and spec.language != language:
            continue
        if scale is not None and spec.scale != scale:
            continue
        names.append(name)
    return names
