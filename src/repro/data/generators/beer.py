"""Beer — craft-beer catalogue for error detection *and* cleaning.

Encodes the paper's signature Beer quirks: ABV is a decimal in ``[0, 1]``
and a trailing ``%`` is always an error (the "no-percent rule" the
searched knowledge emphasises), IBU is an integer where ``nan`` is an
error, and categorical fields (style, city, brewery) suffer recoverable
spelling errors.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...data import vocab
from ..corruption import typo
from ..schema import Dataset, Example, Record
from .common import make_rng, maybe

__all__ = ["generate", "generate_cleaning", "clean_record", "ATTRIBUTES"]

ATTRIBUTES = (
    "beer_name",
    "brewery_name",
    "style",
    "abv",
    "ibu",
    "city",
    "state",
    "ounces",
)

_OUNCES = ("12", "16", "19.2", "24", "32")


def brewery_name(rng: np.random.Generator) -> str:
    return " ".join(
        (
            vocab.choice(rng, vocab.BEER_ADJECTIVES),
            vocab.choice(rng, vocab.BEER_NOUNS),
            vocab.choice(rng, vocab.BREWERY_SUFFIXES),
        )
    )


def beer_name(rng: np.random.Generator) -> str:
    return " ".join(
        (
            vocab.choice(rng, vocab.BEER_ADJECTIVES),
            vocab.choice(rng, vocab.BEER_NOUNS),
            vocab.choice(rng, vocab.BEER_STYLES).split()[-1],
        )
    )


def clean_record(rng: np.random.Generator) -> Record:
    """A clean craft-beer catalogue row."""
    abv = round(float(rng.uniform(0.03, 0.12)), 3)
    return Record.from_dict(
        {
            "beer_name": beer_name(rng),
            "brewery_name": brewery_name(rng),
            "style": vocab.choice(rng, vocab.BEER_STYLES),
            "abv": f"{abv}",
            "ibu": str(int(rng.integers(5, 120))),
            "city": vocab.choice(rng, vocab.CITIES),
            "state": vocab.choice(rng, vocab.STATES),
            "ounces": vocab.choice(rng, _OUNCES),
        }
    )


def _corrupt(
    rng: np.random.Generator, record: Record, attribute: str
) -> Tuple[Record, str, str]:
    value = record.get(attribute)
    if attribute == "abv":
        # The signature violation: percent sign (sometimes scaled ×100).
        if maybe(rng, 0.6):
            return record.replace(attribute, value + "%"), "format", value
        scaled = f"{float(value) * 100:.1f}"
        return record.replace(attribute, scaled), "range", value
    if attribute == "ibu":
        if maybe(rng, 0.7):
            return record.replace(attribute, "nan"), "missing", value
        return record.replace(attribute, f"{value}.5x"), "format", value
    if attribute in ("ounces",):
        return record.replace(attribute, "nan"), "missing", value
    if attribute == "state":
        return record.replace(attribute, "nan"), "missing", value
    corrupted, kind = typo(rng, value)
    return record.replace(attribute, corrupted), kind, value


_DC_ATTRIBUTES = ("beer_name", "brewery_name", "style", "abv", "city")


def _corrupt_for_cleaning(
    rng: np.random.Generator, record: Record, attribute: str
) -> Tuple[Record, str, str]:
    """Recoverable corruptions only (clean value inferable from context)."""
    value = record.get(attribute)
    if attribute == "abv":
        return record.replace(attribute, value + "%"), "format", value
    corrupted, kind = typo(rng, value)
    return record.replace(attribute, corrupted), kind, value


def _build(count: int, seed: int, task: str) -> List[Example]:
    rng = make_rng(seed, f"{task}/beer")
    examples: List[Example] = []
    for __ in range(count):
        record = clean_record(rng)
        if task == "ed":
            attribute = ATTRIBUTES[int(rng.integers(len(ATTRIBUTES)))]
            is_error = maybe(rng, 0.4)
            error_type = "clean"
            if is_error:
                record, error_type, __clean = _corrupt(rng, record, attribute)
            examples.append(
                Example(
                    task="ed",
                    inputs={"record": record, "attribute": attribute},
                    answer="yes" if is_error else "no",
                    meta={"error_type": error_type},
                )
            )
        else:
            attribute = _DC_ATTRIBUTES[int(rng.integers(len(_DC_ATTRIBUTES)))]
            record, error_type, clean_value = _corrupt_for_cleaning(
                rng, record, attribute
            )
            examples.append(
                Example(
                    task="dc",
                    inputs={"record": record, "attribute": attribute},
                    answer=clean_value,
                    meta={"error_type": error_type},
                )
            )
    return examples


_LATENT_RULES = (
    "abv is a decimal in [0, 1]; a percent sign is always an error",
    "ibu is an integer; nan is an error",
    "style, city and brewery names come from fixed vocabularies",
)


def generate(count: int, seed: int = 0) -> Dataset:
    """Beer error-detection dataset."""
    return Dataset(
        name="beer",
        task="ed",
        examples=_build(count, seed, "ed"),
        label_set=("yes", "no"),
        latent_rules=_LATENT_RULES,
    )


def generate_cleaning(count: int, seed: int = 0) -> Dataset:
    """Beer data-cleaning dataset."""
    return Dataset(
        name="beer",
        task="dc",
        examples=_build(count, seed, "dc"),
        latent_rules=_LATENT_RULES,
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "ed/beer",
    generate,
    task="ed",
    base_count=300,
    description="craft-beer catalogue with the no-percent ABV rule",
)
register_generator(
    "dc/beer",
    generate_cleaning,
    task="dc",
    base_count=280,
    description="cleaning view of the dirty beer catalogue",
)
