"""CMS — schema matching (paper: SM / CMS).

Medicare-claims column pairs: decide whether two ``(name, description)``
attributes denote the same concept.  Concepts come in surface-form
clusters (spelled-out names vs. vowel-stripped coded names); hard
negatives pair *related but distinct* concepts (claim start vs. end
dates, diagnosis vs. procedure codes, race vs. ethnicity codes) with
high lexical overlap — which is why schema matching stays the hardest
task for every method in the paper's Table II.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..schema import Dataset, Example
from .common import make_rng, maybe

__all__ = ["generate", "CONCEPTS"]

# Each concept: tuple of (column_name, description) surface variants.
CONCEPTS: Tuple[Tuple[Tuple[str, str], ...], ...] = (
    (
        ("prvdr_state_cd", "code of the state of the provider"),
        ("provider_state", "state where the provider practices"),
        ("prv_st", "two letter state for the billing provider"),
    ),
    (
        ("clm_from_dt", "date when the claim period begins"),
        ("claim_start_date", "start date of the claim"),
    ),
    (
        ("clm_thru_dt", "date when the claim period ends"),
        ("claim_end_date", "end date of the claim"),
    ),
    (
        ("bene_birth_dt", "date of birth of the beneficiary"),
        ("dob", "birth date of the insured person"),
    ),
    (
        ("icd9_dgns_cd", "icd9 code of the diagnosis"),
        ("diagnosis_code", "code identifying the diagnosis"),
    ),
    (
        ("icd9_prcdr_cd", "icd9 code of the procedure performed"),
        ("procedure_code", "code identifying the clinical procedure"),
    ),
    (
        ("prvdr_npi", "national provider identifier number"),
        ("provider_npi_num", "npi number of the rendering provider"),
    ),
    (
        ("clm_pmt_amt", "amount paid for the claim"),
        ("claim_payment_amount", "payment amount of the claim"),
    ),
    (
        ("bene_sex_ident_cd", "code identifying the sex of the beneficiary"),
        ("patient_gender", "gender of the patient"),
    ),
    (
        ("bene_race_cd", "code for the race of the beneficiary"),
        ("race_code", "coded race category"),
    ),
    (
        ("ethnicity_cd", "code for the ethnicity of the beneficiary"),
        ("ethnic_group", "ethnic group classification"),
    ),
    (
        ("admsn_dt", "date the patient was admitted"),
        ("admission_date", "hospital admission date"),
    ),
    (
        ("dschrg_dt", "date the patient was discharged"),
        ("discharge_date", "hospital discharge date"),
    ),
    (
        ("hcpcs_cd", "hcpcs code of the billed service"),
        ("service_code", "code of the healthcare service billed"),
    ),
    (
        ("clm_drg_cd", "diagnosis related group code of the claim"),
        ("drg_code", "drg classification code"),
    ),
    (
        ("bene_cnty_cd", "county code of the beneficiary residence"),
        ("county_code", "code of the county of residence"),
    ),
    (
        ("bene_zip_cd", "zip code of the beneficiary"),
        ("zip", "postal zip code of the insured"),
    ),
    (
        ("prvdr_spclty", "specialty code of the provider"),
        ("provider_specialty", "clinical specialty of the provider"),
    ),
)

# Pairs of concept indices that are deliberately confusable.
_HARD_NEGATIVES: Tuple[Tuple[int, int], ...] = (
    (1, 2),    # claim start vs end date
    (4, 5),    # diagnosis vs procedure code
    (9, 10),   # race vs ethnicity code
    (11, 12),  # admission vs discharge date
    (1, 11),   # claim start vs admission date
    (13, 14),  # hcpcs vs drg code
)


def _pick_variant(
    rng: np.random.Generator, concept: Tuple[Tuple[str, str], ...]
) -> Tuple[str, str]:
    return concept[int(rng.integers(len(concept)))]


def generate(count: int, seed: int = 0) -> Dataset:
    """Build the CMS schema-matching dataset (positive rate ≈ 0.25)."""
    rng = make_rng(seed, "sm/cms")
    examples: List[Example] = []
    for __ in range(count):
        is_match = maybe(rng, 0.25)
        if is_match:
            concept = CONCEPTS[int(rng.integers(len(CONCEPTS)))]
            idx = rng.choice(len(concept), size=2, replace=False)
            left, right = concept[int(idx[0])], concept[int(idx[1])]
        elif maybe(rng, 0.55):
            i, j = _HARD_NEGATIVES[int(rng.integers(len(_HARD_NEGATIVES)))]
            if maybe(rng, 0.5):
                i, j = j, i
            left = _pick_variant(rng, CONCEPTS[i])
            right = _pick_variant(rng, CONCEPTS[j])
        else:
            i, j = rng.choice(len(CONCEPTS), size=2, replace=False)
            left = _pick_variant(rng, CONCEPTS[int(i)])
            right = _pick_variant(rng, CONCEPTS[int(j)])
        examples.append(
            Example(
                task="sm",
                inputs={
                    "left_name": left[0],
                    "left_desc": left[1],
                    "right_name": right[0],
                    "right_desc": right[1],
                },
                answer="yes" if is_match else "no",
            )
        )
    return Dataset(
        name="cms",
        task="sm",
        examples=examples,
        label_set=("yes", "no"),
        latent_rules=(
            "descriptions carry the semantics; names may be vowel-stripped codes",
            "start/end dates and diagnosis/procedure codes are distinct concepts",
        ),
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "sm/cms",
    generate,
    task="sm",
    base_count=320,
    description="Medicare-claims column pairs for schema matching",
)
