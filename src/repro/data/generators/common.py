"""Shared machinery for the synthetic dataset generators.

Every generator exposes ``generate(count, seed) -> Dataset`` and is fully
deterministic given ``(count, seed)``.  This module holds the helpers
that recur across datasets: model numbers, prices, surface-form
perturbation for entity matching, and balanced pair assembly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..schema import Example, Record

__all__ = [
    "make_rng",
    "maybe",
    "model_number",
    "price_string",
    "abbreviate",
    "drop_words",
    "shuffle_words",
    "perturb_title",
    "build_matching_examples",
]


def make_rng(seed: int, name: str) -> np.random.Generator:
    """Deterministic per-dataset RNG derived from a root seed."""
    acc = 2166136261
    for byte in name.encode("utf-8"):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return np.random.default_rng([seed & 0xFFFFFFFF, acc])


def maybe(rng: np.random.Generator, probability: float) -> bool:
    return float(rng.random()) < probability


def model_number(rng: np.random.Generator, prefix_len: int = 2) -> str:
    """A product model number such as ``sx-4412`` — the EM key identifier."""
    letters = "abcdefghjkmnpqrstuvwxyz"
    prefix = "".join(
        letters[int(rng.integers(len(letters)))] for __ in range(prefix_len)
    )
    return f"{prefix}-{int(rng.integers(1000, 9999))}"


def price_string(rng: np.random.Generator, low: float, high: float) -> str:
    """A retail price with realistic cents."""
    dollars = float(rng.uniform(low, high))
    cents = (0.99, 0.95, 0.49, 0.0)[int(rng.integers(4))]
    return f"{int(dollars) + cents:.2f}"


def abbreviate(word: str) -> str:
    """Drop interior vowels — a common catalogue abbreviation style."""
    if len(word) <= 3:
        return word
    head, tail = word[0], word[1:]
    return head + "".join(ch for ch in tail if ch not in "aeiou") or word


def drop_words(rng: np.random.Generator, text: str, keep_min: int = 2) -> str:
    words = text.split()
    if len(words) <= keep_min:
        return text
    drop = int(rng.integers(len(words)))
    return " ".join(w for i, w in enumerate(words) if i != drop)


def shuffle_words(rng: np.random.Generator, text: str) -> str:
    words = text.split()
    if len(words) < 3:
        return text
    middle = words[1:]
    rng.shuffle(middle)
    return " ".join([words[0]] + middle)


def perturb_title(rng: np.random.Generator, title: str) -> str:
    """Re-render a product title the way a second marketplace would."""
    result = title
    if maybe(rng, 0.4):
        result = drop_words(rng, result)
    if maybe(rng, 0.3):
        words = result.split()
        pos = int(rng.integers(len(words)))
        words[pos] = abbreviate(words[pos])
        result = " ".join(words)
    if maybe(rng, 0.25):
        result = shuffle_words(rng, result)
    return result


def build_matching_examples(
    task: str,
    count: int,
    rng: np.random.Generator,
    entity_factory: Callable[[np.random.Generator], Dict[str, str]],
    render_left: Callable[[np.random.Generator, Dict[str, str]], Record],
    render_right: Callable[[np.random.Generator, Dict[str, str]], Record],
    hard_negative: Callable[[np.random.Generator, Dict[str, str]], Dict[str, str]],
    positive_rate: float = 0.4,
    meta: Dict[str, str] | None = None,
) -> List[Example]:
    """Assemble a balanced entity-matching dataset.

    Positives render the *same* latent entity twice through independent
    marketplace renderers; hard negatives derive a near-duplicate entity
    (same brand/family, different key identifier) so that superficial
    similarity is not sufficient — the structure that makes key-attribute
    knowledge valuable.
    """
    examples: List[Example] = []
    for __ in range(count):
        entity = entity_factory(rng)
        is_match = maybe(rng, positive_rate)
        left = render_left(rng, entity)
        if is_match:
            right = render_right(rng, entity)
        else:
            right = render_right(rng, hard_negative(rng, entity))
        examples.append(
            Example(
                task=task,
                inputs={"left": left, "right": right},
                answer="yes" if is_match else "no",
                meta=dict(meta or {}),
            )
        )
    return examples
