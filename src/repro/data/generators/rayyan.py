"""Rayyan — bibliographic records for error detection *and* cleaning.

Mirrors the paper's Rayyan quirks: ISO ``YYYY-MM-DD`` creation dates
(slashed dates are errors), ``dddd-dddd`` ISSNs, journal abbreviations
derived from titles (typos are errors), and — the trap the searched
knowledge calls out — ``0`` is a *valid* value for issue/volume, while
``nan`` pagination is genuinely missing.

The DC variant reuses the same corruption machinery but keeps the clean
value as the reference answer, so error detection and cleaning stay
consistent views of one underlying dirty table.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...data import vocab
from ..corruption import slash_date, typo
from ..schema import Dataset, Example, Record
from .common import make_rng, maybe

__all__ = ["generate", "generate_cleaning", "clean_record", "ATTRIBUTES"]

ATTRIBUTES = (
    "journal_title",
    "journal_abbreviation",
    "journal_issn",
    "article_title",
    "article_pagination",
    "article_jvolumn",
    "article_jissue",
    "article_jcreated_at",
)


def _article_title(rng: np.random.Generator) -> str:
    words = vocab.sample_distinct(rng, vocab.ACADEMIC_WORDS, 5)
    return " ".join(words)


def clean_record(rng: np.random.Generator) -> Record:
    """A clean bibliographic record."""
    title, abbreviation = vocab.JOURNALS[int(rng.integers(len(vocab.JOURNALS)))]
    year = int(rng.integers(1998, 2024))
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    start_page = int(rng.integers(1, 900))
    issue = int(rng.integers(0, 13))  # 0 is legitimate (no traditional issue)
    volume = int(rng.integers(0, 80))
    return Record.from_dict(
        {
            "journal_title": title,
            "journal_abbreviation": abbreviation,
            "journal_issn": f"{int(rng.integers(1000, 9999))}-{int(rng.integers(1000, 9999))}",
            "article_title": _article_title(rng),
            "article_pagination": f"{start_page}-{start_page + int(rng.integers(2, 20))}",
            "article_jvolumn": str(volume),
            "article_jissue": str(issue),
            "article_jcreated_at": f"{year}-{month:02d}-{day:02d}",
        }
    )


def _corrupt(
    rng: np.random.Generator, record: Record, attribute: str
) -> Tuple[Record, str, str]:
    """Corrupt one cell; returns (record, error_type, clean_value)."""
    value = record.get(attribute)
    if attribute == "article_jcreated_at":
        corrupted, kind = slash_date(rng, value)
        return record.replace(attribute, corrupted), kind, value
    if attribute == "journal_issn":
        if maybe(rng, 0.5):
            return record.replace(attribute, value.replace("-", "")), "format", value
        return record.replace(attribute, "nan"), "missing", value
    if attribute in ("journal_abbreviation", "journal_title", "article_title"):
        if maybe(rng, 0.3):
            return record.replace(attribute, "nan"), "missing", value
        corrupted, kind = typo(rng, value)
        return record.replace(attribute, corrupted), kind, value
    # numeric-ish fields: pagination / volume / issue
    if maybe(rng, 0.6):
        return record.replace(attribute, "nan"), "missing", value
    return record.replace(attribute, value + "??"), "format", value


#: Attributes whose corruptions are recoverable from context — the only
#: ones the cleaning variant targets (you cannot "correct" a missing
#: volume number that carries no signal elsewhere in the record).
_DC_ATTRIBUTES = (
    "journal_title",
    "journal_abbreviation",
    "journal_issn",
    "article_title",
    "article_jcreated_at",
)


def _corrupt_for_cleaning(
    rng: np.random.Generator, record: Record, attribute: str
) -> Tuple[Record, str, str]:
    """Corrupt one cell such that the clean value is recoverable."""
    value = record.get(attribute)
    if attribute == "article_jcreated_at":
        corrupted, kind = slash_date(rng, value)
        return record.replace(attribute, corrupted), kind, value
    if attribute == "journal_issn":
        return record.replace(attribute, value.replace("-", "")), "format", value
    if attribute == "journal_abbreviation" and maybe(rng, 0.4):
        # Derivable from journal_title via the journal registry.
        return record.replace(attribute, "nan"), "missing", value
    corrupted, kind = typo(rng, value)
    return record.replace(attribute, corrupted), kind, value


def _build(count: int, seed: int, task: str) -> List[Example]:
    rng = make_rng(seed, f"{task}/rayyan")
    examples: List[Example] = []
    for __ in range(count):
        record = clean_record(rng)
        if task == "ed":
            attribute = ATTRIBUTES[int(rng.integers(len(ATTRIBUTES)))]
            is_error = maybe(rng, 0.4)
            error_type = "clean"
            if is_error:
                record, error_type, __clean = _corrupt(rng, record, attribute)
            examples.append(
                Example(
                    task="ed",
                    inputs={"record": record, "attribute": attribute},
                    answer="yes" if is_error else "no",
                    meta={"error_type": error_type},
                )
            )
        else:
            attribute = _DC_ATTRIBUTES[int(rng.integers(len(_DC_ATTRIBUTES)))]
            record, error_type, clean_value = _corrupt_for_cleaning(
                rng, record, attribute
            )
            examples.append(
                Example(
                    task="dc",
                    inputs={"record": record, "attribute": attribute},
                    answer=clean_value,
                    meta={"error_type": error_type},
                )
            )
    return examples


_LATENT_RULES = (
    "article_jcreated_at must be an ISO YYYY-MM-DD date",
    "journal_issn must match dddd-dddd",
    "0 is a valid article_jissue/article_jvolumn value",
    "journal_abbreviation is derived from journal_title",
)


def generate(count: int, seed: int = 0) -> Dataset:
    """Rayyan error-detection dataset."""
    return Dataset(
        name="rayyan",
        task="ed",
        examples=_build(count, seed, "ed"),
        label_set=("yes", "no"),
        latent_rules=_LATENT_RULES,
    )


def generate_cleaning(count: int, seed: int = 0) -> Dataset:
    """Rayyan data-cleaning dataset (every example has a dirty target cell)."""
    return Dataset(
        name="rayyan",
        task="dc",
        examples=_build(count, seed, "dc"),
        latent_rules=_LATENT_RULES,
    )


from .registry import register_generator  # noqa: E402 - registration idiom

register_generator(
    "ed/rayyan",
    generate,
    task="ed",
    base_count=300,
    description="bibliographic records with date/ISSN/abbreviation errors",
)
register_generator(
    "dc/rayyan",
    generate_cleaning,
    task="dc",
    base_count=280,
    description="cleaning view of the dirty Rayyan bibliography",
)
