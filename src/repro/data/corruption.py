"""Error-injection machinery for the ED and DC datasets.

Each injector takes a clean value and returns ``(corrupted, error_type)``.
The injectors mirror the error families the paper's Appendix knowledge
talks about: typos, missing markers, format violations (percent signs on
ABV, 24-hour times in a 12-hour feed, slashed dates in an ISO feed),
and out-of-range numerics.  Error detection asks "is this cell wrong";
data cleaning asks "what should it be" — the DC generators therefore
keep the clean value alongside.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

__all__ = [
    "typo",
    "missing_marker",
    "add_percent_sign",
    "slash_date",
    "out_of_range",
    "Corruption",
    "CorruptionPlan",
]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def typo(rng: np.random.Generator, value: str) -> Tuple[str, str]:
    """Introduce a single character-level typo (swap/drop/duplicate/replace)."""
    letters = [i for i, ch in enumerate(value) if ch.isalpha()]
    if len(letters) < 2:
        return value + "x", "typo"
    kind = int(rng.integers(4))
    chars = list(value)
    if kind == 0:  # swap two adjacent letters
        pos = letters[int(rng.integers(len(letters) - 1))]
        nxt = min(pos + 1, len(chars) - 1)
        chars[pos], chars[nxt] = chars[nxt], chars[pos]
    elif kind == 1:  # drop a letter
        pos = letters[int(rng.integers(len(letters)))]
        del chars[pos]
    elif kind == 2:  # duplicate a letter
        pos = letters[int(rng.integers(len(letters)))]
        chars.insert(pos, chars[pos])
    else:  # replace a letter
        pos = letters[int(rng.integers(len(letters)))]
        chars[pos] = _ALPHABET[int(rng.integers(26))]
    corrupted = "".join(chars)
    if corrupted == value:  # rare no-op swap; force a visible change
        corrupted = value + "x"
    return corrupted, "typo"


def missing_marker(rng: np.random.Generator, value: str) -> Tuple[str, str]:
    """Replace the value with a missing-data marker."""
    marker = ("nan", "n/a", "")[int(rng.integers(3))]
    del value  # unused; signature kept uniform
    return marker, "missing"


def add_percent_sign(rng: np.random.Generator, value: str) -> Tuple[str, str]:
    """Append a percent sign — the Beer-dataset ABV format violation."""
    del rng
    return value + "%", "format"


def slash_date(rng: np.random.Generator, value: str) -> Tuple[str, str]:
    """Convert an ISO ``YYYY-MM-DD`` date to sloppy ``M/D/YY`` form."""
    del rng
    parts = value.split("-")
    if len(parts) != 3:
        return value + "/", "format"
    year, month, day = parts
    return f"{int(month)}/{int(day)}/{year[-2:]}", "format"


def out_of_range(rng: np.random.Generator, value: str) -> Tuple[str, str]:
    """Scale a numeric value far outside its plausible range."""
    try:
        number = float(value)
    except ValueError:
        return "9999", "range"
    factor = 100.0 if rng.integers(2) else 0.0
    # Scaling zero keeps it in range; shift instead so the corruption
    # always escapes any plausible valid interval.
    scaled = number * factor if factor and number else number + 9000.0
    formatted = f"{scaled:g}"
    return formatted, "range"


Corruption = Callable[[np.random.Generator, str], Tuple[str, str]]


class CorruptionPlan:
    """A weighted menu of injectors applied to chosen cells.

    ``inject`` corrupts a value with one sampled injector; generators use
    it to decide *which* error family a given dirty cell exhibits, which
    is exactly the structure AKB's feedback loop needs to discover.
    """

    def __init__(self, menu: List[Tuple[Corruption, float]]):
        if not menu:
            raise ValueError("corruption menu must not be empty")
        self._injectors = [fn for fn, __ in menu]
        weights = np.array([w for __, w in menu], dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("corruption weights must be non-negative, sum > 0")
        self._probs = weights / weights.sum()

    def inject(
        self, rng: np.random.Generator, value: str
    ) -> Tuple[str, str]:
        index = int(rng.choice(len(self._injectors), p=self._probs))
        return self._injectors[index](rng, value)
