"""Record → text serialisation.

Follows the Jellyfish/paper convention of attribute-value linearisation:
``record [ attribute: value ; attribute: value ... ]``.  The knowledge
application layer (:mod:`repro.knowledge.apply`) transforms records
*before* serialisation (dropping ignored attributes, emphasising key
attributes, canonicalising missing markers, adding derived violation
markers), so this module stays a dumb formatter.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .schema import MISSING_MARKERS, Record

__all__ = ["serialize_record", "serialize_pair", "serialize_values", "MISSING_TOKEN"]

#: Canonical prompt marker for a missing value (groundable by upstream SFT).
MISSING_TOKEN = "[missing]"


def serialize_record(
    record: Record,
    highlight: str = "",
    canonical_missing: bool = False,
) -> str:
    """Linearise one record.

    ``highlight`` names an attribute to flag inline (used by ED/DC/DI to
    point at the cell under question).  When ``canonical_missing`` is set
    every raw missing marker is rendered as :data:`MISSING_TOKEN`.
    """
    parts = []
    for attribute, value in record:
        rendered = value
        if canonical_missing and value.strip().lower() in MISSING_MARKERS:
            rendered = MISSING_TOKEN
        if attribute == highlight:
            parts.append(f"{attribute}: << {rendered} >>")
        else:
            parts.append(f"{attribute}: {rendered}")
    return "record [ " + " ; ".join(parts) + " ]"


def similarity_bucket(left: str, right: str) -> str:
    """Coarse lexical similarity: ``equal`` / ``similar`` / ``different``.

    A bag-of-features encoder cannot compare two segments of its own
    prompt the way transformer attention does, so matching-task
    serialisation includes these derived comparison tokens.  They are
    knowledge-independent (every baseline sees them); knowledge rules
    refine *which* comparisons matter.
    """
    left, right = left.strip().lower(), right.strip().lower()
    if left == right:
        return "equal"
    left_tokens, right_tokens = set(left.split()), set(right.split())
    if not left_tokens or not right_tokens:
        return "different"
    overlap = len(left_tokens & right_tokens) / len(left_tokens | right_tokens)
    if overlap >= 0.5 or left in right or right in left:
        return "similar"
    if overlap >= 0.2:
        return "related"
    return "different"


def serialize_comparisons(left: Record, right: Record) -> str:
    """Per-attribute comparison tokens for an entity pair."""
    parts = []
    for attribute in left.attributes:
        if attribute not in right:
            continue
        bucket = similarity_bucket(left.get(attribute), right.get(attribute))
        parts.append(f"{attribute} {bucket}")
    if not parts:
        return ""
    return "comparison [ " + " ; ".join(parts) + " ]"


def serialize_pair(left: Record, right: Record, **kwargs) -> str:
    """Linearise an entity pair for matching tasks."""
    return (
        "entity a "
        + serialize_record(left, **kwargs)
        + " entity b "
        + serialize_record(right, **kwargs)
        + " "
        + serialize_comparisons(left, right)
    )


def serialize_values(values: Sequence[str], limit: int = 8) -> str:
    """Linearise a column sample for column type annotation."""
    shown: Iterable[str] = list(values)[:limit]
    return "column values [ " + " ; ".join(shown) + " ]"
