"""Vocabulary banks used by the synthetic dataset generators.

The paper evaluates on public datasets (product catalogues, flight
status feeds, bibliographic records, brewery lists, medical schemata).
These banks give the generators realistic surface forms so that the
tasks have genuine lexical structure: brands really co-occur with their
product lines, journals have plausible abbreviations, breweries have
styles, etc.  The same banks feed the world-knowledge pretraining corpus
(:mod:`repro.tinylm.pretrain`), which is how the "base LLM" acquires the
brand/product associations the paper attributes to pretraining.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "PHONE_BRANDS",
    "PHONE_LINES",
    "ELECTRONICS_BRANDS",
    "ELECTRONICS_PRODUCTS",
    "RETAIL_BRANDS",
    "RETAIL_PRODUCTS",
    "GROCERY_BRANDS",
    "FLAVORS",
    "SCENTS",
    "COLORS",
    "MATERIALS",
    "GENDERS",
    "SPORT_TYPES",
    "FEATURES",
    "AIRLINES",
    "AIRPORTS",
    "JOURNALS",
    "BEER_STYLES",
    "BREWERY_SUFFIXES",
    "BEER_ADJECTIVES",
    "BEER_NOUNS",
    "CITIES",
    "STATES",
    "FIRST_NAMES",
    "LAST_NAMES",
    "RESTAURANT_WORDS",
    "CUISINES",
    "MUSIC_GENRES",
    "ACADEMIC_WORDS",
    "choice",
    "sample_distinct",
]

# --------------------------------------------------------------------------
# Consumer electronics
# --------------------------------------------------------------------------
PHONE_BRANDS: Tuple[str, ...] = (
    "samsung", "apple", "nokia", "motorola", "huawei", "xiaomi", "oneplus",
    "sony", "lg", "htc", "blackberry", "google", "oppo", "vivo", "zte",
    "alcatel", "asus", "lenovo", "honor", "realme",
)

# Product lines keyed by brand — gives the imputation tasks real signal.
PHONE_LINES: Dict[str, Tuple[str, ...]] = {
    "samsung": ("galaxy s", "galaxy note", "galaxy a", "galaxy z"),
    "apple": ("iphone", "iphone pro", "iphone mini", "iphone plus"),
    "nokia": ("lumia", "xpress", "asha", "pureview"),
    "motorola": ("moto g", "moto e", "razr", "edge"),
    "huawei": ("p series", "mate", "nova", "y series"),
    "xiaomi": ("redmi", "mi", "poco", "redmi note"),
    "oneplus": ("oneplus nord", "oneplus t", "oneplus r", "oneplus pro"),
    "sony": ("xperia z", "xperia x", "xperia 1", "xperia compact"),
    "lg": ("optimus", "g series", "v series", "velvet"),
    "htc": ("one m", "desire", "u ultra", "wildfire"),
    "blackberry": ("curve", "bold", "passport", "key"),
    "google": ("pixel", "pixel a", "pixel pro", "nexus"),
    "oppo": ("find x", "reno", "a series", "f series"),
    "vivo": ("v series", "y series", "x fold", "iqoo"),
    "zte": ("axon", "blade", "nubia", "grand"),
    "alcatel": ("idol", "pixi", "pop", "one touch"),
    "asus": ("zenfone", "rog phone", "padfone", "live"),
    "lenovo": ("vibe", "k series", "legion", "zuk"),
    "honor": ("magic", "x series", "play", "view"),
    "realme": ("gt", "narzo", "c series", "number series"),
}

ELECTRONICS_BRANDS: Tuple[str, ...] = (
    "sony", "panasonic", "canon", "nikon", "bose", "jbl", "logitech",
    "netgear", "linksys", "garmin", "tomtom", "sandisk", "kingston",
    "seagate", "toshiba", "philips", "sharp", "epson", "brother", "belkin",
    "dlink", "kensington", "plantronics", "jabra", "polk",
)

ELECTRONICS_PRODUCTS: Dict[str, Tuple[str, ...]] = {
    "sony": ("bravia lcd tv", "cybershot camera", "walkman player", "handycam camcorder"),
    "panasonic": ("viera plasma tv", "lumix camera", "cordless phone", "blu ray player"),
    "canon": ("powershot camera", "eos dslr", "pixma printer", "imageclass copier"),
    "nikon": ("coolpix camera", "dslr body", "binoculars", "speedlight flash"),
    "bose": ("wave radio", "companion speakers", "quietcomfort headphones", "soundlink speaker"),
    "jbl": ("flip speaker", "charge speaker", "tune headphones", "soundbar"),
    "logitech": ("wireless mouse", "gaming keyboard", "webcam", "speaker system"),
    "netgear": ("wireless router", "range extender", "network switch", "cable modem"),
    "linksys": ("wifi router", "mesh system", "access point", "usb adapter"),
    "garmin": ("gps navigator", "fitness watch", "dash cam", "fishfinder"),
    "tomtom": ("car gps", "traffic receiver", "sport watch", "mount kit"),
    "sandisk": ("sd memory card", "usb flash drive", "microsd card", "portable ssd"),
    "kingston": ("ram module", "usb drive", "ssd drive", "compactflash card"),
    "seagate": ("external hard drive", "portable drive", "nas drive", "backup plus"),
    "toshiba": ("laptop", "external drive", "led tv", "dvd recorder"),
    "philips": ("led monitor", "home theater", "electric shaver", "hue bulb"),
    "sharp": ("aquos tv", "microwave oven", "air purifier", "calculator"),
    "epson": ("stylus printer", "ecotank printer", "projector", "scanner"),
    "brother": ("laser printer", "label maker", "sewing machine", "fax machine"),
    "belkin": ("surge protector", "usb hub", "charging pad", "cable kit"),
    "dlink": ("router", "ip camera", "switch", "powerline adapter"),
    "kensington": ("laptop lock", "trackball", "docking station", "privacy screen"),
    "plantronics": ("bluetooth headset", "office headset", "gaming headset", "speakerphone"),
    "jabra": ("wireless earbuds", "speakerphone", "mono headset", "sport earbuds"),
    "polk": ("bookshelf speakers", "subwoofer", "soundbar", "in ceiling speakers"),
}

RETAIL_BRANDS: Tuple[str, ...] = (
    "trinketbag", "allure auto", "naisha", "gift studios", "frenemy",
    "shopmania", "urban hub", "craftline", "decor villa", "style nest",
    "fab street", "zenly", "homely", "glowberry", "artzone",
    "maxcart", "trendify", "casa bella", "silverline", "petal crafts",
)

RETAIL_PRODUCTS: Tuple[str, ...] = (
    "alloy necklace", "car mat", "canvas shoes", "stone showpiece",
    "mousepad", "cotton kurta", "wall clock", "ceramic vase", "photo frame",
    "leather wallet", "analog watch", "printed bedsheet", "table lamp",
    "yoga mat", "steel bottle", "laptop sleeve", "cushion cover",
    "wooden tray", "scented candle", "desk organizer",
)

GROCERY_BRANDS: Tuple[str, ...] = (
    "folgers", "maxwell house", "starbucks", "twinings", "lipton",
    "celestial", "nescafe", "peets", "dunkin", "bigelow",
    "ghirardelli", "hersheys", "lindt", "nutella", "skippy",
    "heinz", "frenchs", "tabasco", "mccormick", "kikkoman",
)

FLAVORS: Tuple[str, ...] = (
    "vanilla", "hazelnut", "caramel", "mocha", "french roast",
    "colombian", "chai", "earl grey", "peppermint", "chamomile",
    "dark chocolate", "sea salt", "honey", "lemon", "raspberry",
    "cinnamon", "pumpkin spice", "green tea", "espresso", "toffee",
)

SCENTS: Tuple[str, ...] = (
    "lavender", "eucalyptus", "sandalwood", "jasmine", "rose",
    "citrus", "ocean breeze", "fresh linen", "coconut", "vanilla bean",
)

COLORS: Tuple[str, ...] = (
    "black", "white", "red", "blue", "green", "silver", "gold",
    "gray", "pink", "purple", "orange", "brown", "navy", "teal", "beige",
)

MATERIALS: Tuple[str, ...] = (
    "cotton", "leather", "steel", "wood", "ceramic", "alloy",
    "polyester", "silk", "canvas", "rubber", "glass", "bamboo",
)

GENDERS: Tuple[str, ...] = ("men", "women", "unisex", "kids")

SPORT_TYPES: Tuple[str, ...] = (
    "running", "basketball", "soccer", "tennis", "cycling",
    "hiking", "swimming", "yoga", "golf", "skateboarding",
)

ITEM_FORMS: Tuple[str, ...] = (
    "ground", "whole bean", "pods", "tea bags", "instant", "liquid", "powder",
)

FEATURES: Tuple[str, ...] = (
    "breathable", "waterproof", "lightweight", "anti slip",
    "quick dry", "wear resistant", "shockproof", "foldable",
    "adjustable", "reflective",
)

# --------------------------------------------------------------------------
# Flights
# --------------------------------------------------------------------------
AIRLINES: Tuple[str, ...] = (
    "aa", "ua", "dl", "wn", "b6", "as", "nk", "f9", "ha", "vx",
)

AIRPORTS: Tuple[str, ...] = (
    "jfk", "lax", "ord", "dfw", "den", "sfo", "sea", "atl", "mia", "bos",
    "phx", "iah", "mco", "ewr", "msp", "dtw", "phl", "lga", "slc", "bwi",
)

# --------------------------------------------------------------------------
# Bibliographic (Rayyan)
# --------------------------------------------------------------------------
JOURNALS: Tuple[Tuple[str, str], ...] = (
    ("journal of clinical epidemiology", "j clin epidemiol"),
    ("annals of internal medicine", "ann intern med"),
    ("british medical journal", "bmj"),
    ("the lancet", "lancet"),
    ("new england journal of medicine", "n engl j med"),
    ("journal of the american medical association", "jama"),
    ("cochrane database of systematic reviews", "cochrane db syst rev"),
    ("american journal of public health", "am j public health"),
    ("journal of epidemiology and community health", "j epidemiol community health"),
    ("international journal of epidemiology", "int j epidemiol"),
    ("bmc medical research methodology", "bmc med res methodol"),
    ("plos medicine", "plos med"),
    ("journal of health economics", "j health econ"),
    ("health services research", "health serv res"),
    ("medical care", "med care"),
    ("journal of general internal medicine", "j gen intern med"),
)

ACADEMIC_WORDS: Tuple[str, ...] = (
    "randomized", "controlled", "trial", "systematic", "review",
    "cohort", "study", "effect", "analysis", "outcomes", "intervention",
    "screening", "treatment", "risk", "factors", "prevalence",
    "mortality", "chronic", "disease", "patients", "clinical", "evidence",
    "association", "population", "longitudinal", "meta",
)

# --------------------------------------------------------------------------
# Beer
# --------------------------------------------------------------------------
BEER_STYLES: Tuple[str, ...] = (
    "american ipa", "pale ale", "amber ale", "stout", "porter",
    "pilsner", "hefeweizen", "saison", "lager", "brown ale",
    "double ipa", "wheat ale", "kolsch", "scotch ale", "cream ale",
    "fruit beer", "oatmeal stout", "red ale", "blonde ale", "barleywine",
)

BREWERY_SUFFIXES: Tuple[str, ...] = (
    "brewing company", "brewery", "brewing co", "beer company",
    "ales", "brewhouse", "craft brewery", "brewing works",
)

BEER_ADJECTIVES: Tuple[str, ...] = (
    "hoppy", "golden", "wild", "iron", "copper", "rustic", "lucky",
    "twisted", "broken", "raging", "silent", "burning", "frozen",
    "crooked", "velvet", "midnight", "roaring", "drifting",
)

BEER_NOUNS: Tuple[str, ...] = (
    "trail", "river", "anchor", "bear", "fox", "summit", "canyon",
    "harvest", "barrel", "wagon", "lantern", "prairie", "raven",
    "meadow", "boulder", "compass", "orchard", "falls",
)

# --------------------------------------------------------------------------
# Geography & people
# --------------------------------------------------------------------------
CITIES: Tuple[str, ...] = (
    "portland", "austin", "denver", "seattle", "chicago", "boston",
    "san diego", "nashville", "asheville", "boulder", "madison",
    "minneapolis", "tampa", "tucson", "omaha", "richmond", "savannah",
    "columbus", "louisville", "albuquerque", "san francisco",
    "new york city", "grand rapids", "fort collins", "bend",
)

STATES: Tuple[str, ...] = (
    "or", "tx", "co", "wa", "il", "ma", "ca", "tn", "nc", "wi",
    "mn", "fl", "az", "ne", "va", "ga", "oh", "ky", "nm", "mi",
)

FIRST_NAMES: Tuple[str, ...] = (
    "james", "mary", "robert", "patricia", "john", "jennifer",
    "michael", "linda", "david", "elizabeth", "william", "barbara",
    "richard", "susan", "joseph", "jessica", "thomas", "sarah",
    "carlos", "maria", "wei", "yuki", "ahmed", "fatima", "olga",
)

LAST_NAMES: Tuple[str, ...] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia",
    "miller", "davis", "rodriguez", "martinez", "hernandez", "lopez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson",
    "chen", "wang", "kim", "nguyen", "patel", "ivanov", "tanaka",
)

RESTAURANT_WORDS: Tuple[str, ...] = (
    "grill", "bistro", "kitchen", "cafe", "diner", "tavern",
    "trattoria", "cantina", "steakhouse", "noodle house", "pizzeria",
    "bakery", "brasserie", "chophouse", "eatery",
)

CUISINES: Tuple[str, ...] = (
    "italian", "mexican", "thai", "japanese", "indian", "french",
    "american", "chinese", "mediterranean", "korean", "vietnamese",
    "spanish", "greek", "ethiopian", "peruvian",
)

MUSIC_GENRES: Tuple[str, ...] = (
    "rock", "pop", "jazz", "country", "hip hop", "electronic",
    "classical", "folk", "blues", "reggae", "metal", "soul",
)

ORGANIZATIONS: Tuple[str, ...] = (
    "hoppy trail inc", "iron anchor group", "velvet fox ltd",
    "summit harvest association", "copper lantern inc", "wild meadow group",
    "roaring canyon ltd", "silent prairie inc", "lucky compass group",
    "crooked barrel association", "golden falls inc", "twisted orchard ltd",
    "burning raven group", "frozen boulder inc", "rustic wagon association",
    "drifting river ltd", "midnight bear group", "broken summit inc",
)


def choice(rng: np.random.Generator, bank: Sequence[str]) -> str:
    """Uniformly pick one entry from a bank."""
    return bank[int(rng.integers(len(bank)))]


def sample_distinct(
    rng: np.random.Generator, bank: Sequence[str], count: int
) -> List[str]:
    """Pick ``count`` distinct entries (without replacement)."""
    if count > len(bank):
        raise ValueError(f"cannot sample {count} from bank of {len(bank)}")
    idx = rng.choice(len(bank), size=count, replace=False)
    return [bank[int(i)] for i in idx]
