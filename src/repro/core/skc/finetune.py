"""SKC stage 3 — few-shot fine-tuning (Alg. 1 lines 11-14, Eq. 5).

The backbone stays frozen; only the fused knowledge patches and their
interpolation weights λ receive gradients.  Prompts carry the task's
seed knowledge — AKB's searched knowledge arrives later, at inference.
"""

from __future__ import annotations

from typing import Optional

from ... import obs
from ...data.schema import Dataset
from ...knowledge.rules import Knowledge
from ...knowledge.seed import seed_knowledge
from ...tasks.base import get_task
from ...tinylm.model import ScoringLM
from ...tinylm.trainer import Trainer, TrainReport
from ..config import SKCConfig

__all__ = ["few_shot_finetune"]


def few_shot_finetune(
    model: ScoringLM,
    few_shot: Dataset,
    config: SKCConfig,
    knowledge: Optional[Knowledge] = None,
    rank_space: Optional[bool] = None,
) -> TrainReport:
    """Fine-tune the attached adapter on the few-shot downstream data.

    ``rank_space=None`` (default) lets the trainer auto-select the
    frozen-backbone rank-space engine; pass ``False`` to force the
    legacy dense path (the train benchmark's comparison arm).
    """
    if model.adapter is None:
        raise ValueError("attach a fusion adapter before few-shot fine-tuning")
    if knowledge is None:
        knowledge = seed_knowledge(few_shot.task)
    with obs.span(
        "skc.finetune",
        dataset=few_shot.name,
        task=few_shot.task,
        examples=len(few_shot.examples),
    ):
        task = get_task(few_shot.task)
        examples = [
            task.training_example(example, knowledge, few_shot)
            for example in few_shot.examples
        ]
        trainer = Trainer(
            model,
            config.finetune_train_config(),
            train_base=False,
            rank_space=rank_space,
        )
        return trainer.fit(examples)
