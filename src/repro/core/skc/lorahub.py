"""LoRAHub-style black-box λ search — a related-work ablation.

The paper's Related Work contrasts SKC with LoRAHub [94], which fuses
LoRA modules by *black-box coefficient search* instead of gradient
descent: the patches stay frozen and only the mixing weights λ are
optimised against few-shot performance with a derivative-free method.
This module implements that alternative — a (1+1) evolution strategy
over λ — so the design choice "gradient-learned λ + trainable patches"
(SKC) can be ablated against "search-only λ, frozen patches" (LoRAHub)
on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ...data.schema import Dataset
from ...knowledge.rules import Knowledge
from ...knowledge.seed import seed_knowledge
from ...tasks.base import get_task
from ...tinylm.fusion import PatchFusion
from ...tinylm.linalg import rng_for
from ...tinylm.lora import LoRAPatch
from ...tinylm.model import ScoringLM
from ..config import SKCConfig

__all__ = ["LoRAHubConfig", "lorahub_search"]


@dataclass(frozen=True)
class LoRAHubConfig:
    """Black-box search budget and mutation scale."""

    iterations: int = 40
    mutation_scale: float = 0.05
    initial_lambda: float = 0.05
    lambda_bounds: Tuple[float, float] = (-0.3, 0.8)
    seed: int = 0


def _few_shot_score(
    model: ScoringLM, few_shot: Dataset, knowledge: Knowledge
) -> float:
    task = get_task(few_shot.task)
    return task.evaluate(model, few_shot.examples, knowledge, few_shot)


def lorahub_search(
    upstream_model: ScoringLM,
    patches: Sequence[LoRAPatch],
    few_shot: Dataset,
    config: Optional[LoRAHubConfig] = None,
    skc_config: Optional[SKCConfig] = None,
) -> Tuple[ScoringLM, PatchFusion, float]:
    """Search mixing weights for frozen patches with a (1+1)-ES.

    Returns ``(model, fusion, best_score)`` where the model carries the
    fused adapter with the best λ found.  No gradients flow anywhere —
    faithful to LoRAHub's black-box setting, and the reason it trails
    SKC when the few-shot signal could also improve the patches
    themselves.
    """
    config = config or LoRAHubConfig()
    skc_config = skc_config or SKCConfig()
    if not patches:
        raise ValueError("lorahub search needs at least one upstream patch")
    model = upstream_model.clone()
    # The fresh patch stays at zero (untrained): LoRAHub composes
    # existing modules rather than learning new parameters.
    fusion = PatchFusion(
        [patch.clone() for patch in patches],
        LoRAPatch(
            "lorahub-null",
            model.config.target_shapes(),
            rank=skc_config.lora_rank,
            alpha=skc_config.lora_alpha,
            seed=config.seed,
        ),
        initial_weight=config.initial_lambda,
        train_lambdas=False,
        train_patches=False,
    )
    model.attach(fusion)
    knowledge = seed_knowledge(few_shot.task)
    rng = rng_for(config.seed, "lorahub", few_shot.name)

    low, high = config.lambda_bounds
    best_lambdas = fusion.lambdas.copy()
    best_score = _few_shot_score(model, few_shot, knowledge)
    for __ in range(config.iterations):
        candidate = best_lambdas + rng.normal(
            0.0, config.mutation_scale, size=best_lambdas.shape
        )
        np.clip(candidate, low, high, out=candidate)
        fusion.lambdas[:] = candidate
        # In-place λ write: invalidate the model's effective-weight memo.
        model.bump_adapter_version()
        score = _few_shot_score(model, few_shot, knowledge)
        if score >= best_score:
            best_score = score
            best_lambdas = candidate.copy()
    fusion.lambdas[:] = best_lambdas
    model.bump_adapter_version()
    return model, fusion, best_score
