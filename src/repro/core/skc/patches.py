"""SKC stage 1 — upstream knowledge patch extraction (Alg. 1 lines 1-6).

For every upstream dataset, a fresh LoRA module is fine-tuned *on the
base model* (cross-model low-rank parameterisation, paper Eq. 2-3): the
upstream DP-LLM has already absorbed the upstream data, so further
fine-tuning it would extract nothing, while the analogous base model
shares architecture and pretraining and therefore yields patches that
transfer onto the upstream model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...data.schema import Dataset
from ...knowledge.rules import Knowledge
from ...knowledge.seed import ORACLES
from ...tasks.base import get_task
from ...tinylm.lora import LoRAPatch
from ...tinylm.model import ScoringLM
from ...tinylm.trainer import Trainer, TrainingExample
from ..config import SKCConfig

__all__ = ["dataset_training_examples", "extract_patch", "extract_knowledge_patches"]


def dataset_training_examples(
    dataset: Dataset, knowledge: Optional[Knowledge] = None
) -> List[TrainingExample]:
    """Convert a dataset into supervised instances for Eq. 3 training.

    Upstream datasets train with their oracle knowledge in the prompt —
    the instruction-tuning convention that grounds the canonical marker
    vocabulary in the model.
    """
    if knowledge is None:
        knowledge = ORACLES.get("up/" + dataset.name, Knowledge.empty())
    task = get_task(dataset.task)
    return [
        task.training_example(example, knowledge, dataset)
        for example in dataset.examples
    ]


def extract_patch(
    base_model: ScoringLM,
    dataset: Dataset,
    config: SKCConfig,
    knowledge: Optional[Knowledge] = None,
) -> LoRAPatch:
    """Train one isolated knowledge patch for ``dataset`` on the base model."""
    patch = LoRAPatch(
        name=f"{dataset.task}-{dataset.name}",
        target_shapes=base_model.config.target_shapes(),
        rank=config.lora_rank,
        alpha=config.lora_alpha,
        seed=config.seed,
    )
    # Work on a clone so the caller's base model never carries state.
    worker = base_model.clone()
    worker.attach(patch)
    trainer = Trainer(worker, config.patch_train_config(), train_base=False)
    trainer.fit(dataset_training_examples(dataset, knowledge))
    worker.detach()
    return patch


def extract_knowledge_patches(
    base_model: ScoringLM,
    upstream_datasets: Sequence[Dataset],
    config: Optional[SKCConfig] = None,
) -> List[LoRAPatch]:
    """Alg. 1 stage 1: one patch per upstream dataset, mutually isolated."""
    config = config or SKCConfig()
    return [
        extract_patch(base_model, dataset, config)
        for dataset in upstream_datasets
    ]
