"""SKC stage 1 — upstream knowledge patch extraction (Alg. 1 lines 1-6).

For every upstream dataset, a fresh LoRA module is fine-tuned *on the
base model* (cross-model low-rank parameterisation, paper Eq. 2-3): the
upstream DP-LLM has already absorbed the upstream data, so further
fine-tuning it would extract nothing, while the analogous base model
shares architecture and pretraining and therefore yields patches that
transfer onto the upstream model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ... import obs
from ... import store as artifact_store
from ...data.schema import Dataset
from ...knowledge.rules import Knowledge
from ...knowledge.seed import ORACLES
from ...runtime import WorkerPool, resolve_shared, share
from ...tasks.base import get_task
from ...tinylm.lora import LoRAPatch
from ...tinylm.model import ScoringLM
from ...tinylm.trainer import Trainer, TrainingExample
from ..config import SKCConfig

__all__ = [
    "dataset_training_examples",
    "patch_store_key",
    "extract_patch",
    "extract_knowledge_patches",
]


def dataset_training_examples(
    dataset: Dataset, knowledge: Optional[Knowledge] = None
) -> List[TrainingExample]:
    """Convert a dataset into supervised instances for Eq. 3 training.

    Upstream datasets train with their oracle knowledge in the prompt —
    the instruction-tuning convention that grounds the canonical marker
    vocabulary in the model.
    """
    if knowledge is None:
        knowledge = ORACLES.get("up/" + dataset.name, Knowledge.empty())
    task = get_task(dataset.task)
    return [
        task.training_example(example, knowledge, dataset)
        for example in dataset.examples
    ]


def patch_store_key(
    base_model: ScoringLM,
    dataset: Dataset,
    config: SKCConfig,
    knowledge: Knowledge,
) -> str:
    """Content address of one extracted patch (full Eq. 3 provenance)."""
    return artifact_store.artifact_key(
        "patch",
        {
            "base": artifact_store.model_fingerprint(base_model),
            "dataset": dataset,
            "config": config,
            "knowledge": knowledge,
        },
    )


def extract_patch(
    base_model: ScoringLM,
    dataset: Dataset,
    config: SKCConfig,
    knowledge: Optional[Knowledge] = None,
) -> LoRAPatch:
    """Train one isolated knowledge patch for ``dataset`` on the base model.

    With an active artifact store the trained ``(B, A)`` arrays persist
    under the full provenance (base weights, dataset content, config,
    oracle knowledge), so stage-1 extraction is skipped entirely on a
    warm run — a store hit rebuilds the patch and loads the arrays.
    """
    if knowledge is None:
        knowledge = ORACLES.get("up/" + dataset.name, Knowledge.empty())
    with obs.span(
        "skc.extract_patch", dataset=dataset.name, task=dataset.task
    ):
        patch = LoRAPatch(
            name=f"{dataset.task}-{dataset.name}",
            target_shapes=base_model.config.target_shapes(),
            rank=config.lora_rank,
            alpha=config.lora_alpha,
            seed=config.seed,
        )
        store = artifact_store.active()
        store_key = None
        if store is not None:
            store_key = patch_store_key(
                base_model, dataset, config, knowledge
            )
            cached = store.get("patch", store_key)
            if cached is not None:
                try:
                    patch.load_state_dict(cached)
                    return patch
                except Exception:
                    # structurally unexpected entry — retrain and rewrite
                    obs.counter("store.repair", kind="patch")
        # Work on a clone so the caller's base model never carries state.
        worker = base_model.clone()
        worker.attach(patch)
        trainer = Trainer(
            worker, config.patch_train_config(), train_base=False
        )
        trainer.fit(dataset_training_examples(dataset, knowledge))
        worker.detach()
        if store_key is not None:
            store.put("patch", store_key, patch.state_dict())
        obs.counter("skc.patches_trained")
        return patch


def _patch_task(args) -> LoRAPatch:
    """Worker-pool task wrapping :func:`extract_patch`.

    Patch extraction is a pure function of (base model, dataset,
    config): the LoRA init and the trainer's shuffling both derive from
    seeds in the arguments, so a patch trained in a worker process is
    bit-identical to one trained inline.  The base model arrives as a
    fork-inherited :class:`~repro.runtime.SharedRef` — only the dataset
    and config ever cross the IPC boundary.
    """
    base_model, dataset, config = args
    return extract_patch(resolve_shared(base_model), dataset, config)


def extract_knowledge_patches(
    base_model: ScoringLM,
    upstream_datasets: Sequence[Dataset],
    config: Optional[SKCConfig] = None,
    jobs: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> List[LoRAPatch]:
    """Alg. 1 stage 1: one patch per upstream dataset, mutually isolated.

    The patches are independent by construction (each trains a fresh
    LoRA on a clone of the base model), so extraction fans out over a
    :class:`~repro.runtime.WorkerPool` — ``jobs``/``REPRO_JOBS``
    controls the width, ``pool`` overrides it, and ``jobs=1`` is the
    historical serial loop.
    """
    config = config or SKCConfig()
    pool = pool if pool is not None else WorkerPool(jobs)
    base_ref = share(base_model)
    return pool.map(
        _patch_task,
        [(base_ref, dataset, config) for dataset in upstream_datasets],
    )
