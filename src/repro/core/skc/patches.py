"""SKC stage 1 — upstream knowledge patch extraction (Alg. 1 lines 1-6).

For every upstream dataset, a fresh LoRA module is fine-tuned *on the
base model* (cross-model low-rank parameterisation, paper Eq. 2-3): the
upstream DP-LLM has already absorbed the upstream data, so further
fine-tuning it would extract nothing, while the analogous base model
shares architecture and pretraining and therefore yields patches that
transfer onto the upstream model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...data.schema import Dataset
from ...knowledge.rules import Knowledge
from ...knowledge.seed import ORACLES
from ...runtime import WorkerPool
from ...tasks.base import get_task
from ...tinylm.lora import LoRAPatch
from ...tinylm.model import ScoringLM
from ...tinylm.trainer import Trainer, TrainingExample
from ..config import SKCConfig

__all__ = ["dataset_training_examples", "extract_patch", "extract_knowledge_patches"]


def dataset_training_examples(
    dataset: Dataset, knowledge: Optional[Knowledge] = None
) -> List[TrainingExample]:
    """Convert a dataset into supervised instances for Eq. 3 training.

    Upstream datasets train with their oracle knowledge in the prompt —
    the instruction-tuning convention that grounds the canonical marker
    vocabulary in the model.
    """
    if knowledge is None:
        knowledge = ORACLES.get("up/" + dataset.name, Knowledge.empty())
    task = get_task(dataset.task)
    return [
        task.training_example(example, knowledge, dataset)
        for example in dataset.examples
    ]


def extract_patch(
    base_model: ScoringLM,
    dataset: Dataset,
    config: SKCConfig,
    knowledge: Optional[Knowledge] = None,
) -> LoRAPatch:
    """Train one isolated knowledge patch for ``dataset`` on the base model."""
    patch = LoRAPatch(
        name=f"{dataset.task}-{dataset.name}",
        target_shapes=base_model.config.target_shapes(),
        rank=config.lora_rank,
        alpha=config.lora_alpha,
        seed=config.seed,
    )
    # Work on a clone so the caller's base model never carries state.
    worker = base_model.clone()
    worker.attach(patch)
    trainer = Trainer(worker, config.patch_train_config(), train_base=False)
    trainer.fit(dataset_training_examples(dataset, knowledge))
    worker.detach()
    return patch


def _patch_task(args) -> LoRAPatch:
    """Worker-pool task wrapping :func:`extract_patch`.

    Patch extraction is a pure function of (base model, dataset,
    config): the LoRA init and the trainer's shuffling both derive from
    seeds in the arguments, so a patch trained in a worker process is
    bit-identical to one trained inline.
    """
    base_model, dataset, config = args
    return extract_patch(base_model, dataset, config)


def extract_knowledge_patches(
    base_model: ScoringLM,
    upstream_datasets: Sequence[Dataset],
    config: Optional[SKCConfig] = None,
    jobs: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> List[LoRAPatch]:
    """Alg. 1 stage 1: one patch per upstream dataset, mutually isolated.

    The patches are independent by construction (each trains a fresh
    LoRA on a clone of the base model), so extraction fans out over a
    :class:`~repro.runtime.WorkerPool` — ``jobs``/``REPRO_JOBS``
    controls the width, ``pool`` overrides it, and ``jobs=1`` is the
    historical serial loop.
    """
    config = config or SKCConfig()
    pool = pool if pool is not None else WorkerPool(jobs)
    return pool.map(
        _patch_task,
        [(base_model, dataset, config) for dataset in upstream_datasets],
    )
