"""SKC stage 2 — dynamic knowledge patch fusion (Alg. 1 lines 7-10).

Attaches the λ-weighted stack of upstream knowledge patches plus a
fresh shared patch to a clone of the upstream DP-LLM (paper Eq. 4).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ...tinylm.fusion import PatchFusion
from ...tinylm.lora import LoRAPatch
from ...tinylm.model import ScoringLM
from ..config import SKCConfig
from .strategies import build_adapter

__all__ = ["attach_fusion"]


def attach_fusion(
    upstream_model: ScoringLM,
    upstream_patches: Sequence[LoRAPatch],
    config: SKCConfig,
    strategy: str = "adaptive",
    name: str = "downstream",
) -> Tuple[ScoringLM, PatchFusion]:
    """Clone the upstream model and attach the fused adapter stack.

    The clone keeps the upstream weights θ̂₀ frozen; all subsequent
    training flows through the fusion parameters only.
    """
    model = upstream_model.clone()
    fusion = build_adapter(strategy, model, upstream_patches, config, name)
    model.attach(fusion)
    return model, fusion
