"""Patch weighting strategies (paper Table VI).

* ``single``   — no upstream patches; only the fresh patch trains
  (equivalently: plain few-shot LoRA fine-tuning of the upstream model).
* ``uniform``  — upstream patches fused with fixed equal weights.
* ``adaptive`` — learnable λ (the full SKC behaviour).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ...tinylm.fusion import PatchFusion
from ...tinylm.lora import LoRAPatch
from ...tinylm.model import ScoringLM
from ..config import SKCConfig

__all__ = ["STRATEGIES", "build_adapter"]

STRATEGIES: Tuple[str, ...] = ("single", "uniform", "adaptive")


def build_adapter(
    strategy: str,
    model: ScoringLM,
    upstream_patches: Sequence[LoRAPatch],
    config: SKCConfig,
    name: str = "downstream",
) -> PatchFusion:
    """Assemble the fusion adapter for a weighting strategy.

    ``single`` still returns a :class:`PatchFusion` (with zero upstream
    patches) so the fine-tuning stage is identical across strategies.
    """
    if strategy not in STRATEGIES:
        raise KeyError(f"unknown strategy {strategy!r}; known: {STRATEGIES}")
    new_patch = LoRAPatch(
        name=name,
        target_shapes=model.config.target_shapes(),
        rank=config.lora_rank,
        alpha=config.lora_alpha,
        seed=config.seed,
    )
    if strategy == "single":
        return PatchFusion(
            upstream_patches=[],
            new_patch=new_patch,
            train_lambdas=False,
            train_patches=False,
        )
    patches = [patch.clone() for patch in upstream_patches]
    if strategy == "uniform":
        weight = 1.0 / max(len(patches), 1)
        return PatchFusion(
            upstream_patches=patches,
            new_patch=new_patch,
            initial_weight=weight,
            train_lambdas=False,
            train_patches=config.train_patches,
        )
    return PatchFusion(
        upstream_patches=patches,
        new_patch=new_patch,
        initial_weight=config.initial_lambda,
        train_lambdas=config.train_lambdas,
        train_patches=config.train_patches,
    )
