"""The KnowTrans facade — the paper's full framework in one call.

``KnowTrans(bundle).fit(splits)`` runs Selective Knowledge
Concentration (attach fused upstream patches, few-shot fine-tune) and
Automatic Knowledge Bridging (search dataset-informed knowledge with a
closed-source LLM) and returns an :class:`AdaptedModel` ready for
inference on the novel dataset.  Ablation switches (``use_skc`` /
``use_akb`` / ``strategy``) reproduce the paper's Table V and VI rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..data.schema import Dataset, Example
from ..data.splits import DatasetSplits
from ..knowledge.rules import Knowledge
from ..knowledge.seed import seed_knowledge
from ..llm.mockgpt import MockGPT
from ..runtime import WorkerPool
from ..tasks.base import Task, get_task
from ..tinylm.model import ScoringLM
from .akb.evaluation import (
    predict_detailed,
    predict_detailed_pool,
    task_metric,
)
from .akb.optimizer import AKBResult, search_knowledge
from .config import KnowTransConfig
from .skc.finetune import few_shot_finetune
from .skc.fusion import attach_fusion

__all__ = ["AdaptedModel", "KnowTrans", "CrossFitScorer"]


@dataclass
class AdaptedModel:
    """A DP-LLM adapted to one downstream dataset."""

    model: ScoringLM
    task: Task
    knowledge: Knowledge
    dataset: Optional[Dataset] = None
    akb_result: Optional[AKBResult] = None
    fusion_weights: Dict[str, float] = field(default_factory=dict)

    def predict(self, example: Example) -> str:
        return self.task.predict(self.model, example, self.knowledge, self.dataset)

    def predict_batch(self, examples: Sequence[Example]) -> Sequence[str]:
        """Batched greedy predictions (one inference-engine call)."""
        return self.task.predict_batch(
            self.model, examples, self.knowledge, self.dataset
        )

    def evaluate(self, examples: Sequence[Example]) -> float:
        return self.task.evaluate(
            self.model, examples, self.knowledge, self.dataset
        )


def _shadow_task(args):
    """Build one cross-fit shadow model (worker-pool task).

    A pure function of its picklable arguments: the clone, the fusion
    attachment, and the fine-tune all derive their randomness from
    seeds carried in the config/name, so building a shadow in a worker
    process yields the same weights as building it inline.
    """
    upstream_model, patches, skc_config, strategy, name, train_half, base_knowledge = args
    shadow, __fusion = attach_fusion(
        upstream_model, patches, skc_config, strategy=strategy, name=name
    )
    few_shot_finetune(shadow, train_half, skc_config, base_knowledge)
    return shadow


class CrossFitScorer:
    """Eq. 8 scorer that stays informative despite few-shot memorisation.

    A LoRA stack fine-tuned on all 20 examples interpolates them, so
    scoring candidates on the same 20 examples cannot rank anything.
    Two *shadow* models are therefore fine-tuned on complementary halves
    of the few-shot data; each candidate is scored on the half its
    shadow never saw, and the two held-out scores are averaged (errors
    are pooled).  This plays the role of the paper's train/validation
    split at substrate scale.

    Calling the scorer evaluates one candidate (legacy per-candidate
    path); :meth:`score_pool` evaluates a whole Alg. 2 round with one
    engine mega-batch per shadow fold — the folds use different weights
    so they cannot share a call, but within a fold every candidate ×
    held-out-example pair rides one batch.  Both paths accumulate
    golds/preds/margins fold0-then-fold1 per candidate, so the metric
    and margin-bonus float summations are bit-identical.
    """

    #: Cap on each fold's held-out slice: scoring cost multiplies by
    #: pool size and refinement rounds.  The paper's 20-shot setting
    #: (10-example folds) is unaffected — this only bounds the Fig. 4
    #: scalability sweeps.
    SCORING_CAP = 30

    def __init__(self, shadows, halves, task: Task):
        self.shadows = list(shadows)
        self.halves = tuple(halves)
        self.task = task

    def _held_out(self, fold: int):
        held_out = self.halves[1 - fold]
        return held_out, held_out.examples[: self.SCORING_CAP]

    def _finalize(self, golds, preds, margins, errors, pooled_examples):
        metric = task_metric(self.task, golds, preds, pooled_examples)
        # Margin bonus (< one metric quantum) breaks hard-score ties
        # toward knowledge the model is genuinely more confident in.
        margin_bonus = 4.0 * (sum(margins) / max(len(margins), 1))
        return metric + margin_bonus, errors

    def __call__(self, candidate: Knowledge):
        golds, preds, margins, errors = [], [], [], []
        pooled_examples = []
        for fold, shadow in enumerate(self.shadows):
            held_out, examples = self._held_out(fold)
            g, p, m, e = predict_detailed(
                shadow, self.task, candidate, examples, held_out
            )
            golds.extend(g)
            preds.extend(p)
            margins.extend(m)
            errors.extend(e)
            pooled_examples.extend(examples)
        return self._finalize(golds, preds, margins, errors, pooled_examples)

    def score_pool(self, candidates: Sequence[Knowledge]):
        """Score a whole candidate pool: one mega-batch per shadow fold."""
        candidates = list(candidates)
        per_fold = [
            predict_detailed_pool(
                shadow, self.task, candidates, self._held_out(fold)[1],
                self._held_out(fold)[0],
            )
            for fold, shadow in enumerate(self.shadows)
        ]
        results = []
        for ci in range(len(candidates)):
            golds, preds, margins, errors = [], [], [], []
            pooled_examples = []
            for fold in range(len(self.shadows)):
                g, p, m, e = per_fold[fold][ci]
                golds.extend(g)
                preds.extend(p)
                margins.extend(m)
                errors.extend(e)
                pooled_examples.extend(self._held_out(fold)[1])
            results.append(
                self._finalize(golds, preds, margins, errors, pooled_examples)
            )
        return results


class KnowTrans:
    """Knowledge augmentation for boosting DP-LLM transferability.

    Parameters
    ----------
    bundle:
        The upstream stage output
        (:class:`~repro.baselines.jellyfish.UpstreamBundle`).
    config:
        SKC + AKB hyperparameters.
    strategy:
        Patch weighting strategy: ``adaptive`` (full SKC), ``uniform``
        or ``single`` (Table VI rows).
    use_skc / use_akb:
        Ablation switches (Table V rows).  ``use_skc=False`` degrades
        the strategy to ``single`` — plain few-shot LoRA fine-tuning.
    mockgpt:
        The closed-source LLM analogue driving AKB.
    jobs / pool:
        Worker-pool fan-out for the two cross-fit shadow fine-tunes.
        ``jobs`` builds a clamped :class:`~repro.runtime.WorkerPool`
        (``None`` defers to ``REPRO_JOBS``); passing ``pool`` directly
        overrides it (tests inject unclamped pools to force real worker
        processes).  Results are bit-identical at any job count.
    pool_scoring:
        Score each AKB round as one candidate-major mega-batch per
        shadow fold instead of one engine call per candidate.  Same
        floats either way; ``False`` reproduces the legacy per-candidate
        timing for benchmarks.
    """

    def __init__(
        self,
        bundle,
        config: Optional[KnowTransConfig] = None,
        strategy: str = "adaptive",
        use_skc: bool = True,
        use_akb: bool = True,
        mockgpt: Optional[MockGPT] = None,
        jobs: Optional[int] = None,
        pool: Optional[WorkerPool] = None,
        pool_scoring: bool = True,
    ):
        self.bundle = bundle
        self.config = config or KnowTransConfig()
        self.strategy = strategy if use_skc else "single"
        self.use_akb = use_akb
        self.mockgpt = mockgpt or MockGPT(
            temperature=self.config.akb.temperature, seed=self.config.seed
        )
        self.pool = pool if pool is not None else WorkerPool(jobs)
        self.pool_scoring = pool_scoring

    def fit(self, splits: DatasetSplits) -> AdaptedModel:
        """Adapt the upstream DP-LLM to one novel dataset (Alg. 1 + 2)."""
        few_shot = splits.few_shot
        task = get_task(few_shot.task)
        base_knowledge = seed_knowledge(few_shot.task)

        # SKC stages 2-3: fuse patches (or a lone fresh patch) and
        # fine-tune the adapter on the few-shot data.
        patches = self.bundle.patches if self.strategy != "single" else []
        model, fusion = attach_fusion(
            self.bundle.upstream_model,
            patches,
            self.config.skc,
            strategy=self.strategy,
            name=f"downstream-{few_shot.name}",
        )
        few_shot_finetune(model, few_shot, self.config.skc, base_knowledge)

        # AKB: inference-time knowledge search with the fine-tuned model.
        knowledge = base_knowledge
        akb_result = None
        if self.use_akb:
            scorer = self.cross_fit_scorer(splits, patches, base_knowledge)
            akb_result = search_knowledge(
                model,
                few_shot,
                splits.validation.examples,
                mockgpt=self.mockgpt,
                config=self.config.akb,
                initial_knowledge=base_knowledge,
                scorer=scorer,
                pool_scoring=self.pool_scoring,
            )
            knowledge = akb_result.knowledge

        return AdaptedModel(
            model=model,
            task=task,
            knowledge=knowledge,
            dataset=few_shot,
            akb_result=akb_result,
            fusion_weights=fusion.weight_report(),
        )

    def cross_fit_scorer(
        self, splits: DatasetSplits, patches=None, base_knowledge=None
    ) -> CrossFitScorer:
        """Build the :class:`CrossFitScorer` for one dataset's splits.

        The two shadow fine-tunes are independent, so they fan out over
        the instance's worker pool (serial at ``jobs=1``).
        """
        if patches is None:
            patches = self.bundle.patches if self.strategy != "single" else []
        if base_knowledge is None:
            base_knowledge = seed_knowledge(splits.few_shot.task)
        few_shot = splits.few_shot
        task = get_task(few_shot.task)
        # Contiguous halves: the few-shot prefix interleaves classes, so
        # each half keeps the class balance (stride-2 sampling would put
        # one class per fold and break the scorer entirely).
        midpoint = len(few_shot) // 2
        halves = (
            few_shot.subset(range(0, midpoint), ":fold0"),
            few_shot.subset(range(midpoint, len(few_shot)), ":fold1"),
        )
        shadows = self.pool.map(
            _shadow_task,
            [
                (
                    self.bundle.upstream_model,
                    patches,
                    self.config.skc,
                    self.strategy,
                    f"shadow{fold}-{few_shot.name}",
                    train_half,
                    base_knowledge,
                )
                for fold, train_half in enumerate(halves)
            ],
        )
        return CrossFitScorer(shadows, halves, task)
