"""The KnowTrans facade — the paper's full framework in one call.

``KnowTrans(bundle).fit(splits)`` runs Selective Knowledge
Concentration (attach fused upstream patches, few-shot fine-tune) and
Automatic Knowledge Bridging (search dataset-informed knowledge with a
closed-source LLM) and returns an :class:`AdaptedModel` ready for
inference on the novel dataset.  Ablation switches (``use_skc`` /
``use_akb`` / ``strategy``) reproduce the paper's Table V and VI rows.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from .. import obs
from .. import store as artifact_store
from ..data.schema import Dataset, Example
from ..data.splits import DatasetSplits
from ..knowledge.rules import Knowledge
from ..knowledge.seed import seed_knowledge
from ..llm.mockgpt import MockGPT
from ..runtime import WorkerPool, resolve_shared, sharing
from ..tasks.base import Task, get_task
from ..tinylm.model import ScoringLM
from .akb.evaluation import (
    pack_detail_record,
    predict_detailed,
    predict_detailed_pool,
    task_metric,
    unpack_detail_record,
)
from .akb.optimizer import AKBResult, search_knowledge
from .config import KnowTransConfig
from .skc.finetune import few_shot_finetune
from .skc.fusion import attach_fusion

__all__ = ["AdaptedModel", "KnowTrans", "CrossFitScorer"]


@dataclass
class AdaptedModel:
    """A DP-LLM adapted to one downstream dataset."""

    model: ScoringLM
    task: Task
    knowledge: Knowledge
    dataset: Optional[Dataset] = None
    akb_result: Optional[AKBResult] = None
    fusion_weights: Dict[str, float] = field(default_factory=dict)

    def predict(self, example: Example) -> str:
        return self.task.predict(self.model, example, self.knowledge, self.dataset)

    def predict_batch(self, examples: Sequence[Example]) -> Sequence[str]:
        """Batched greedy predictions (one inference-engine call)."""
        _warm_eval_featurizations(
            self.model, self.task, examples, self.knowledge, self.dataset
        )
        return self.task.predict_batch(
            self.model, examples, self.knowledge, self.dataset
        )

    def evaluate(self, examples: Sequence[Example]) -> float:
        """Deprecated shim — score through the harness entry point.

        .. deprecated:: 1.1
            Use :func:`repro.eval.harness.evaluate_method` — the single
            scoring call path shared by the harness, the experiments and
            the CLI.
        """
        warnings.warn(
            "AdaptedModel.evaluate is deprecated; use "
            "repro.eval.harness.evaluate_method(model, examples, task)",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..eval.harness import evaluate_method

        return evaluate_method(self, examples, self.task.name)


def _warm_eval_featurizations(model, task, examples, knowledge, dataset):
    """Seed the featurization caches from the store before an eval pass.

    Encoded-dataset featurizations are pure functions of (featurizer
    config, text), so the sparse rows of a full evaluation surface
    persist as one store entry; a warm run skips re-tokenising the test
    set entirely.  No-op without an active store.
    """
    if artifact_store.active() is None:
        return
    texts = [task.prompt(example, knowledge) for example in examples]
    for example in examples:
        texts.extend(task.candidates(example, knowledge, dataset))
    artifact_store.warm_featurizations(model.featurizer, texts)


def _fusion_state(fusion) -> dict:
    """The full trainable state of a fusion adapter, copy-safe."""
    return {
        "lambdas": np.copy(fusion.lambdas),
        "new_patch": fusion.new_patch.state_dict(),
        "patches": [patch.state_dict() for patch in fusion.patches],
    }


def _patch_state_ok(patch, state) -> bool:
    """Whether ``state`` is a complete, shape-exact state dict for ``patch``."""
    if not isinstance(state, dict):
        return False
    reference = patch.state_dict()
    if set(state.keys()) != set(reference.keys()):
        return False
    for key, value in state.items():
        arr = np.asarray(value)
        if arr.shape != reference[key].shape or arr.dtype.kind not in "fiu":
            return False
    return True


def _load_fusion_state(fusion, state) -> bool:
    """Install a stored fusion state; reject structural mismatches.

    Validation runs to completion *before* any mutation so a bad entry
    can never leave the fusion half-loaded — the caller falls back to
    the fine-tune path from the pristine init.
    """
    try:
        lambdas = np.asarray(state["lambdas"], dtype=float)
        new_state = state["new_patch"]
        patch_states = state["patches"]
    except (KeyError, TypeError, IndexError, ValueError):
        return False
    if lambdas.shape != fusion.lambdas.shape:
        return False
    if not isinstance(patch_states, list) or len(patch_states) != len(
        fusion.patches
    ):
        return False
    if not _patch_state_ok(fusion.new_patch, new_state):
        return False
    if not all(
        _patch_state_ok(patch, patch_state)
        for patch, patch_state in zip(fusion.patches, patch_states)
    ):
        return False
    fusion.new_patch.load_state_dict(new_state)
    for patch, patch_state in zip(fusion.patches, patch_states):
        patch.load_state_dict(patch_state)
    fusion.lambdas[:] = lambdas
    return True


def _fused_finetune(
    upstream_model, patches, skc_config, strategy, name, train_dataset,
    knowledge,
):
    """SKC stages 2-3 with a warm start (shared by fit and the shadows).

    Attaches the fusion stack, then either restores the fine-tuned
    adapter state from the artifact store (keyed by the full provenance:
    upstream weights, patch contents, config, strategy, adapter name,
    training data, prompt knowledge) or runs the few-shot fine-tune and
    persists the result.  Loading mutates only the freshly-built fusion —
    ``build_adapter`` clones the upstream patches, so the caller's patch
    list is never touched.
    """
    store = artifact_store.active()
    store_key = None
    if store is not None:
        store_key = artifact_store.artifact_key(
            "finetune",
            {
                "upstream": artifact_store.model_fingerprint(upstream_model),
                "patches": [
                    artifact_store.patch_fingerprint(patch)
                    for patch in patches
                ],
                "config": skc_config,
                "strategy": strategy,
                "name": name,
                "train": train_dataset,
                "knowledge": knowledge,
            },
        )
    model, fusion = attach_fusion(
        upstream_model, patches, skc_config, strategy=strategy, name=name
    )
    if store_key is not None:
        cached = store.get("finetune", store_key)
        if cached is not None:
            if _load_fusion_state(fusion, cached):
                # The fusion was mutated in place after attach; drop any
                # effective weights memoized against the pristine init.
                model.bump_adapter_version()
                _report_lambdas(fusion)
                return model, fusion
            # structurally unexpected entry — re-fine-tune and rewrite
            obs.counter("store.repair", kind="finetune")
    few_shot_finetune(model, train_dataset, skc_config, knowledge)
    if store_key is not None:
        store.put("finetune", store_key, _fusion_state(fusion))
    _report_lambdas(fusion)
    return model, fusion


def _report_lambdas(fusion) -> None:
    """Gauge the fused λ trajectory (one sample per patch per fit)."""
    if not obs.enabled():
        return
    for patch_name, weight in fusion.weight_report().items():
        obs.gauge("skc.lambda", float(weight), patch=patch_name)


def _shadow_task(args):
    """Fine-tune one cross-fit shadow's adapter (worker-pool task).

    A pure function of its picklable arguments: the clone, the fusion
    attachment, and the fine-tune all derive their randomness from
    seeds carried in the config/name, so building a shadow in a worker
    process yields the same weights as building it inline.  The frozen
    upstream model and patch list arrive as fork-inherited
    :class:`~repro.runtime.SharedRef` tokens — only the half-split
    few-shot data and config cross the IPC boundary — and the *result*
    is just the fused adapter's trained state (the λ vector and LoRA
    factors, a few small arrays), never the shadow model itself: its
    backbone is a byte-exact copy of the upstream weights the parent
    already holds, so shipping it home would pay megabytes of result
    transport per fold for nothing.  The parent reattaches the state
    via the same :func:`_load_fusion_state` path a warm store hit uses.
    """
    model_ref, patches_ref, skc_config, strategy, name, train_half, base_knowledge = args
    __shadow, fusion = _fused_finetune(
        resolve_shared(model_ref),
        resolve_shared(patches_ref),
        skc_config,
        strategy,
        name,
        train_half,
        base_knowledge,
    )
    return _fusion_state(fusion)


class CrossFitScorer:
    """Eq. 8 scorer that stays informative despite few-shot memorisation.

    A LoRA stack fine-tuned on all 20 examples interpolates them, so
    scoring candidates on the same 20 examples cannot rank anything.
    Two *shadow* models are therefore fine-tuned on complementary halves
    of the few-shot data; each candidate is scored on the half its
    shadow never saw, and the two held-out scores are averaged (errors
    are pooled).  This plays the role of the paper's train/validation
    split at substrate scale.

    Calling the scorer evaluates one candidate (legacy per-candidate
    path); :meth:`score_pool` evaluates a whole Alg. 2 round with one
    engine mega-batch per shadow fold — the folds use different weights
    so they cannot share a call, but within a fold every candidate ×
    held-out-example pair rides one batch.  Both paths accumulate
    golds/preds/margins fold0-then-fold1 per candidate, so the metric
    and margin-bonus float summations are bit-identical.
    """

    #: Cap on each fold's held-out slice: scoring cost multiplies by
    #: pool size and refinement rounds.  The paper's 20-shot setting
    #: (10-example folds) is unaffected — this only bounds the Fig. 4
    #: scalability sweeps.
    SCORING_CAP = 30

    def __init__(self, shadows, halves, task: Task):
        self.shadows = list(shadows)
        self.halves = tuple(halves)
        self.task = task
        # Per-fold provenance digests, computed lazily once per scorer:
        # hashing the shadow's effective weights is ~ms work that every
        # store key of the fold shares.
        self._fold_provenance: Dict[int, tuple] = {}

    def _held_out(self, fold: int):
        held_out = self.halves[1 - fold]
        return held_out, held_out.examples[: self.SCORING_CAP]

    def _record_key(self, fold: int, candidate: Knowledge) -> str:
        """Store address of one (candidate, fold) evaluation record."""
        provenance = self._fold_provenance.get(fold)
        if provenance is None:
            provenance = (
                artifact_store.model_fingerprint(
                    self.shadows[fold], effective=True
                ),
                artifact_store.fingerprint(self._held_out(fold)[0]),
            )
            self._fold_provenance[fold] = provenance
        model_fp, held_out_fp = provenance
        return artifact_store.artifact_key(
            "akb_eval",
            {
                "model": model_fp,
                "task": self.task.name,
                "held_out": held_out_fp,
                "cap": self.SCORING_CAP,
                "candidate": candidate,
            },
        )

    def _detailed(self, fold: int, candidate: Knowledge):
        """One fold's evaluation record, served from the store when warm."""
        store = artifact_store.active()
        key = None
        if store is not None:
            key = self._record_key(fold, candidate)
            cached = unpack_detail_record(store.get("akb_eval", key))
            if cached is not None:
                return cached
        held_out, examples = self._held_out(fold)
        detail = predict_detailed(
            self.shadows[fold], self.task, candidate, examples, held_out
        )
        if key is not None:
            store.put("akb_eval", key, pack_detail_record(detail))
        return detail

    def _finalize(self, golds, preds, margins, errors, pooled_examples):
        metric = task_metric(self.task, golds, preds, pooled_examples)
        # Margin bonus (< one metric quantum) breaks hard-score ties
        # toward knowledge the model is genuinely more confident in.
        margin_bonus = 4.0 * (sum(margins) / max(len(margins), 1))
        return metric + margin_bonus, errors

    def __call__(self, candidate: Knowledge):
        golds, preds, margins, errors = [], [], [], []
        pooled_examples = []
        for fold in range(len(self.shadows)):
            g, p, m, e = self._detailed(fold, candidate)
            golds.extend(g)
            preds.extend(p)
            margins.extend(m)
            errors.extend(e)
            pooled_examples.extend(self._held_out(fold)[1])
        return self._finalize(golds, preds, margins, errors, pooled_examples)

    def score_pool(self, candidates: Sequence[Knowledge]):
        """Score a whole candidate pool: one mega-batch per shadow fold.

        With an active store, candidates whose (candidate, fold) record
        already exists — from an earlier run *or* an earlier AKB round —
        load from disk, and only the genuinely fresh candidates enter
        the mega-batch.  The engine is batch-composition invariant, so
        slicing the pool this way returns the same floats as scoring
        everything together.
        """
        candidates = list(candidates)
        store = artifact_store.active()
        per_fold = []
        for fold, shadow in enumerate(self.shadows):
            held_out, examples = self._held_out(fold)
            entries = [None] * len(candidates)
            missing = list(range(len(candidates)))
            if store is not None:
                missing = []
                for ci, candidate in enumerate(candidates):
                    cached = unpack_detail_record(
                        store.get("akb_eval", self._record_key(fold, candidate))
                    )
                    if cached is not None:
                        entries[ci] = cached
                    else:
                        missing.append(ci)
            if missing:
                fresh = predict_detailed_pool(
                    shadow,
                    self.task,
                    [candidates[ci] for ci in missing],
                    examples,
                    held_out,
                )
                for ci, detail in zip(missing, fresh):
                    entries[ci] = detail
                    if store is not None:
                        store.put(
                            "akb_eval",
                            self._record_key(fold, candidates[ci]),
                            pack_detail_record(detail),
                        )
            per_fold.append(entries)
        results = []
        for ci in range(len(candidates)):
            golds, preds, margins, errors = [], [], [], []
            pooled_examples = []
            for fold in range(len(self.shadows)):
                g, p, m, e = per_fold[fold][ci]
                golds.extend(g)
                preds.extend(p)
                margins.extend(m)
                errors.extend(e)
                pooled_examples.extend(self._held_out(fold)[1])
            results.append(
                self._finalize(golds, preds, margins, errors, pooled_examples)
            )
        return results


class KnowTrans:
    """Knowledge augmentation for boosting DP-LLM transferability.

    Parameters
    ----------
    bundle:
        The upstream stage output
        (:class:`~repro.baselines.jellyfish.UpstreamBundle`).
    config:
        SKC + AKB hyperparameters.
    strategy:
        Patch weighting strategy: ``adaptive`` (full SKC), ``uniform``
        or ``single`` (Table VI rows).
    use_skc / use_akb:
        Ablation switches (Table V rows).  ``use_skc=False`` degrades
        the strategy to ``single`` — plain few-shot LoRA fine-tuning.
    mockgpt:
        The closed-source LLM analogue driving AKB.
    jobs / pool:
        Worker-pool fan-out for the two cross-fit shadow fine-tunes.
        ``jobs`` builds a clamped :class:`~repro.runtime.WorkerPool`
        (``None`` defers to ``REPRO_JOBS``); passing ``pool`` directly
        overrides it (tests inject unclamped pools to force real worker
        processes).  Results are bit-identical at any job count.
    pool_scoring:
        Score each AKB round as one candidate-major mega-batch per
        shadow fold instead of one engine call per candidate.  Same
        floats either way; ``False`` reproduces the legacy per-candidate
        timing for benchmarks.
    use_kb:
        Attach the persistent cross-dataset knowledge base
        (:mod:`repro.knowledge.kb`) to the AKB search: seed the
        candidate pool with nearest-profile knowledge from previous
        searches and promote this search's winners back.  ``None``
        (default) defers to the process-wide ``--kb`` / ``REPRO_KB``
        opt-in plus an active artifact store; ``False`` forces it off.
        ``kb`` pins an explicit :class:`~repro.knowledge.kb.
        KnowledgeBase` instance instead (benchmarks and tests).
    """

    def __init__(
        self,
        bundle,
        config: Optional[KnowTransConfig] = None,
        strategy: str = "adaptive",
        use_skc: bool = True,
        use_akb: bool = True,
        mockgpt: Optional[MockGPT] = None,
        jobs: Optional[int] = None,
        pool: Optional[WorkerPool] = None,
        pool_scoring: bool = True,
        use_kb: Optional[bool] = None,
        kb=None,
    ):
        self.bundle = bundle
        self.config = config or KnowTransConfig()
        self.strategy = strategy if use_skc else "single"
        self.use_akb = use_akb
        self.mockgpt = mockgpt or MockGPT(
            temperature=self.config.akb.temperature, seed=self.config.seed
        )
        self.pool = pool if pool is not None else WorkerPool(jobs)
        self.pool_scoring = pool_scoring
        self.use_kb = use_kb
        self.kb = kb  # explicit KnowledgeBase instance (benchmarks/tests)

    def fit(self, splits: DatasetSplits) -> AdaptedModel:
        """Adapt the upstream DP-LLM to one novel dataset (Alg. 1 + 2)."""
        few_shot = splits.few_shot
        with obs.span(
            "knowtrans.fit",
            dataset=few_shot.name,
            task=few_shot.task,
            strategy=self.strategy,
            use_akb=self.use_akb,
        ):
            return self._fit(splits)

    def _fit(self, splits: DatasetSplits) -> AdaptedModel:
        few_shot = splits.few_shot
        task = get_task(few_shot.task)
        base_knowledge = seed_knowledge(few_shot.task)

        # SKC stages 2-3: fuse patches (or a lone fresh patch) and
        # fine-tune the adapter on the few-shot data (warm-started from
        # the artifact store when a previous run already did this).
        patches = self.bundle.patches if self.strategy != "single" else []
        model, fusion = _fused_finetune(
            self.bundle.upstream_model,
            patches,
            self.config.skc,
            self.strategy,
            f"downstream-{few_shot.name}",
            few_shot,
            base_knowledge,
        )

        # AKB: inference-time knowledge search with the fine-tuned model.
        knowledge = base_knowledge
        akb_result = None
        if self.use_akb:
            scorer = self.cross_fit_scorer(splits, patches, base_knowledge)
            akb_result = search_knowledge(
                model,
                few_shot,
                splits.validation.examples,
                mockgpt=self.mockgpt,
                config=self.config.akb,
                initial_knowledge=base_knowledge,
                scorer=scorer,
                pool_scoring=self.pool_scoring,
                use_kb=self.use_kb,
                kb=self.kb,
            )
            knowledge = akb_result.knowledge

        return AdaptedModel(
            model=model,
            task=task,
            knowledge=knowledge,
            dataset=few_shot,
            akb_result=akb_result,
            fusion_weights=fusion.weight_report(),
        )

    def cross_fit_scorer(
        self, splits: DatasetSplits, patches=None, base_knowledge=None
    ) -> CrossFitScorer:
        """Build the :class:`CrossFitScorer` for one dataset's splits.

        The two shadow fine-tunes are independent, so they fan out over
        the instance's worker pool (serial at ``jobs=1``).
        """
        if patches is None:
            patches = self.bundle.patches if self.strategy != "single" else []
        if base_knowledge is None:
            base_knowledge = seed_knowledge(splits.few_shot.task)
        few_shot = splits.few_shot
        task = get_task(few_shot.task)
        # Contiguous halves: the few-shot prefix interleaves classes, so
        # each half keeps the class balance (stride-2 sampling would put
        # one class per fold and break the scorer entirely).
        midpoint = len(few_shot) // 2
        halves = (
            few_shot.subset(range(0, midpoint), ":fold0"),
            few_shot.subset(range(midpoint, len(few_shot)), ":fold1"),
        )
        # Scope the share registrations to the fan-out: a long-lived
        # process adapting many datasets must not pin every upstream
        # model and patch list it ever shadowed.
        with sharing(self.bundle.upstream_model, patches) as (
            model_ref,
            patches_ref,
        ):
            states = self.pool.map(
                _shadow_task,
                [
                    (
                        model_ref,
                        patches_ref,
                        self.config.skc,
                        self.strategy,
                        f"shadow{fold}-{few_shot.name}",
                        train_half,
                        base_knowledge,
                    )
                    for fold, train_half in enumerate(halves)
                ],
            )
        # Rebuild each shadow from its compact adapter state — the exact
        # code path a warm "finetune" store hit takes, so the
        # reconstruction is bit-identical to the worker's model.
        shadows = []
        for fold, state in enumerate(states):
            shadow, fusion = attach_fusion(
                self.bundle.upstream_model,
                patches,
                self.config.skc,
                strategy=self.strategy,
                name=f"shadow{fold}-{few_shot.name}",
            )
            if not _load_fusion_state(fusion, state):
                raise RuntimeError(
                    f"shadow fold {fold} returned an incompatible fusion "
                    "state — adapter shapes drifted between parent and "
                    "worker"
                )
            shadow.bump_adapter_version()
            shadows.append(shadow)
        return CrossFitScorer(shadows, halves, task)
