"""The AKB optimisation loop (paper Algorithm 2).

Generation seeds a candidate pool; each iteration scores every pool
member on the validation data with the fine-tuned DP-LLM, collects the
best candidate's error set, and grows the pool with feedback-driven
refinements.  The loop stops at the configured iteration budget, when
the best candidate makes no validation errors, or when the best score
stops improving (patience).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ... import obs
from ... import store as artifact_store
from ...data.schema import Dataset, Example
from ...knowledge import kb as kb_module
from ...knowledge.rules import Knowledge
from ...knowledge.seed import seed_knowledge
from ...llm.mockgpt import MockGPT
from ...perf import PERF
from ...tasks.base import get_task
from ...tinylm.model import ScoringLM
from ..config import AKBConfig
from .evaluation import (
    pack_score_record,
    score_knowledge,
    score_knowledge_pool,
    unpack_score_record,
)
from .feedback import make_feedback
from .generation import seeded_pool
from .refinement import refine_knowledge

__all__ = ["AKBRound", "AKBResult", "search_knowledge"]


@dataclass(frozen=True)
class AKBRound:
    """Bookkeeping for one optimisation iteration."""

    iteration: int
    best_score: float
    pool_size: int
    error_count: int


@dataclass
class AKBResult:
    """The searched knowledge plus its optimisation history."""

    knowledge: Knowledge
    best_score: float
    rounds: List[AKBRound] = field(default_factory=list)
    trajectory: List[Knowledge] = field(default_factory=list)
    retrieved: int = 0
    promoted: int = 0

    @property
    def iterations_run(self) -> int:
        return len(self.rounds)

    @property
    def rounds_to_best(self) -> int:
        """1-based index of the first round reaching the final best score.

        The metric the KB perf gate tracks: a retrieval-seeded search
        should reach its best candidate in round one instead of
        grinding refinement rounds toward it.
        """
        for round_info in self.rounds:
            if round_info.best_score >= self.best_score:
                return round_info.iteration + 1
        return len(self.rounds)


def search_knowledge(
    model: ScoringLM,
    dataset: Dataset,
    validation: Sequence[Example],
    mockgpt: Optional[MockGPT] = None,
    config: Optional[AKBConfig] = None,
    initial_knowledge: Optional[Knowledge] = None,
    scorer=None,
    pool_scoring: bool = True,
    use_kb: Optional[bool] = None,
    kb: Optional["kb_module.KnowledgeBase"] = None,
) -> AKBResult:
    """Run Algorithm 2 and return the optimised dataset knowledge.

    ``model`` is the SKC fine-tuned DP-LLM; ``validation`` is the
    few-shot data (the paper uses D_valid = D'_i).  ``scorer`` overrides
    the Eq. 8 evaluation — :class:`~repro.core.knowtrans.KnowTrans`
    passes a cross-fitted scorer so a model that interpolates its 20
    training examples still yields an informative ranking.

    ``pool_scoring`` enables single-pass rounds: all unscored candidates
    of a round are flattened into one candidate-major mega-batch through
    the batched engine (via :func:`score_knowledge_pool`, or the
    scorer's own ``score_pool`` method when it has one) instead of one
    engine call per candidate.  Scores are bit-identical either way —
    the flag exists so benchmarks can time the legacy per-candidate
    path.  Plain-function scorers without ``score_pool`` always take
    the per-candidate path.

    ``use_kb`` / ``kb`` attach the persistent cross-dataset knowledge
    base (:mod:`repro.knowledge.kb`): the candidate pool is seeded with
    the top-k nearest-profile entries of previous searches (same task,
    *other* datasets — entries promoted from this exact dataset are
    excluded so a re-run stays bit-identical to its first run), and
    after the search the best-scoring candidates are promoted back.
    The default (``use_kb=None``) resolves through
    :func:`repro.knowledge.kb.active_kb` — off unless ``--kb`` /
    ``REPRO_KB`` opted the process in and an artifact store is active.

    When the best retrieval is *trusted* — profile similarity at least
    ``config.kb_trust_similarity`` — and a retrieved candidate scores
    at least as well as everything generated in round one, the search
    stops there: the bank already spent its refinement budget on a
    near-identical profile, so re-running the feedback loop would
    re-derive what retrieval just supplied.  A generated candidate
    strictly beating every retrieved one disables the shortcut and the
    search proceeds normally.
    """
    config = config or AKBConfig()
    mockgpt = mockgpt or MockGPT(temperature=config.temperature, seed=config.seed)
    task = get_task(dataset.task)
    seed = initial_knowledge if initial_knowledge is not None else seed_knowledge(dataset.task)

    score_pool_fn = None
    if scorer is None:
        # Eq. 8 evaluation is deterministic given (weights, candidate,
        # validation data), so candidate scores memoise across runs and
        # across AKB rounds in the artifact store under that provenance.
        store = artifact_store.active()
        provenance = None
        if store is not None:
            provenance = {
                "model": artifact_store.model_fingerprint(
                    model, effective=True
                ),
                "task": task.name,
                "dataset": artifact_store.fingerprint(dataset),
                "validation": artifact_store.fingerprint(list(validation)),
            }

        def _score_key(candidate: Knowledge) -> str:
            return artifact_store.artifact_key(
                "akb_score", {**provenance, "candidate": candidate}
            )

        def scorer(candidate: Knowledge):
            if provenance is not None:
                cached = unpack_score_record(
                    store.get("akb_score", _score_key(candidate))
                )
                if cached is not None:
                    return cached
            value, errors = score_knowledge(
                model, task, candidate, validation, dataset
            )
            if provenance is not None:
                store.put(
                    "akb_score", _score_key(candidate),
                    pack_score_record(value, errors),
                )
            return value, errors

        def score_pool_fn(candidates: Sequence[Knowledge]):
            candidates = list(candidates)
            results = [None] * len(candidates)
            missing = list(range(len(candidates)))
            if provenance is not None:
                missing = []
                for ci, candidate in enumerate(candidates):
                    cached = unpack_score_record(
                        store.get("akb_score", _score_key(candidate))
                    )
                    if cached is not None:
                        results[ci] = cached
                    else:
                        missing.append(ci)
            if missing:
                fresh = score_knowledge_pool(
                    model, task, [candidates[ci] for ci in missing],
                    validation, dataset,
                )
                for ci, entry in zip(missing, fresh):
                    results[ci] = entry
                    if provenance is not None:
                        store.put(
                            "akb_score", _score_key(candidates[ci]),
                            pack_score_record(*entry),
                        )
            return results
    else:
        score_pool_fn = getattr(scorer, "score_pool", None)

    # Persistent-KB retrieval: seed the pool with the nearest-profile
    # knowledge of previous searches (retrieve-then-refine).
    bank = kb_module.resolve_use_kb(use_kb, kb)
    retrieved: list = []
    profile_vector = None
    dataset_fp = None
    if bank is not None:
        profile_vector, dataset_fp = kb_module.profile_vector_for(dataset)
        retrieved = bank.retrieve(
            profile_vector,
            task=dataset.task,
            k=config.kb_top_k,
            min_similarity=config.kb_min_similarity,
            exclude_fingerprint=dataset_fp,
        )
    pool = seeded_pool(
        mockgpt, dataset.task, validation, seed, config, retrieved
    )
    trusted_candidates = (
        {entry.knowledge for __similarity, entry in retrieved}
        if retrieved and retrieved[0][0] >= config.kb_trust_similarity
        else set()
    )
    scores: Dict[Knowledge, float] = {}
    errors_by_candidate: Dict[Knowledge, list] = {}

    def ensure_scored(candidate: Knowledge) -> float:
        if candidate not in scores:
            value, errors = scorer(candidate)
            scores[candidate] = value
            errors_by_candidate[candidate] = errors
        return scores[candidate]

    def ensure_scored_many(candidates: Sequence[Knowledge]) -> None:
        """Score every not-yet-scored candidate, pooled when possible."""
        seen: set = set()
        fresh = [
            c
            for c in candidates
            if c not in scores and not (c in seen or seen.add(c))
        ]
        # "Pruned" = already scored this search (memo hit) or duplicate
        # within the round — candidates that cost nothing to re-rank.
        obs.counter("akb.candidates_pruned", len(candidates) - len(fresh))
        obs.counter("akb.candidates_scored", len(fresh))
        if not fresh:
            return
        if pool_scoring and score_pool_fn is not None and len(fresh) > 1:
            PERF.count("akb.pool_rounds")
            PERF.count("akb.pool_candidates", len(fresh))
            for candidate, (value, errors) in zip(
                fresh, score_pool_fn(fresh)
            ):
                scores[candidate] = value
                errors_by_candidate[candidate] = errors
        else:
            for candidate in fresh:
                ensure_scored(candidate)

    result = AKBResult(knowledge=seed, best_score=float("-inf"))
    stale_rounds = 0
    with obs.span(
        "akb.search", dataset=dataset.name, task=dataset.task
    ):
        for iteration in range(config.iterations):
            with obs.span("akb.round", iteration=iteration):
                ensure_scored_many(pool)
                best = max(pool, key=lambda candidate: scores[candidate])
                best_score = scores[best]
                errors = errors_by_candidate[best]
                result.rounds.append(
                    AKBRound(
                        iteration=iteration,
                        best_score=best_score,
                        pool_size=len(pool),
                        error_count=len(errors),
                    )
                )
                obs.gauge("akb.best_score", best_score)
                obs.gauge("akb.pool_size", len(pool))
                if best_score > result.best_score + config.min_improvement:
                    result.knowledge = best
                    result.best_score = best_score
                    stale_rounds = 0
                else:
                    stale_rounds += 1
                result.trajectory.append(best)
                if not errors:
                    break  # perfect on validation — nothing to refine
                if (
                    iteration == 0
                    and trusted_candidates
                    and any(
                        scores[candidate] >= best_score
                        for candidate in trusted_candidates
                    )
                ):
                    # Trusted retrieval matched or beat everything
                    # generated — the bank already refined this
                    # knowledge on a near-identical profile.
                    obs.counter("akb.kb_early_stop")
                    break
                if stale_rounds > config.patience:
                    break
                for refinement_round in range(
                    config.refinements_per_iteration
                ):
                    feedback = make_feedback(
                        mockgpt,
                        dataset.task,
                        best,
                        errors,
                        config,
                        round_index=iteration * 100 + refinement_round,
                    )
                    refined = refine_knowledge(
                        mockgpt, dataset.task, best, errors, feedback,
                        result.trajectory,
                    )
                    obs.counter("akb.refinements")
                    if refined not in pool:
                        pool.append(refined)
        # Final selection over everything ever scored (Alg. 2 line 15).
        ensure_scored_many(pool)
        final = max(pool, key=lambda candidate: scores[candidate])
    result.knowledge = final
    result.best_score = scores[final]
    result.retrieved = len(retrieved)
    # Promote the search's winners back into the bank so the next
    # near-identical dataset starts from them instead of from cold.
    if bank is not None:
        floor = scores.get(seed, float("-inf"))
        winners = sorted(
            (
                candidate
                for candidate in pool
                if candidate != seed
                and candidate
                and scores[candidate] >= floor
            ),
            key=lambda candidate: -scores[candidate],
        )[: config.kb_promote_top]
        for candidate in winners:
            if bank.promote(
                task=dataset.task,
                dataset=dataset.name,
                fingerprint=dataset_fp,
                vector=profile_vector,
                knowledge=candidate,
                score=scores[candidate],
            ) is not None:
                result.promoted += 1
    return result
