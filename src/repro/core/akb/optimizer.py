"""The AKB optimisation loop (paper Algorithm 2).

Generation seeds a candidate pool; each iteration scores every pool
member on the validation data with the fine-tuned DP-LLM, collects the
best candidate's error set, and grows the pool with feedback-driven
refinements.  The loop stops at the configured iteration budget, when
the best candidate makes no validation errors, or when the best score
stops improving (patience).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...data.schema import Dataset, Example
from ...knowledge.rules import Knowledge
from ...knowledge.seed import seed_knowledge
from ...llm.mockgpt import MockGPT
from ...tasks.base import get_task
from ...tinylm.model import ScoringLM
from ..config import AKBConfig
from .evaluation import score_knowledge
from .feedback import make_feedback
from .generation import generate_pool
from .refinement import refine_knowledge

__all__ = ["AKBRound", "AKBResult", "search_knowledge"]


@dataclass(frozen=True)
class AKBRound:
    """Bookkeeping for one optimisation iteration."""

    iteration: int
    best_score: float
    pool_size: int
    error_count: int


@dataclass
class AKBResult:
    """The searched knowledge plus its optimisation history."""

    knowledge: Knowledge
    best_score: float
    rounds: List[AKBRound] = field(default_factory=list)
    trajectory: List[Knowledge] = field(default_factory=list)

    @property
    def iterations_run(self) -> int:
        return len(self.rounds)


def search_knowledge(
    model: ScoringLM,
    dataset: Dataset,
    validation: Sequence[Example],
    mockgpt: Optional[MockGPT] = None,
    config: Optional[AKBConfig] = None,
    initial_knowledge: Optional[Knowledge] = None,
    scorer=None,
) -> AKBResult:
    """Run Algorithm 2 and return the optimised dataset knowledge.

    ``model`` is the SKC fine-tuned DP-LLM; ``validation`` is the
    few-shot data (the paper uses D_valid = D'_i).  ``scorer`` overrides
    the Eq. 8 evaluation — :class:`~repro.core.knowtrans.KnowTrans`
    passes a cross-fitted scorer so a model that interpolates its 20
    training examples still yields an informative ranking.
    """
    config = config or AKBConfig()
    mockgpt = mockgpt or MockGPT(temperature=config.temperature, seed=config.seed)
    task = get_task(dataset.task)
    seed = initial_knowledge if initial_knowledge is not None else seed_knowledge(dataset.task)

    if scorer is None:
        def scorer(candidate: Knowledge):
            return score_knowledge(model, task, candidate, validation, dataset)

    pool = generate_pool(mockgpt, dataset.task, validation, seed, config)
    scores: Dict[Knowledge, float] = {}
    errors_by_candidate: Dict[Knowledge, list] = {}

    def ensure_scored(candidate: Knowledge) -> float:
        if candidate not in scores:
            value, errors = scorer(candidate)
            scores[candidate] = value
            errors_by_candidate[candidate] = errors
        return scores[candidate]

    result = AKBResult(knowledge=seed, best_score=float("-inf"))
    stale_rounds = 0
    for iteration in range(config.iterations):
        for candidate in pool:
            ensure_scored(candidate)
        best = max(pool, key=lambda candidate: scores[candidate])
        best_score = scores[best]
        errors = errors_by_candidate[best]
        result.rounds.append(
            AKBRound(
                iteration=iteration,
                best_score=best_score,
                pool_size=len(pool),
                error_count=len(errors),
            )
        )
        if best_score > result.best_score + config.min_improvement:
            result.knowledge = best
            result.best_score = best_score
            stale_rounds = 0
        else:
            stale_rounds += 1
        result.trajectory.append(best)
        if not errors:
            break  # perfect on validation — nothing left to refine
        if stale_rounds > config.patience:
            break
        for refinement_round in range(config.refinements_per_iteration):
            feedback = make_feedback(
                mockgpt,
                dataset.task,
                best,
                errors,
                config,
                round_index=iteration * 100 + refinement_round,
            )
            refined = refine_knowledge(
                mockgpt, dataset.task, best, errors, feedback, result.trajectory
            )
            if refined not in pool:
                pool.append(refined)
    # Final selection over everything ever scored (Alg. 2 line 15).
    for candidate in pool:
        ensure_scored(candidate)
    final = max(pool, key=lambda candidate: scores[candidate])
    result.knowledge = final
    result.best_score = scores[final]
    return result
