"""AKB feedback step (paper Eq. 9).

Samples an error subset X_errors ⊂ E and asks the closed-source LLM
for error feedback — why the current knowledge led the model astray and
which aspects of the prompt could improve.
"""

from __future__ import annotations

from typing import List, Sequence

from ...knowledge.rules import Knowledge
from ...llm.mockgpt import ErrorCase, Feedback, MockGPT
from ...tinylm.linalg import rng_for
from ..config import AKBConfig

__all__ = ["sample_errors", "make_feedback"]


def sample_errors(
    errors: Sequence[ErrorCase], count: int, seed: int, round_index: int
) -> List[ErrorCase]:
    """A random error subset; a fresh draw every refinement round."""
    rng = rng_for(seed, "akb-errors", str(round_index))
    if len(errors) <= count:
        return list(errors)
    indices = rng.choice(len(errors), size=count, replace=False)
    return [errors[int(i)] for i in indices]


def make_feedback(
    mockgpt: MockGPT,
    task_name: str,
    knowledge: Knowledge,
    errors: Sequence[ErrorCase],
    config: AKBConfig,
    round_index: int,
) -> Feedback:
    """Generate error feedback for the sampled subset."""
    subset = sample_errors(errors, config.error_samples, config.seed, round_index)
    return mockgpt.feedback(task_name, knowledge, subset)
