"""AKB refinement step (paper Eq. 10-11).

The selected knowledge evolves under the generated feedback, with the
full optimisation trajectory ρ₀..ρ_{t-1} in view so past candidates are
not re-proposed ("implicitly summarizes the common mistakes from past
solutions and avoids repeating them").
"""

from __future__ import annotations

from typing import Sequence

from ...knowledge.rules import Knowledge
from ...llm.mockgpt import ErrorCase, Feedback, MockGPT

__all__ = ["refine_knowledge"]


def refine_knowledge(
    mockgpt: MockGPT,
    task_name: str,
    knowledge: Knowledge,
    errors: Sequence[ErrorCase],
    feedback: Feedback,
    trajectory: Sequence[Knowledge],
) -> Knowledge:
    """One refinement call ρ̂ₜ = M_gpt(P_refine ∥ X_errors ∥ fb ∥ ρ₀..ₜ₋₁)."""
    return mockgpt.refine(
        task_name, knowledge, errors, feedback, trajectory
    )
