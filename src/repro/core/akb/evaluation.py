"""AKB evaluation step (paper Eq. 8).

Each knowledge candidate ρ is inserted into the task prompt and the
fine-tuned DP-LLM is scored on the validation set with the task's own
metric — "the metric is a suitable measure since our goal is to improve
the performance of the target task".  Alongside the score we collect
the error set E (Alg. 2 line 6) for the feedback step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ...data.schema import Dataset, Example
from ...knowledge.rules import Knowledge
from ...llm.mockgpt import ErrorCase
from ...tasks import metrics
from ...tasks.base import Task
from ...tinylm.model import ScoringLM

__all__ = [
    "score_knowledge",
    "predict_detailed_pool",
    "score_knowledge_pool",
    "pack_detail_record",
    "unpack_detail_record",
    "pack_score_record",
    "unpack_score_record",
]


def predict_detailed(
    model: ScoringLM,
    task: Task,
    knowledge: Knowledge,
    examples: Sequence[Example],
    dataset: Optional[Dataset] = None,
) -> Tuple[List[str], List[str], List[float], List[ErrorCase]]:
    """Predictions plus gold-probability margins and error cases.

    The margin (likelihood assigned to the reference answer) lets the
    AKB scorer break ties between candidates whose hard metric is
    identical on a tiny validation set.
    """
    examples = list(examples)
    pools = [task.candidates(ex, knowledge, dataset) for ex in examples]
    prompts = [task.prompt(ex, knowledge) for ex in examples]
    # One engine call scores the whole validation set; Eq. 8 runs this
    # once per knowledge candidate, so batching here is the difference
    # between O(pool·|D_valid|) engine calls and O(pool).
    distributions = model.probabilities_batch(prompts, pools)
    golds: List[str] = []
    preds: List[str] = []
    margins: List[float] = []
    errors: List[ErrorCase] = []
    for example, pool, probabilities in zip(examples, pools, distributions):
        prediction = pool[int(probabilities.argmax())]
        if example.answer in pool:
            margins.append(float(probabilities[pool.index(example.answer)]))
        else:
            margins.append(0.0)
        golds.append(example.answer)
        preds.append(prediction)
        if prediction != example.answer:
            errors.append(ErrorCase(example=example, prediction=prediction))
    return golds, preds, margins, errors


def predict_detailed_pool(
    model: ScoringLM,
    task: Task,
    candidates: Sequence[Knowledge],
    examples: Sequence[Example],
    dataset: Optional[Dataset] = None,
) -> List[Tuple[List[str], List[str], List[float], List[ErrorCase]]]:
    """:func:`predict_detailed` for many candidates in ONE engine call.

    The Alg. 2 pool is flattened candidate-major — every (candidate,
    example) pair contributes one row — and scored with a single
    ``probabilities_batch`` mega-batch, so per-call overheads are paid
    once per round instead of once per candidate.  (The fusion adapter's
    dense weight delta, which historically dominated per-call cost, is
    now memoized on the model per adapter version — see
    ``ScoringLM.effective_weight`` — so repeated fold scoring against a
    fixed adapter materialises it exactly once.)  Candidate pools are
    rebuilt per
    (candidate, example) because ``task.candidates`` may depend on the
    knowledge (e.g. imputation answer pools).

    Per-row post-processing is identical to :func:`predict_detailed`,
    and the engine's scoring is batch-composition invariant, so the
    returned slices match per-candidate calls bit for bit.
    """
    examples = list(examples)
    candidates = list(candidates)
    prompts: List[str] = []
    pools: List[List[str]] = []
    for candidate in candidates:
        prompts.extend(task.prompt(ex, candidate) for ex in examples)
        pools.extend(task.candidates(ex, candidate, dataset) for ex in examples)
    distributions = model.probabilities_batch(prompts, pools)
    n = len(examples)
    results = []
    for ci in range(len(candidates)):
        golds: List[str] = []
        preds: List[str] = []
        margins: List[float] = []
        errors: List[ErrorCase] = []
        for ei, example in enumerate(examples):
            row = ci * n + ei
            pool = pools[row]
            probabilities = distributions[row]
            prediction = pool[int(probabilities.argmax())]
            if example.answer in pool:
                margins.append(float(probabilities[pool.index(example.answer)]))
            else:
                margins.append(0.0)
            golds.append(example.answer)
            preds.append(prediction)
            if prediction != example.answer:
                errors.append(ErrorCase(example=example, prediction=prediction))
        results.append((golds, preds, margins, errors))
    return results


# ----------------------------------------------------------------------
# Artifact-store payloads for Eq. 8 evaluation records
# ----------------------------------------------------------------------
# Evaluation is deterministic given (model weights, candidate, examples),
# so a (candidate, fold) record computed in one run — or one AKB round —
# can be served from the store in any later one.  The unpackers validate
# structure defensively and return None on anything unexpected, so a
# bogus payload degrades to a recompute, never to bad floats.
def pack_detail_record(detail) -> dict:
    """Serialise one :func:`predict_detailed` result for the store."""
    golds, preds, margins, errors = detail
    return {
        "golds": list(golds),
        "preds": list(preds),
        "margins": [float(m) for m in margins],
        "errors": [(e.example, e.prediction) for e in errors],
    }


def unpack_detail_record(record):
    """Rebuild a :func:`predict_detailed` tuple, or ``None`` if malformed."""
    if not isinstance(record, dict):
        return None
    try:
        golds = [str(g) for g in record["golds"]]
        preds = [str(p) for p in record["preds"]]
        margins = [float(m) for m in record["margins"]]
        errors = [
            ErrorCase(example=example, prediction=str(prediction))
            for example, prediction in record["errors"]
        ]
    except (KeyError, TypeError, ValueError):
        return None
    if not (len(golds) == len(preds) == len(margins)):
        return None
    return golds, preds, margins, errors


def pack_score_record(value: float, errors) -> dict:
    """Serialise one :func:`score_knowledge` result for the store."""
    return {
        "value": float(value),
        "errors": [(e.example, e.prediction) for e in errors],
    }


def unpack_score_record(record):
    """Rebuild a :func:`score_knowledge` tuple, or ``None`` if malformed."""
    if not isinstance(record, dict):
        return None
    try:
        value = float(record["value"])
        errors = [
            ErrorCase(example=example, prediction=str(prediction))
            for example, prediction in record["errors"]
        ]
    except (KeyError, TypeError, ValueError):
        return None
    return value, errors


def task_metric(
    task: Task, golds: Sequence[str], preds: Sequence[str],
    examples: Sequence[Example],
) -> float:
    """The task's paper metric over aligned gold/pred lists.

    A thin delegate to :func:`repro.tasks.metrics.score_predictions` —
    the single scoring call path shared with ``Task.evaluate`` and
    ``harness.evaluate_method``, which in turn dispatches through the
    registry's :meth:`repro.tasks.base.Task.score` hook, so AKB scores
    generative families (``answer_mode="generate"``) with their own
    metric and no special-casing here.
    """
    return metrics.score_predictions(task.name, golds, preds, examples)


def score_knowledge(
    model: ScoringLM,
    task: Task,
    knowledge: Knowledge,
    examples: Sequence[Example],
    dataset: Optional[Dataset] = None,
) -> Tuple[float, List[ErrorCase]]:
    """Score one candidate and collect its error cases (Eq. 8)."""
    golds, preds, __margins, errors = predict_detailed(
        model, task, knowledge, examples, dataset
    )
    return task_metric(task, golds, preds, examples), errors


def score_knowledge_pool(
    model: ScoringLM,
    task: Task,
    candidates: Sequence[Knowledge],
    examples: Sequence[Example],
    dataset: Optional[Dataset] = None,
) -> List[Tuple[float, List[ErrorCase]]]:
    """:func:`score_knowledge` for a whole candidate pool in one pass."""
    detailed = predict_detailed_pool(model, task, candidates, examples, dataset)
    return [
        (task_metric(task, golds, preds, examples), errors)
        for golds, preds, __margins, errors in detailed
    ]
