"""AKB generation step (paper Eq. 7).

A subset of the few-shot data is rendered into demonstrations and the
closed-source LLM produces the initial pool of knowledge candidates.
The seed knowledge always remains a member of the pool so the search
can never end below the handcrafted starting point.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ...data.schema import Example
from ...knowledge.rules import Knowledge
from ...llm.mockgpt import MockGPT
from ...tinylm.linalg import rng_for
from ..config import AKBConfig

__all__ = ["sample_demonstrations", "generate_pool"]


def sample_demonstrations(
    examples: Sequence[Example], count: int, seed: int
) -> List[Example]:
    """Random X_examples ⊂ D' for the generation prompt (Alg. 2 line 1)."""
    rng = rng_for(seed, "akb-demos")
    if len(examples) <= count:
        return list(examples)
    indices = rng.choice(len(examples), size=count, replace=False)
    return [examples[int(i)] for i in indices]


def generate_pool(
    mockgpt: MockGPT,
    task_name: str,
    examples: Sequence[Example],
    seed_knowledge: Knowledge,
    config: AKBConfig,
) -> List[Knowledge]:
    """Initial candidate pool K, seed knowledge included."""
    demonstrations = sample_demonstrations(
        examples, config.generation_examples, config.seed
    )
    pool: List[Knowledge] = [seed_knowledge]
    for candidate in mockgpt.generate_knowledge(
        task_name, demonstrations, seed_knowledge, count=config.pool_size
    ):
        if candidate not in pool:
            pool.append(candidate)
    return pool
