"""AKB generation step (paper Eq. 7) plus knowledge-base pool seeding.

A subset of the few-shot data is rendered into demonstrations and the
closed-source LLM produces the initial pool of knowledge candidates.
The seed knowledge always remains a member of the pool so the search
can never end below the handcrafted starting point.  When a persistent
knowledge base is attached (:mod:`repro.knowledge.kb`), the pool is
additionally seeded with the top-k nearest-profile entries retrieved
from previous searches — turning the cold iterative search into
retrieve-then-refine.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ... import obs
from ...data.schema import Example
from ...knowledge.rules import Knowledge
from ...llm.mockgpt import MockGPT
from ...tinylm.linalg import rng_for
from ..config import AKBConfig

__all__ = ["sample_demonstrations", "generate_pool", "seeded_pool"]


def sample_demonstrations(
    examples: Sequence[Example], count: int, seed: int
) -> List[Example]:
    """Random X_examples ⊂ D' for the generation prompt (Alg. 2 line 1)."""
    rng = rng_for(seed, "akb-demos")
    if len(examples) <= count:
        return list(examples)
    indices = rng.choice(len(examples), size=count, replace=False)
    return [examples[int(i)] for i in indices]


def generate_pool(
    mockgpt: MockGPT,
    task_name: str,
    examples: Sequence[Example],
    seed_knowledge: Knowledge,
    config: AKBConfig,
) -> List[Knowledge]:
    """Initial candidate pool K, seed knowledge included."""
    demonstrations = sample_demonstrations(
        examples, config.generation_examples, config.seed
    )
    pool: List[Knowledge] = [seed_knowledge]
    for candidate in mockgpt.generate_knowledge(
        task_name, demonstrations, seed_knowledge, count=config.pool_size
    ):
        if candidate not in pool:
            pool.append(candidate)
    return pool


def seeded_pool(
    mockgpt: MockGPT,
    task_name: str,
    examples: Sequence[Example],
    seed_knowledge: Knowledge,
    config: AKBConfig,
    retrieved: Sequence[Tuple[float, "object"]] = (),
) -> List[Knowledge]:
    """The initial pool K, extended with KB-retrieved candidates.

    ``retrieved`` is the ``(similarity, KBEntry)`` list a
    :meth:`repro.knowledge.kb.KnowledgeBase.retrieve` call returned
    (empty without a KB).  Retrieved knowledge joins the pool *after*
    the generated candidates, deduplicated against them, so a run
    without a KB produces a byte-identical pool prefix.  The
    ``akb.pool_seeded`` counter attributes pool membership to its
    source so traces can tell a retrieval-driven speedup from a lucky
    generation.
    """
    pool = generate_pool(
        mockgpt, task_name, examples, seed_knowledge, config
    )
    obs.counter("akb.pool_seeded", len(pool), source="generated")
    added = 0
    for __similarity, entry in retrieved:
        candidate = entry.knowledge
        if candidate not in pool:
            pool.append(candidate)
            added += 1
    if retrieved or added:
        obs.counter("akb.pool_seeded", added, source="retrieved")
    return pool
