"""KnowTrans hyperparameters (paper Section VII-A analogues).

The paper: LoRA rank 32, lr 6e-5, batch 4, grad-accum 4, 3 epochs for
patch training; AKB with GPT-4o at temperature 0.9, 10 generation
examples, 4 error examples per refinement, 3 iterations, 5 error
samples per iteration; DP-LLM inference at temperature 0.35 / top-k 10
/ top-p 0.9.  The substrate keeps every knob, rescaled to its size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tinylm.trainer import TrainConfig

__all__ = ["SKCConfig", "AKBConfig", "KnowTransConfig"]


@dataclass(frozen=True)
class SKCConfig:
    """Selective Knowledge Concentration settings."""

    lora_rank: int = 4
    lora_alpha: float = 2.0
    patch_epochs: int = 3
    patch_learning_rate: float = 6e-3
    finetune_epochs: int = 10
    finetune_learning_rate: float = 6e-3
    batch_size: int = 4
    initial_lambda: float = 0.03
    train_lambdas: bool = True
    train_patches: bool = True
    seed: int = 0

    def patch_train_config(self) -> TrainConfig:
        return TrainConfig(
            learning_rate=self.patch_learning_rate,
            batch_size=self.batch_size,
            epochs=self.patch_epochs,
            seed=self.seed,
        )

    def finetune_train_config(self) -> TrainConfig:
        return TrainConfig(
            learning_rate=self.finetune_learning_rate,
            batch_size=self.batch_size,
            epochs=self.finetune_epochs,
            seed=self.seed,
        )


@dataclass(frozen=True)
class AKBConfig:
    """Automatic Knowledge Bridging settings.

    The ``kb_*`` knobs govern the persistent cross-dataset knowledge
    base (:mod:`repro.knowledge.kb`): how many nearest-profile entries
    seed the candidate pool, the cosine-similarity floor below which a
    retrieved entry is ignored, how many of a finished search's
    best-scoring candidates are promoted back into the bank, and the
    *trust* threshold — when the best retrieval is at least this
    similar and scores at least as well as everything generated, the
    search stops after round one instead of grinding refinement rounds
    (the bank already refined this knowledge on a near-identical
    profile).  Measured cross-seed profiles of one dataset family sit
    above 0.99; profiles of different datasets of the same task fall
    below it.
    """

    generation_examples: int = 10
    pool_size: int = 5
    iterations: int = 3
    refinements_per_iteration: int = 2
    error_samples: int = 5
    temperature: float = 0.9
    min_improvement: float = 1e-6
    patience: int = 2
    seed: int = 0
    kb_top_k: int = 3
    kb_min_similarity: float = 0.1
    kb_promote_top: int = 3
    kb_trust_similarity: float = 0.99


@dataclass(frozen=True)
class KnowTransConfig:
    """Bundle of both component configurations."""

    skc: SKCConfig = field(default_factory=SKCConfig)
    akb: AKBConfig = field(default_factory=AKBConfig)
    seed: int = 0

    @staticmethod
    def fast() -> "KnowTransConfig":
        """A lighter setting for tests and quick examples."""
        return KnowTransConfig(
            skc=SKCConfig(finetune_epochs=6, patch_epochs=2),
            akb=AKBConfig(pool_size=3, iterations=2, refinements_per_iteration=1),
        )
