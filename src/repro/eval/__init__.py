"""Evaluation harness, experiment registry and reporting."""

from . import diagnostics, experiments, harness, plots, reporting, repeats, significance
from .experiments import ExperimentContext

__all__ = [
    "experiments",
    "harness",
    "reporting",
    "plots",
    "repeats",
    "diagnostics",
    "significance",
    "ExperimentContext",
]
