"""Evaluation harness: datasets, splits, and method adaptation helpers.

Everything an experiment needs to go from a dataset id to scored
methods: cached dataset splits, single-patch few-shot adaptation for
base models (the Mistral / TableLLaMA baselines), and a uniform
``evaluate`` over anything with a ``predict`` method.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .. import obs
from ..core.config import KnowTransConfig, SKCConfig
from ..core.knowtrans import AdaptedModel
from ..core.skc.finetune import few_shot_finetune
from ..core.skc.fusion import attach_fusion
from ..data import generators
from ..data.augment import AugmentConfig
from ..data.schema import Dataset, Example
from ..data.splits import DatasetSplits, split_dataset
from ..knowledge.seed import seed_knowledge
from ..tasks import metrics
from ..tasks.base import get_task
from ..tinylm.model import ScoringLM

__all__ = [
    "load_splits",
    "adapt_single",
    "evaluate_method",
    "clear_split_cache",
]

_SPLITS: Dict[Tuple[str, int, int, int, float, str], DatasetSplits] = {}


def load_splits(
    dataset_id: str,
    count: Optional[int] = None,
    seed: int = 0,
    few_shot: int = 20,
    scale: float = 1.0,
    augment: Optional["AugmentConfig"] = None,
) -> DatasetSplits:
    """Generate and split a downstream dataset (memoised).

    ``augment`` optionally applies the entity-augmentation pass
    (:mod:`repro.data.augment`) before splitting; its canonical
    ``describe()`` string participates in the memo key so augmented and
    unaugmented splits never collide.
    """
    augment_key = augment.describe() if augment is not None else ""
    key = (dataset_id, count or -1, seed, few_shot, scale, augment_key)
    if key not in _SPLITS:
        dataset = generators.build(
            dataset_id, count=count, seed=seed, scale=scale, augment=augment
        )
        _SPLITS[key] = split_dataset(dataset, few_shot=few_shot, seed=seed)
    return _SPLITS[key]


def clear_split_cache() -> None:
    _SPLITS.clear()


def adapt_single(
    base_model: ScoringLM,
    few_shot: Dataset,
    config: Optional[SKCConfig] = None,
) -> AdaptedModel:
    """Plain few-shot LoRA fine-tuning of any model (no SKC, no AKB).

    This is the adaptation recipe behind the Mistral, TableLLaMA and
    Jellyfish baselines of Table II: one fresh patch, seed knowledge.
    """
    config = config or KnowTransConfig.fast().skc
    task = get_task(few_shot.task)
    knowledge = seed_knowledge(few_shot.task)
    model, __fusion = attach_fusion(
        base_model, [], config, strategy="single", name=f"single-{few_shot.name}"
    )
    few_shot_finetune(model, few_shot, config, knowledge)
    return AdaptedModel(
        model=model, task=task, knowledge=knowledge, dataset=few_shot
    )


def evaluate_method(method, examples: Sequence[Example], task: str) -> float:
    """Score any object exposing ``predict(example) -> str``.

    This is the canonical scoring entry point — the experiments, the
    CLI and the deprecated ``AdaptedModel.evaluate`` shim all route
    through it.  Methods that also expose ``predict_batch(examples) ->
    List[str]`` (adapted models, ICL baselines) are scored through the
    batched inference engine; plain per-example predictors still work.
    The actual metric dispatch is one shared call path:
    :func:`repro.tasks.metrics.score_predictions`.
    """
    with obs.span("harness.evaluate", task=task, examples=len(examples)):
        golds = [ex.answer for ex in examples]
        if hasattr(method, "predict_batch"):
            preds = list(method.predict_batch(examples))
        else:
            preds = [method.predict(ex) for ex in examples]
        return metrics.score_predictions(task, golds, preds, examples)
