"""Experiment registry — one entry per table and figure of the paper.

Every experiment takes an :class:`ExperimentContext` (seeds, scale and
budget knobs shared across the suite) and returns a structured result
plus a rendered text block printing the same rows/series the paper
reports.  The benchmark harness under ``benchmarks/`` calls these
functions one-to-one; tests run them at the ``quick`` preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.closed import CLOSED_MODELS, make_closed_model
from ..baselines.jellyfish import UpstreamBundle, get_bundle
from ..baselines.meld import fit_meld
from ..baselines.non_llm import fit_non_llm
from ..core.akb.optimizer import search_knowledge
from ..core.config import AKBConfig, KnowTransConfig, SKCConfig
from ..core.knowtrans import KnowTrans
from ..data import generators
from ..data.splits import DatasetSplits, few_shot_slice
from ..knowledge.seed import seed_knowledge
from ..llm.icl import ICLModel
from ..llm.mockgpt import MockGPT
from ..llm.pricing import UsageMeter
from ..runtime import WorkerPool
from ..tasks.base import get_task
from ..tasks.prompts import full_prompt
from ..tinylm.registry import create_base_model
from . import harness, plots, reporting

__all__ = [
    "ExperimentContext",
    "GridSpec",
    "GRIDS",
    "assemble_grid",
    "table1_dataset_statistics",
    "table2_open_source_comparison",
    "table3_cost_analysis",
    "table4_closed_source_comparison",
    "table5_ablation",
    "table6_weight_strategies",
    "table7_upstream_statistics",
    "fig4_scalability",
    "fig5_backbones_on_datasets",
    "fig6_backbones_on_tasks",
    "fig7_refinement_rounds",
]

#: Table II / IV dataset order (paper Table I).
ALL_DATASETS: Tuple[str, ...] = tuple(generators.DOWNSTREAM_SPECS)
NOVEL_DATASET_IDS: Tuple[str, ...] = tuple(
    d for d in ALL_DATASETS if d.split("/")[0] in ("ed", "di", "sm", "em")
)
NOVEL_TASK_IDS: Tuple[str, ...] = tuple(
    d for d in ALL_DATASETS if d.split("/")[0] in ("cta", "ave", "dc")
)


@dataclass
class ExperimentContext:
    """Shared configuration and caches for one experiment run."""

    seed: int = 0
    data_scale: float = 0.6
    upstream_scale: float = 0.6
    few_shot: int = 20
    config: KnowTransConfig = field(default_factory=KnowTransConfig.fast)
    main_tier: str = "mistral-7b"
    #: Worker count for the per-dataset row loops (``None`` defers to
    #: ``REPRO_JOBS``).  The fan-out is at the dataset level only —
    #: adapters built inside a row stay serial so pools never nest.
    jobs: Optional[int] = None

    @staticmethod
    def quick() -> "ExperimentContext":
        """Small preset for tests: tiny datasets, short training."""
        return ExperimentContext(
            data_scale=0.35,
            upstream_scale=0.35,
            config=KnowTransConfig(
                skc=SKCConfig(finetune_epochs=5, patch_epochs=2),
                akb=AKBConfig(pool_size=3, iterations=1, refinements_per_iteration=1),
            ),
        )

    @staticmethod
    def paper() -> "ExperimentContext":
        """Benchmark preset used to regenerate the tables.

        Sized so the full harness regenerates every table and figure in
        well under an hour on one CPU core; the scales trade a little
        test-set resolution for tractable single-machine runs.
        """
        return ExperimentContext(
            data_scale=0.8,
            upstream_scale=0.6,
            config=KnowTransConfig(
                skc=SKCConfig(finetune_epochs=8, patch_epochs=2),
                akb=AKBConfig(pool_size=4, iterations=2, refinements_per_iteration=2),
            ),
        )

    # ------------------------------------------------------------------
    def bundle(self, tier: Optional[str] = None, with_upstream_sft: bool = True) -> UpstreamBundle:
        return get_bundle(
            tier or self.main_tier,
            seed=self.seed,
            scale=self.upstream_scale,
            skc_config=self.config.skc,
            with_upstream_sft=with_upstream_sft,
        )

    def splits(self, dataset_id: str, count: Optional[int] = None) -> DatasetSplits:
        return harness.load_splits(
            dataset_id,
            count=count,
            seed=self.seed,
            few_shot=self.few_shot,
            scale=self.data_scale,
        )

    def knowtrans(self, **kwargs) -> KnowTrans:
        # Inner adapters run serial (jobs=1): the harness parallelism
        # lives at the per-dataset row level, and nesting process pools
        # would only oversubscribe the cores the outer pool already owns.
        kwargs.setdefault("jobs", 1)
        return KnowTrans(self.bundle(), config=self.config, **kwargs)

    def pool(self) -> WorkerPool:
        """The per-dataset row pool (serial unless ``jobs``/``REPRO_JOBS``)."""
        return WorkerPool(self.jobs)

    def prewarm(self, tiers: Sequence[Tuple[str, bool]] = (("mistral-7b", True),)) -> None:
        """Build the expensive shared state before fanning rows out.

        Bundles, base models and SKC patches are memoised at module
        level; building them in the parent means forked workers inherit
        them instead of each row re-running pretraining + upstream SFT
        + patch extraction.
        """
        for tier, with_sft in tiers:
            bundle = self.bundle(tier, with_upstream_sft=with_sft)
            bundle.ensure_patches(jobs=self.jobs)


# ---------------------------------------------------------------------------
# The shardable experiment grid
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GridSpec:
    """One row-per-dataset experiment, described as a shardable grid.

    The table/figure harness and the shard coordinator share this one
    description: ``row_fn`` computes a single ``(ctx, dataset_id)`` cell
    (it is the exact worker-pool task the unsharded run maps over), and
    :func:`assemble_grid` turns any complete set of cell rows — however
    they were computed — into the final report.  Because both paths run
    the identical row function and the identical assembly, a merged
    N-shard run is bit-identical to a single-process run by
    construction.
    """

    name: str
    title: str
    columns: Tuple[str, ...]
    dataset_ids: Tuple[str, ...]
    row_fn: Callable[[Tuple["ExperimentContext", str]], Dict]
    prewarm: Callable[["ExperimentContext"], None]


def _finish_rows(spec: GridSpec, rows: Sequence[Dict]) -> Dict:
    """Append the averages row and render — the single assembly path."""
    rows = list(rows)
    columns = list(spec.columns)
    rows.append(reporting.averages_row(rows, columns))
    text = reporting.render_table(spec.title, columns, rows)
    return {"rows": rows, "text": text}


def assemble_grid(name: str, rows_by_dataset: Dict[str, Dict]) -> Dict:
    """Build an experiment's full report from per-cell rows.

    ``rows_by_dataset`` maps dataset id → the row dict its grid cell
    produced (typically read back from per-shard result files).  Rows
    are reassembled in the grid's canonical dataset order regardless of
    which shard computed them or when, so the output is identical to an
    unsharded run.  Raises ``ValueError`` when cells are missing — a
    merge over an incomplete grid must fail loudly, not average fewer
    datasets.
    """
    spec = GRIDS[name]
    missing = [d for d in spec.dataset_ids if d not in rows_by_dataset]
    if missing:
        raise ValueError(
            f"grid {name!r} is missing {len(missing)} cell(s): "
            + ", ".join(missing)
        )
    return _finish_rows(spec, [rows_by_dataset[d] for d in spec.dataset_ids])


def _run_grid(
    name: str, ctx: "ExperimentContext", dataset_ids: Sequence[str]
) -> Dict:
    """Unsharded grid execution: prewarm, map the row fn, assemble."""
    spec = GRIDS[name]
    spec.prewarm(ctx)
    rows = ctx.pool().map(
        spec.row_fn, [(ctx, dataset_id) for dataset_id in dataset_ids]
    )
    return _finish_rows(spec, rows)


def _default_prewarm(ctx: "ExperimentContext") -> None:
    ctx.prewarm()


# ---------------------------------------------------------------------------
# Table I / Table VII — dataset statistics
# ---------------------------------------------------------------------------
def table1_dataset_statistics(ctx: ExperimentContext) -> Dict:
    """Paper Table I: per-dataset split sizes."""
    rows = []
    for dataset_id in ALL_DATASETS:
        splits = ctx.splits(dataset_id)
        rows.append(
            {
                "dataset": dataset_id,
                "task": splits.task,
                "train": len(splits.train.examples),
                "few_shot": len(splits.few_shot.examples),
                "test": len(splits.test.examples),
            }
        )
    text = reporting.render_table(
        "Table I: downstream dataset statistics",
        ["task", "train", "few_shot", "test"],
        rows,
    )
    return {"rows": rows, "text": text}


def table7_upstream_statistics(ctx: ExperimentContext) -> Dict:
    """Paper Table VII: upstream dataset statistics."""
    rows = []
    for dataset in ctx.bundle().upstream_datasets:
        positives = dataset.positive_count()
        rows.append(
            {
                "dataset": dataset.name,
                "task": dataset.task,
                "samples": len(dataset.examples),
                "positives": positives if dataset.label_set else "n/a",
            }
        )
    text = reporting.render_table(
        "Table VII: upstream dataset statistics",
        ["task", "samples", "positives"],
        rows,
    )
    return {"rows": rows, "text": text}


# ---------------------------------------------------------------------------
# Table II — 7B open-source DP-LLMs and non-LLM methods
# ---------------------------------------------------------------------------
def _table2_row(args) -> Dict:
    """One Table II dataset row (worker-pool task)."""
    ctx, dataset_id = args
    bundle = ctx.bundle()
    mistral_base = create_base_model("mistral-7b", seed=ctx.seed)
    tablellama_base = create_base_model("tablellama", seed=ctx.seed)
    splits = ctx.splits(dataset_id)
    task = splits.task
    test = splits.test.examples
    few = splits.few_shot
    scores = {"dataset": dataset_id}
    scores["non_llm"] = fit_non_llm(task, few.examples).evaluate(test)
    scores["mistral"] = harness.evaluate_method(
        harness.adapt_single(mistral_base, few, ctx.config.skc), test, task
    )
    scores["tablellama"] = harness.evaluate_method(
        harness.adapt_single(tablellama_base, few, ctx.config.skc), test, task
    )
    scores["meld"] = fit_meld(bundle, splits, ctx.config.skc).evaluate(test)
    scores["jellyfish"] = harness.evaluate_method(
        harness.adapt_single(bundle.upstream_model, few, ctx.config.skc),
        test,
        task,
    )
    icl = ICLModel(
        bundle.upstream_model,
        get_task(task),
        few.examples[:10],
        seed_knowledge(task),
        dataset=few,
    )
    scores["jellyfish_icl"] = harness.evaluate_method(icl, test, task)
    scores["knowtrans"] = harness.evaluate_method(
        ctx.knowtrans().fit(splits), test, task
    )
    return scores


def _table2_prewarm(ctx: ExperimentContext) -> None:
    ctx.prewarm()
    create_base_model("mistral-7b", seed=ctx.seed)
    create_base_model("tablellama", seed=ctx.seed)


def table2_open_source_comparison(
    ctx: ExperimentContext, dataset_ids: Sequence[str] = ALL_DATASETS
) -> Dict:
    """Paper Table II: KnowTrans vs open-source DP-LLMs and non-LLMs."""
    return _run_grid("table2", ctx, dataset_ids)


# ---------------------------------------------------------------------------
# Table III — token and cost accounting
# ---------------------------------------------------------------------------
def table3_cost_analysis(
    ctx: ExperimentContext, dataset_id: str = "em/walmart_amazon",
    sample: int = 24,
) -> Dict:
    """Paper Table III: per-instance tokens and USD cost."""
    splits = ctx.splits(dataset_id)
    examples = splits.test.examples[:sample]
    rows = []
    for name in ("gpt-3.5", "gpt-4o", "gpt-4"):
        model = make_closed_model(
            name, splits.task, splits.few_shot.examples, splits.few_shot,
            seed=ctx.seed,
        )
        for example in examples:
            model.predict(example)
        summary = model.meter.summary()
        summary["dataset"] = name
        rows.append(summary)
    adapted = ctx.knowtrans().fit(splits)
    meter = UsageMeter("knowtrans")
    for example in examples:
        prompt = adapted.task.prompt(example, adapted.knowledge)
        meter.log_call(full_prompt(prompt, None), adapted.predict(example))
    summary = meter.summary()
    summary["dataset"] = "knowtrans"
    rows.append(summary)
    display_rows = [
        dict(row, cost_per_instance=f"${row['cost_per_instance']:.6f}")
        for row in rows
    ]
    text = reporting.render_table(
        "Table III: per-instance tokens and cost",
        ["input_tokens", "output_tokens", "cost_per_instance"],
        display_rows,
        key_column="dataset",
    )
    return {"rows": rows, "text": text}


# ---------------------------------------------------------------------------
# Table IV — closed-source LLMs vs KnowTrans tiers
# ---------------------------------------------------------------------------
_TIER_MAP = {
    "knowtrans_7b": "mistral-7b",
    "knowtrans_8b": "llama-8b",
    "knowtrans_13b": "llama-13b",
}


def _table4_row(args) -> Dict:
    """One Table IV dataset row (worker-pool task)."""
    ctx, dataset_id = args
    splits = ctx.splits(dataset_id)
    test = splits.test.examples
    scores = {"dataset": dataset_id}
    for name in CLOSED_MODELS:
        closed = make_closed_model(
            name, splits.task, splits.few_shot.examples, splits.few_shot,
            seed=ctx.seed,
        )
        scores[name.replace("-", "_").replace(".", "_")] = closed.evaluate(test)
    for label, tier in _TIER_MAP.items():
        adapter = KnowTrans(ctx.bundle(tier), config=ctx.config, jobs=1)
        scores[label] = harness.evaluate_method(
            adapter.fit(splits), test, splits.task
        )
    return scores


def _table4_prewarm(ctx: ExperimentContext) -> None:
    ctx.prewarm([(tier, True) for tier in _TIER_MAP.values()])


def table4_closed_source_comparison(
    ctx: ExperimentContext, dataset_ids: Sequence[str] = ALL_DATASETS
) -> Dict:
    """Paper Table IV: GPT baselines vs KnowTrans-7B/8B/13B."""
    return _run_grid("table4", ctx, dataset_ids)


# ---------------------------------------------------------------------------
# Table V — ablation
# ---------------------------------------------------------------------------
ABLATION_DATASETS: Tuple[str, ...] = (
    "di/flipkart", "di/phone", "cta/sotab", "ave/ae110k",
    "ave/oa_mine", "dc/rayyan", "dc/beer",
)


_ABLATION_VARIANTS = {
    "wo_skc_akb": {"use_skc": False, "use_akb": False},
    "wo_skc": {"use_skc": False, "use_akb": True},
    "wo_akb": {"use_skc": True, "use_akb": False},
    "knowtrans": {"use_skc": True, "use_akb": True},
}


def _table5_row(args) -> Dict:
    """One Table V dataset row (worker-pool task)."""
    ctx, dataset_id = args
    splits = ctx.splits(dataset_id)
    test = splits.test.examples
    scores = {"dataset": dataset_id}
    for label, switches in _ABLATION_VARIANTS.items():
        scores[label] = harness.evaluate_method(
            ctx.knowtrans(**switches).fit(splits), test, splits.task
        )
    return scores


def table5_ablation(
    ctx: ExperimentContext, dataset_ids: Sequence[str] = ABLATION_DATASETS
) -> Dict:
    """Paper Table V: removing SKC / AKB / both."""
    return _run_grid("table5", ctx, dataset_ids)


# ---------------------------------------------------------------------------
# Table VI — weight strategies
# ---------------------------------------------------------------------------
STRATEGY_DATASETS: Tuple[str, ...] = (
    "ed/flights", "ed/rayyan", "em/abt_buy", "ave/ae110k",
)


def _table6_row(args) -> Dict:
    """One Table VI dataset row (worker-pool task)."""
    ctx, dataset_id = args
    splits = ctx.splits(dataset_id)
    test = splits.test.examples
    scores = {"dataset": dataset_id}
    for strategy in ("single", "uniform", "adaptive"):
        adapter = ctx.knowtrans(strategy=strategy, use_akb=False)
        scores[strategy] = harness.evaluate_method(
            adapter.fit(splits), test, splits.task
        )
    scores["knowtrans"] = harness.evaluate_method(
        ctx.knowtrans().fit(splits), test, splits.task
    )
    return scores


def table6_weight_strategies(
    ctx: ExperimentContext, dataset_ids: Sequence[str] = STRATEGY_DATASETS
) -> Dict:
    """Paper Table VI: single vs uniform vs adaptive vs full KnowTrans."""
    return _run_grid("table6", ctx, dataset_ids)


# ---------------------------------------------------------------------------
# Fig. 4 — scalability with labeled instance count
# ---------------------------------------------------------------------------
FIG4_DATASETS: Tuple[str, ...] = (
    "dc/rayyan", "sm/cms", "em/walmart_amazon", "ave/ae110k",
)


def fig4_scalability(
    ctx: ExperimentContext,
    dataset_ids: Sequence[str] = FIG4_DATASETS,
    instance_counts: Sequence[int] = (20, 50, 100, 200),
) -> Dict:
    """Paper Fig. 4: Jellyfish vs KnowTrans as labels grow."""
    bundle = ctx.bundle()
    needed = int(max(instance_counts) * 2.5)
    results = {}
    for dataset_id in dataset_ids:
        splits = ctx.splits(dataset_id, count=needed)
        test = splits.test.examples
        jellyfish_scores: List[float] = []
        knowtrans_scores: List[float] = []
        for count in instance_counts:
            slice_dataset = few_shot_slice(splits, count)
            slice_splits = DatasetSplits(
                train=splits.train, few_shot=slice_dataset, test=splits.test
            )
            jellyfish_scores.append(
                harness.evaluate_method(
                    harness.adapt_single(
                        bundle.upstream_model, slice_dataset, ctx.config.skc
                    ),
                    test,
                    splits.task,
                )
            )
            knowtrans_scores.append(
                harness.evaluate_method(
                    ctx.knowtrans().fit(slice_splits), test, splits.task
                )
            )
        results[dataset_id] = {
            "counts": list(instance_counts),
            "jellyfish": jellyfish_scores,
            "knowtrans": knowtrans_scores,
        }
    blocks = []
    for dataset_id, series in results.items():
        curves = {
            "jellyfish-7b": series["jellyfish"],
            "knowtrans-7b": series["knowtrans"],
        }
        blocks.append(
            reporting.render_series(
                f"Fig. 4 ({dataset_id}): score vs labeled instances",
                "instances",
                series["counts"],
                curves,
            )
            + "\n"
            + plots.line_plot(
                f"Fig. 4 ({dataset_id})", series["counts"], curves, height=10
            )
        )
    return {"series": results, "text": "\n\n".join(blocks)}


# ---------------------------------------------------------------------------
# Fig. 5 / Fig. 6 — backbone comparison
# ---------------------------------------------------------------------------
_BACKBONES = {
    "mistral_7b": ("mistral-7b", False),
    "jellyfish_7b": ("mistral-7b", True),
    "jellyfish_8b": ("llama-8b", True),
    "jellyfish_13b": ("llama-13b", True),
}


def _backbone_row(args) -> Dict:
    """One Fig. 5/6 dataset row (worker-pool task)."""
    ctx, dataset_id = args
    splits = ctx.splits(dataset_id)
    test = splits.test.examples
    scores = {"dataset": dataset_id}
    for label, (tier, sft) in _BACKBONES.items():
        bundle = ctx.bundle(tier, with_upstream_sft=sft)
        scores[label] = harness.evaluate_method(
            harness.adapt_single(
                bundle.upstream_model, splits.few_shot, ctx.config.skc
            ),
            test,
            splits.task,
        )
        adapter = KnowTrans(bundle, config=ctx.config, jobs=1)
        scores[label + "+kt"] = harness.evaluate_method(
            adapter.fit(splits), test, splits.task
        )
    return scores


_BACKBONE_COLUMNS = tuple(
    column for label in _BACKBONES for column in (label, label + "+kt")
)


def _backbone_prewarm(ctx: ExperimentContext) -> None:
    ctx.prewarm(list(_BACKBONES.values()))


def fig5_backbones_on_datasets(
    ctx: ExperimentContext, dataset_ids: Sequence[str] = NOVEL_DATASET_IDS
) -> Dict:
    """Paper Fig. 5: backbones ± KnowTrans on novel datasets."""
    return _run_grid("fig5", ctx, dataset_ids)


def fig6_backbones_on_tasks(
    ctx: ExperimentContext, dataset_ids: Sequence[str] = NOVEL_TASK_IDS
) -> Dict:
    """Paper Fig. 6: backbones ± KnowTrans on novel tasks."""
    return _run_grid("fig6", ctx, dataset_ids)


GRIDS: Dict[str, GridSpec] = {
    spec.name: spec
    for spec in (
        GridSpec(
            name="table2",
            title="Table II: open-source DP-LLMs and non-LLM methods (few-shot)",
            columns=(
                "non_llm", "mistral", "tablellama", "meld",
                "jellyfish", "jellyfish_icl", "knowtrans",
            ),
            dataset_ids=ALL_DATASETS,
            row_fn=_table2_row,
            prewarm=_table2_prewarm,
        ),
        GridSpec(
            name="table4",
            title="Table IV: closed-source LLMs vs KnowTrans tiers",
            columns=(
                "gpt_3_5", "gpt_4", "gpt_4o",
                "knowtrans_7b", "knowtrans_8b", "knowtrans_13b",
            ),
            dataset_ids=ALL_DATASETS,
            row_fn=_table4_row,
            prewarm=_table4_prewarm,
        ),
        GridSpec(
            name="table5",
            title="Table V: ablation study",
            columns=tuple(_ABLATION_VARIANTS),
            dataset_ids=ABLATION_DATASETS,
            row_fn=_table5_row,
            prewarm=_default_prewarm,
        ),
        GridSpec(
            name="table6",
            title="Table VI: patch weighting strategies",
            columns=("single", "uniform", "adaptive", "knowtrans"),
            dataset_ids=STRATEGY_DATASETS,
            row_fn=_table6_row,
            prewarm=_default_prewarm,
        ),
        GridSpec(
            name="fig5",
            title="Fig. 5: backbones on novel datasets (bare vs +KnowTrans)",
            columns=_BACKBONE_COLUMNS,
            dataset_ids=NOVEL_DATASET_IDS,
            row_fn=_backbone_row,
            prewarm=_backbone_prewarm,
        ),
        GridSpec(
            name="fig6",
            title="Fig. 6: backbones on novel tasks (bare vs +KnowTrans)",
            columns=_BACKBONE_COLUMNS,
            dataset_ids=NOVEL_TASK_IDS,
            row_fn=_backbone_row,
            prewarm=_backbone_prewarm,
        ),
    )
}


# ---------------------------------------------------------------------------
# Fig. 7 — refinement round analysis
# ---------------------------------------------------------------------------
def fig7_refinement_rounds(
    ctx: ExperimentContext,
    dataset_ids: Sequence[str] = ("ed/rayyan", "ave/ae110k"),
    rounds: int = 6,
) -> Dict:
    """Paper Fig. 7: eval/test score across AKB refinement rounds."""
    results = {}
    for dataset_id in dataset_ids:
        splits = ctx.splits(dataset_id)
        adapter = ctx.knowtrans(use_akb=False)
        adapted = adapter.fit(splits)
        scorer = adapter.cross_fit_scorer(splits)
        akb_config = replace(
            ctx.config.akb, iterations=rounds, patience=rounds + 1
        )
        result = search_knowledge(
            adapted.model,
            splits.few_shot,
            splits.validation.examples,
            mockgpt=MockGPT(temperature=akb_config.temperature, seed=ctx.seed),
            config=akb_config,
            initial_knowledge=seed_knowledge(splits.task),
            scorer=scorer,
        )
        task = get_task(splits.task)
        eval_curve = [round_.best_score for round_ in result.rounds]
        test_curve = [
            task.evaluate(adapted.model, splits.test.examples, knowledge, splits.test)
            for knowledge in result.trajectory
        ]
        # Pad flat if the search converged early — the paper's AVE curve
        # is exactly this plateau.
        while len(eval_curve) < rounds:
            eval_curve.append(eval_curve[-1])
            test_curve.append(test_curve[-1])
        results[dataset_id] = {"eval": eval_curve, "test": test_curve}
    blocks = []
    for dataset_id, series in results.items():
        curves = {"eval": series["eval"], "test": series["test"]}
        blocks.append(
            reporting.render_series(
                f"Fig. 7 ({dataset_id}): AKB refinement rounds",
                "round",
                list(range(1, rounds + 1)),
                curves,
            )
            + "\n"
            + plots.line_plot(
                f"Fig. 7 ({dataset_id})",
                list(range(1, rounds + 1)),
                curves,
                height=10,
            )
        )
    return {"series": results, "text": "\n\n".join(blocks)}
