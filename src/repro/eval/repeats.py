"""Multi-seed repetition — the paper's "averaged over 3 runs" protocol.

Section VII-A: "All experiments are conducted 3 times and the averaged
performances are reported."  :func:`repeat_experiment` reruns any
registry entry under different seeds and aggregates the numeric columns
into mean ± std rows.  Because seeds flow through dataset generation,
splits, model init and MockGPT sampling, this measures the full
pipeline variance, not just training noise.
"""

from __future__ import annotations

import statistics
from dataclasses import replace
from typing import Callable, Dict, List, Sequence

from . import reporting
from .experiments import ExperimentContext
from .harness import clear_split_cache

__all__ = ["repeat_experiment", "aggregate_rows"]


def aggregate_rows(
    runs: Sequence[Sequence[Dict]], key_column: str = "dataset"
) -> List[Dict]:
    """Merge aligned row lists into mean±std cells.

    Numeric cells become ``"mean ± std"`` strings; non-numeric cells are
    taken from the first run.
    """
    if not runs:
        return []
    first = runs[0]
    merged: List[Dict] = []
    for row_index, base_row in enumerate(first):
        merged_row: Dict = {key_column: base_row.get(key_column, "")}
        for column, value in base_row.items():
            if column == key_column:
                continue
            if isinstance(value, (int, float)):
                values = [
                    float(run[row_index][column])
                    for run in runs
                    if column in run[row_index]
                ]
                mean = statistics.fmean(values)
                std = statistics.pstdev(values) if len(values) > 1 else 0.0
                merged_row[column] = f"{mean:.2f} ± {std:.2f}"
            else:
                merged_row[column] = value
        merged.append(merged_row)
    return merged


def repeat_experiment(
    experiment: Callable[[ExperimentContext], Dict],
    ctx: ExperimentContext,
    seeds: Sequence[int] = (0, 1, 2),
    title: str = "",
) -> Dict:
    """Run ``experiment`` once per seed and aggregate its rows.

    Only row-shaped experiments (the tables) can be aggregated; figure
    experiments return series and should be repeated manually.
    """
    runs: List[Sequence[Dict]] = []
    for seed in seeds:
        clear_split_cache()
        seeded = replace(ctx) if hasattr(ctx, "__dataclass_fields__") else ctx
        seeded.seed = seed
        result = experiment(seeded)
        if "rows" not in result:
            raise ValueError(
                "repeat_experiment only aggregates row-shaped experiments"
            )
        runs.append(result["rows"])
    merged = aggregate_rows(runs)
    columns = [c for c in merged[0] if c != "dataset"] if merged else []
    text = reporting.render_table(
        title or f"{experiment.__name__} over seeds {list(seeds)}",
        columns,
        merged,
    )
    return {"rows": merged, "runs": runs, "text": text, "seeds": list(seeds)}
