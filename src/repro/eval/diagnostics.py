"""Diagnostics for the paper's motivating phenomena.

Paper Fig. 1 (left) motivates SKC with the "tug-of-war" effect: during
multi-task upstream SFT, different datasets push the shared parameters
in conflicting directions (obtuse gradient angles).  SKC's isolated
patches remove the conflict by construction.  This module *measures*
both claims on the substrate:

* :func:`gradient_conflict_matrix` — pairwise cosine similarity of
  per-dataset gradients evaluated at the shared upstream parameters.
* :func:`conflict_rate` — the fraction of dataset pairs with negative
  cosine (the "obtuse angle" of the paper's figure).
* :func:`patch_interference_matrix` — cosine similarity between the
  *updates* carried by extracted knowledge patches; isolated patches
  may still point in similar directions (that is transferable shared
  structure), but they never fight over the same optimisation step.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.skc.patches import dataset_training_examples
from ..data.schema import Dataset
from ..tinylm.lora import LoRAPatch
from ..tinylm.model import ScoringLM

__all__ = [
    "dataset_gradient",
    "gradient_conflict_matrix",
    "conflict_rate",
    "patch_interference_matrix",
]

_SHARED_WEIGHTS = ("encoder.W1", "encoder.W2", "answer.V")


def dataset_gradient(
    model: ScoringLM, dataset: Dataset, sample: int = 32
) -> np.ndarray:
    """Flattened gradient of the dataset's loss at the model's weights."""
    examples = dataset_training_examples(dataset)[:sample]
    encoded = [
        model.encode_example(ex.prompt, ex.candidates, ex.target)
        for ex in examples
    ]
    __, grads, __ = model.loss_and_gradients(encoded, train_base=True)
    return np.concatenate([grads[name].ravel() for name in _SHARED_WEIGHTS])


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denominator = np.linalg.norm(a) * np.linalg.norm(b)
    if denominator == 0.0:
        return 0.0
    return float(a @ b / denominator)


def gradient_conflict_matrix(
    model: ScoringLM, datasets: Sequence[Dataset], sample: int = 32
) -> Tuple[np.ndarray, List[str]]:
    """Pairwise gradient cosine similarities across datasets.

    Returns ``(matrix, names)`` where ``matrix[i, j]`` is the cosine of
    dataset *i*'s and dataset *j*'s gradients at the shared weights.
    Negative entries are the paper's tug-of-war pairs.
    """
    gradients = [dataset_gradient(model, dataset, sample) for dataset in datasets]
    n = len(gradients)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = _cosine(gradients[i], gradients[j])
    return matrix, [dataset.name for dataset in datasets]


def conflict_rate(matrix: np.ndarray) -> float:
    """Fraction of dataset pairs whose gradients point obtusely."""
    n = matrix.shape[0]
    if n < 2:
        return 0.0
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    negative = sum(1 for i, j in pairs if matrix[i, j] < 0.0)
    return negative / len(pairs)


def patch_interference_matrix(
    patches: Sequence[LoRAPatch],
) -> Tuple[np.ndarray, List[str]]:
    """Pairwise cosine similarity of extracted patch updates."""
    updates = []
    for patch in patches:
        parts = [patch.delta(name) for name in patch.target_names]
        updates.append(
            np.concatenate([part.ravel() for part in parts if part is not None])
        )
    n = len(updates)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = _cosine(updates[i], updates[j])
    return matrix, [patch.name for patch in patches]


def summarize_conflict(
    model: ScoringLM, datasets: Sequence[Dataset], sample: int = 32
) -> Dict[str, object]:
    """A compact report used by the Fig. 1 benchmark."""
    matrix, names = gradient_conflict_matrix(model, datasets, sample)
    off_diagonal = matrix[~np.eye(len(names), dtype=bool)]
    worst_value = float(off_diagonal.min()) if len(names) > 1 else 0.0
    worst_pair = ("", "")
    if len(names) > 1:
        flat_index = int(np.argmin(matrix + 2.0 * np.eye(len(names))))
        worst_pair = (names[flat_index // len(names)], names[flat_index % len(names)])
    return {
        "names": names,
        "matrix": matrix,
        "conflict_rate": conflict_rate(matrix),
        "mean_cosine": float(off_diagonal.mean()) if len(names) > 1 else 1.0,
        "worst_pair": worst_pair,
        "worst_cosine": worst_value,
    }
