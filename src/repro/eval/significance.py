"""Paired bootstrap significance testing for method comparisons.

Benchmarks report point scores; a 20-example few-shot pipeline is noisy
enough that "A beats B by 2 points" deserves an uncertainty statement.
:func:`paired_bootstrap` resamples the *test set* with replacement and
recomputes both methods' metrics on each resample — the standard paired
bootstrap for system comparison — returning the win rate and a
confidence interval on the score difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..data.schema import Example
from ..tasks import metrics
from ..tinylm.linalg import rng_for

__all__ = ["BootstrapReport", "paired_bootstrap", "compare_methods"]


@dataclass(frozen=True)
class BootstrapReport:
    """Outcome of a paired bootstrap comparison of methods A and B."""

    score_a: float
    score_b: float
    mean_difference: float
    ci_low: float
    ci_high: float
    win_rate_a: float
    resamples: int

    @property
    def significant(self) -> bool:
        """True when the 95% CI of (A - B) excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def summary(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return (
            f"A={self.score_a:.2f} B={self.score_b:.2f} "
            f"Δ={self.mean_difference:+.2f} "
            f"[{self.ci_low:+.2f}, {self.ci_high:+.2f}] "
            f"win-rate(A)={self.win_rate_a:.2%} ({verdict})"
        )


def paired_bootstrap(
    task: str,
    golds: Sequence[str],
    preds_a: Sequence[str],
    preds_b: Sequence[str],
    originals: Optional[Sequence[str]] = None,
    resamples: int = 1000,
    seed: int = 0,
) -> BootstrapReport:
    """Bootstrap the metric difference between two aligned prediction lists."""
    n = len(golds)
    if not (n and len(preds_a) == n and len(preds_b) == n):
        raise ValueError("golds and both prediction lists must align")
    rng = rng_for(seed, "bootstrap", task)

    def metric(indices: Sequence[int], preds: Sequence[str]) -> float:
        sub_golds = [golds[i] for i in indices]
        sub_preds = [preds[i] for i in indices]
        sub_originals = (
            [originals[i] for i in indices] if originals is not None else None
        )
        return metrics.score(task, sub_golds, sub_preds, sub_originals)

    full = list(range(n))
    score_a = metric(full, preds_a)
    score_b = metric(full, preds_b)
    differences: List[float] = []
    wins = 0
    for __ in range(resamples):
        indices = rng.integers(0, n, size=n)
        resampled_a = metric(indices, preds_a)
        resampled_b = metric(indices, preds_b)
        differences.append(resampled_a - resampled_b)
        wins += resampled_a > resampled_b
    sorted_diffs = np.sort(differences)
    return BootstrapReport(
        score_a=score_a,
        score_b=score_b,
        mean_difference=float(np.mean(differences)),
        ci_low=float(sorted_diffs[int(0.025 * resamples)]),
        ci_high=float(sorted_diffs[min(int(0.975 * resamples), resamples - 1)]),
        win_rate_a=wins / resamples,
        resamples=resamples,
    )


def compare_methods(
    method_a,
    method_b,
    examples: Sequence[Example],
    task: str,
    resamples: int = 1000,
    seed: int = 0,
) -> BootstrapReport:
    """Run both methods on the examples and bootstrap the difference."""
    golds = [ex.answer for ex in examples]
    preds_a = [method_a.predict(ex) for ex in examples]
    preds_b = [method_b.predict(ex) for ex in examples]
    originals = None
    if task == "dc":
        originals = [
            ex.inputs["record"].get(ex.inputs["attribute"]) for ex in examples
        ]
    return paired_bootstrap(
        task, golds, preds_a, preds_b, originals, resamples, seed
    )
