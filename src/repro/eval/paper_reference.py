"""The paper's reported numbers, as data.

Transcribed from the evaluation section (Tables II–VI) of
*KnowTrans: Boosting Transferability of Data Preparation LLMs via
Knowledge Augmentation* (ICDE 2025).  EXPERIMENTS.md and the shape
checks compare measured results against these — on *shape* (signs of
gaps, orderings), never on absolute values, since the substrate is a
simulator rather than the authors' testbed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "TABLE2",
    "TABLE3",
    "TABLE4_AVERAGES",
    "TABLE5",
    "TABLE6",
    "shape_deltas",
    "sign_agreement",
]

#: Table II (per-dataset scores, 100-point scale).  Columns:
#: non_llm, mistral, tablellama, meld, jellyfish, jellyfish_icl, knowtrans
TABLE2: Dict[str, Dict[str, float]] = {
    "ed/flights": {
        "non_llm": 44.00, "mistral": 45.67, "tablellama": 53.02,
        "meld": 66.48, "jellyfish": 68.65, "jellyfish_icl": 64.67,
        "knowtrans": 74.38,
    },
    "ed/rayyan": {
        "non_llm": 62.00, "mistral": 45.00, "tablellama": 36.99,
        "meld": 79.79, "jellyfish": 78.89, "jellyfish_icl": 74.17,
        "knowtrans": 89.40,
    },
    "ed/beer": {
        "non_llm": 70.00, "mistral": 12.99, "tablellama": 38.06,
        "meld": 77.84, "jellyfish": 78.62, "jellyfish_icl": 45.27,
        "knowtrans": 92.33,
    },
    "di/flipkart": {
        "non_llm": 2.54, "mistral": 81.27, "tablellama": 42.59,
        "meld": 79.74, "jellyfish": 78.09, "jellyfish_icl": 82.47,
        "knowtrans": 82.88,
    },
    "di/phone": {
        "non_llm": 8.20, "mistral": 84.09, "tablellama": 70.35,
        "meld": 85.09, "jellyfish": 83.17, "jellyfish_icl": 83.92,
        "knowtrans": 85.68,
    },
    "sm/cms": {
        "non_llm": 2.10, "mistral": 18.75, "tablellama": 1.86,
        "meld": 26.67, "jellyfish": 27.59, "jellyfish_icl": 30.30,
        "knowtrans": 27.69,
    },
    "em/abt_buy": {
        "non_llm": 57.14, "mistral": 20.09, "tablellama": 42.58,
        "meld": 85.52, "jellyfish": 77.62, "jellyfish_icl": 74.56,
        "knowtrans": 87.86,
    },
    "em/walmart_amazon": {
        "non_llm": 80.00, "mistral": 39.83, "tablellama": 34.70,
        "meld": 78.31, "jellyfish": 82.74, "jellyfish_icl": 79.08,
        "knowtrans": 83.89,
    },
    "cta/sotab": {
        "non_llm": 25.13, "mistral": 80.08, "tablellama": 20.31,
        "meld": 58.78, "jellyfish": 79.22, "jellyfish_icl": 42.75,
        "knowtrans": 83.61,
    },
    "ave/ae110k": {
        "non_llm": 3.91, "mistral": 65.08, "tablellama": 18.93,
        "meld": 60.54, "jellyfish": 59.27, "jellyfish_icl": 59.51,
        "knowtrans": 67.86,
    },
    "ave/oa_mine": {
        "non_llm": 1.63, "mistral": 60.22, "tablellama": 17.01,
        "meld": 57.16, "jellyfish": 57.57, "jellyfish_icl": 42.76,
        "knowtrans": 59.93,
    },
    "dc/rayyan": {
        "non_llm": 63.00, "mistral": 96.82, "tablellama": 84.23,
        "meld": 91.57, "jellyfish": 96.37, "jellyfish_icl": 92.69,
        "knowtrans": 96.27,
    },
    "dc/beer": {
        "non_llm": 87.00, "mistral": 95.83, "tablellama": 99.68,
        "meld": 99.72, "jellyfish": 98.54, "jellyfish_icl": 95.10,
        "knowtrans": 98.54,
    },
}

#: Table III: mean input tokens, output tokens, USD per instance.
TABLE3: Dict[str, Tuple[float, float, float]] = {
    "gpt-3.5": (751.08, 2.86, 0.0004),
    "gpt-4o": (751.08, 2.86, 0.0038),
    "gpt-4": (751.08, 2.86, 0.0227),
    "knowtrans": (20.41, 8.21, 0.0002),
}

#: Table IV bottom row (averages over the 13 datasets).
TABLE4_AVERAGES: Dict[str, float] = {
    "gpt_3_5": 67.85,
    "gpt_4": 74.76,
    "gpt_4o": 75.32,
    "knowtrans_7b": 79.40,
    "knowtrans_8b": 77.87,
    "knowtrans_13b": 81.39,
}

#: Table V ablation averages (7 datasets).
TABLE5: Dict[str, float] = {
    "wo_skc_akb": 76.64,
    "wo_skc": 79.88,
    "wo_akb": 80.74,
    "knowtrans": 83.94,
}

#: Table VI weighting-strategy averages (4 datasets).
TABLE6: Dict[str, float] = {
    "single": 69.00,
    "uniform": 73.60,
    "adaptive": 76.49,
    "knowtrans": 79.90,
}


def shape_deltas(
    reference: Dict[str, float], measured: Dict[str, float],
    baseline: str, target: str,
) -> Tuple[float, float]:
    """(paper gap, measured gap) between two methods."""
    return (
        reference[target] - reference[baseline],
        measured[target] - measured[baseline],
    )


def sign_agreement(
    reference_rows: Dict[str, Dict[str, float]],
    measured_rows: Sequence[Dict[str, object]],
    baseline: str,
    target: str,
    key_column: str = "dataset",
) -> float:
    """Fraction of datasets where the measured gap's sign matches paper.

    Only datasets present in both are compared; ties (paper gap of
    exactly zero) count as agreement when the measured gap is within
    ±2 points.
    """
    matches = 0
    compared = 0
    measured_by_dataset = {
        str(row.get(key_column)): row for row in measured_rows
    }
    for dataset_id, reference in reference_rows.items():
        row = measured_by_dataset.get(dataset_id)
        if row is None or target not in row or baseline not in row:
            continue
        paper_gap = reference[target] - reference[baseline]
        measured_gap = float(row[target]) - float(row[baseline])
        compared += 1
        if paper_gap == 0.0:
            matches += abs(measured_gap) <= 2.0
        else:
            matches += (paper_gap > 0) == (measured_gap > 0)
    return matches / compared if compared else 0.0
