"""ASCII line plots for the figure experiments (no plotting deps).

Offline environments have no matplotlib; the figure benchmarks still
want a visual of the curves next to the raw series.  :func:`line_plot`
renders one or more series into a fixed-size character grid with a
y-axis, legend markers, and x tick labels — enough to see who wins,
by how much, and where curves cross (the three things the figures are
read for).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["line_plot", "sparkline"]

_MARKERS = "ox+*#@"
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character sketch of a series."""
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _BLOCKS[3] * len(values)
    cells = []
    for value in values:
        index = int((value - low) / span * (len(_BLOCKS) - 1))
        cells.append(_BLOCKS[index])
    return "".join(cells)


def line_plot(
    title: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """Render series as an ASCII chart with axis labels and a legend."""
    values: List[float] = [v for ys in series.values() for v in ys]
    if not values or not xs:
        return title + "\n(no data)"
    low, high = min(values), max(values)
    if high - low < 1e-9:
        high = low + 1.0
    grid = [[" "] * width for __ in range(height)]

    def to_row(value: float) -> int:
        fraction = (value - low) / (high - low)
        return int(round((height - 1) * (1.0 - fraction)))

    def to_col(index: int) -> int:
        if len(xs) == 1:
            return 0
        return int(round(index * (width - 1) / (len(xs) - 1)))

    for marker, (name, ys) in zip(_MARKERS, series.items()):
        previous = None
        for index, value in enumerate(ys):
            row, col = to_row(value), to_col(index)
            grid[row][col] = marker
            if previous is not None:
                # Linear interpolation between points with faint dots.
                prev_row, prev_col = previous
                steps = max(abs(col - prev_col), 1)
                for step in range(1, steps):
                    interp_col = prev_col + step * (col - prev_col) // steps
                    interp_row = prev_row + step * (row - prev_row) // steps
                    if grid[interp_row][interp_col] == " ":
                        grid[interp_row][interp_col] = "."
            previous = (row, col)

    label_width = max(len(f"{high:.1f}"), len(f"{low:.1f}"))
    lines = [title]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{high:.1f}"
        elif row_index == height - 1:
            label = f"{low:.1f}"
        else:
            label = ""
        lines.append(label.rjust(label_width) + " |" + "".join(row))
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    first, last = str(xs[0]), str(xs[-1])
    padding = max(width - len(first) - len(last), 1)
    lines.append(" " * (label_width + 2) + first + " " * padding + last)
    legend = "  ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
