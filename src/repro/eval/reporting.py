"""Plain-text table and series rendering for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["render_table", "render_series", "averages_row"]


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Mapping[str, object]],
    key_column: str = "dataset",
) -> str:
    """Render rows (dicts) into an aligned monospace table."""
    header = [key_column] + [c for c in columns if c != key_column]
    widths = {c: len(c) for c in header}
    formatted: List[List[str]] = []
    for row in rows:
        cells = []
        for column in header:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        formatted.append(cells)
    lines = [title]
    lines.append(
        "  ".join(column.ljust(widths[column]) for column in header)
    )
    lines.append("  ".join("-" * widths[column] for column in header))
    for cells in formatted:
        lines.append(
            "  ".join(
                cell.ljust(widths[column])
                for cell, column in zip(cells, header)
            )
        )
    return "\n".join(lines)


def averages_row(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str],
    key_column: str = "dataset", label: str = "average",
) -> Dict[str, object]:
    """Append-ready row of per-column means over numeric cells."""
    result: Dict[str, object] = {key_column: label}
    for column in columns:
        values = [
            float(row[column])
            for row in rows
            if column in row and isinstance(row[column], (int, float))
        ]
        if values:
            result[column] = sum(values) / len(values)
    return result


def render_series(
    title: str, x_label: str, xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render figure series (one line per method) as aligned text."""
    lines = [title]
    x_cells = [str(x) for x in xs]
    width = max([len(x_label)] + [len(name) for name in series])
    value_width = max(
        [max(len(c) for c in x_cells)]
        + [len(f"{v:.2f}") for values in series.values() for v in values]
    )
    lines.append(
        x_label.ljust(width)
        + "  "
        + "  ".join(c.rjust(value_width) for c in x_cells)
    )
    for name, values in series.items():
        lines.append(
            name.ljust(width)
            + "  "
            + "  ".join(f"{v:.2f}".rjust(value_width) for v in values)
        )
    return "\n".join(lines)
