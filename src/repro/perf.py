"""Lightweight performance observability for the batched inference engine.

A process-global :class:`PerfRegistry` collects named counters and
wall-clock timers from the hot paths (featurization, batched scoring)
with near-zero overhead — a dict increment per *batch*, not per
example.  Nothing here affects numerics; the registry exists so the
perf trajectory of the substrate can be inspected (``python -m repro
perf``) and tracked across PRs (``benchmarks/bench_perf_inference.py``
writes ``BENCH_inference.json``).

Derived statistics (cache hit-rates, examples/sec) are computed at
report time from the raw counters, never maintained incrementally.

The module is import-light on purpose: the tinylm substrate imports it
for instrumentation, so it must not import the substrate back at module
scope.  The benchmark helpers at the bottom lazily import the rest of
the package.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

__all__ = ["PerfRegistry", "PERF", "run_inference_benchmark", "render_benchmark"]


class PerfRegistry:
    """Named monotonic counters plus accumulated wall-clock timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, List[float]] = {}  # name -> [seconds, calls]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self._counters[name] = self._counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under timer ``name``."""
        slot = self._timers.get(name)
        if slot is None:
            self._timers[name] = [seconds, 1]
        else:
            slot[0] += seconds
            slot[1] += 1

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager accumulating the elapsed wall-clock time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def seconds(self, name: str) -> float:
        slot = self._timers.get(name)
        return slot[0] if slot else 0.0

    def hit_rate(self, hits: str, misses: str) -> float:
        """``hits / (hits + misses)`` over two counters (0.0 when idle)."""
        h, m = self.counter(hits), self.counter(misses)
        total = h + m
        return h / total if total else 0.0

    def throughput(self, counter: str, timer: str) -> float:
        """Counter units per second of accumulated timer time."""
        elapsed = self.seconds(timer)
        return self.counter(counter) / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A JSON-friendly copy of all raw counters and timers."""
        return {
            "counters": dict(self._counters),
            "timers": {
                name: {"seconds": slot[0], "calls": slot[1]}
                for name, slot in self._timers.items()
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()

    def report(self) -> str:
        """Human-readable dump with the derived rates the CLI prints."""
        lines = ["perf counters:"]
        for name in sorted(self._counters):
            lines.append(f"  {name:<40} {self._counters[name]:>12}")
        if self._timers:
            lines.append("perf timers:")
            for name in sorted(self._timers):
                seconds, calls = self._timers[name]
                lines.append(
                    f"  {name:<40} {seconds:>9.4f}s over {calls} calls"
                )
        derived = []
        for label, hits, misses in (
            ("featurizer sparse cache", "featurizer.sparse_hits",
             "featurizer.sparse_misses"),
            ("prompt cache", "model.prompt_hits", "model.prompt_misses"),
            ("candidate cache", "model.candidate_hits",
             "model.candidate_misses"),
        ):
            if self.counter(hits) + self.counter(misses):
                derived.append(
                    f"  {label + ' hit-rate':<40} "
                    f"{self.hit_rate(hits, misses):>11.1%}"
                )
        if self.counter("model.examples") and self.seconds("model.forward"):
            derived.append(
                f"  {'scored examples/sec':<40} "
                f"{self.throughput('model.examples', 'model.forward'):>12.0f}"
            )
        if derived:
            lines.append("derived:")
            lines.extend(derived)
        return "\n".join(lines)


#: The process-global registry every instrumented component records into.
PERF = PerfRegistry()


# ----------------------------------------------------------------------
# Inference micro-benchmark (shared by ``python -m repro perf`` and
# ``benchmarks/bench_perf_inference.py``)
# ----------------------------------------------------------------------
def _best_of(repeats: int, fn: Callable[[], object]) -> tuple:
    """``(best_seconds, last_result)`` over ``repeats`` timed runs."""
    best = float("inf")
    result = None
    for __ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_inference_benchmark(
    dataset_id: str = "em/abt_buy",
    count: int = 200,
    seed: int = 0,
    repeats: int = 3,
    model=None,
) -> Dict:
    """Time per-example vs batched scoring on one downstream workload.

    The workload is the validation + test split of ``dataset_id`` (the
    Table II evaluation surface).  Both paths are measured twice:

    * **cold** — all featurization caches cleared, one pass; dominated
      by hashing, so it bounds the worst case.
    * **warm** — caches pre-populated, best of ``repeats``; this is the
      steady state of the AKB loop (Eq. 8 re-scores the same validation
      set for every knowledge candidate) and the number the ≥3× gate in
      ``bench_perf_inference.py`` checks.

    Returns a JSON-ready dict; predictions from both paths are compared
    and reported under ``predictions_identical``.
    """
    from .data import generators
    from .data.splits import split_dataset
    from .knowledge.seed import seed_knowledge
    from .tasks.base import get_task
    from .tinylm.model import ModelConfig, ScoringLM
    from .tinylm.tokenizer import HashedFeaturizer

    dataset = generators.build(dataset_id, count=count, seed=seed)
    splits = split_dataset(dataset, few_shot=20, seed=seed)
    examples = list(splits.validation.examples) + list(splits.test.examples)
    task = get_task(dataset.task)
    knowledge = seed_knowledge(dataset.task)
    if model is None:
        # Scoring cost is independent of the weight values, so an
        # untrained model with the 7B-analogue geometry measures the
        # same hot path without paying for pretraining.
        model = ScoringLM(ModelConfig(name="bench", seed=seed))

    prompts = [task.prompt(ex, knowledge) for ex in examples]
    pools = [task.candidates(ex, knowledge, dataset) for ex in examples]
    n = len(examples)

    def clear_caches() -> None:
        HashedFeaturizer.clear_shared_caches()
        model._candidate_cache.clear()
        model._prompt_cache.clear()

    def run_per_example() -> List[int]:
        return [model.predict(p, pool) for p, pool in zip(prompts, pools)]

    def run_batched() -> List[int]:
        return model.predict_batch(prompts, pools)

    # Cold single passes (order matters: each starts from empty caches).
    clear_caches()
    cold_per_example, __ = _best_of(1, run_per_example)
    clear_caches()
    cold_batched, __ = _best_of(1, run_batched)

    # Warm steady state: caches stay populated between repeats.
    per_example_seconds, per_example_preds = _best_of(repeats, run_per_example)
    PERF.reset()
    batched_seconds, batched_preds = _best_of(repeats, run_batched)
    counters = PERF.snapshot()

    speedup = per_example_seconds / batched_seconds if batched_seconds else 0.0
    return {
        "workload": dataset_id,
        "examples": n,
        "candidates": sum(len(pool) for pool in pools),
        "repeats": repeats,
        "per_example": {
            "seconds": per_example_seconds,
            "examples_per_sec": n / per_example_seconds,
        },
        "batched": {
            "seconds": batched_seconds,
            "examples_per_sec": n / batched_seconds,
        },
        "cold": {
            "per_example_seconds": cold_per_example,
            "batched_seconds": cold_batched,
        },
        "speedup": speedup,
        "predictions_identical": batched_preds == per_example_preds,
        "perf": counters,
    }


def render_benchmark(result: Dict) -> str:
    """Format :func:`run_inference_benchmark` output for the terminal."""
    lines = [
        f"batched inference benchmark — {result['workload']} "
        f"({result['examples']} examples, {result['candidates']} candidates)",
        f"  per-example: {result['per_example']['seconds']:.4f}s "
        f"({result['per_example']['examples_per_sec']:.0f} ex/s)",
        f"  batched:     {result['batched']['seconds']:.4f}s "
        f"({result['batched']['examples_per_sec']:.0f} ex/s)",
        f"  speedup:     {result['speedup']:.1f}x (warm caches, best of "
        f"{result['repeats']})",
        f"  cold pass:   per-example {result['cold']['per_example_seconds']:.4f}s, "
        f"batched {result['cold']['batched_seconds']:.4f}s",
        f"  predictions identical: {result['predictions_identical']}",
    ]
    return "\n".join(lines)
