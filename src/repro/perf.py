"""Lightweight performance observability for the batched inference engine.

A process-global :class:`PerfRegistry` collects named counters and
wall-clock timers from the hot paths (featurization, batched scoring)
with near-zero overhead — a dict increment per *batch*, not per
example.  Nothing here affects numerics; the registry exists so the
perf trajectory of the substrate can be inspected (``python -m repro
perf``) and tracked across PRs (``benchmarks/bench_perf_inference.py``
writes ``BENCH_inference.json``).

Derived statistics (cache hit-rates, examples/sec) are computed at
report time from the raw counters, never maintained incrementally.

The module is import-light on purpose: the tinylm substrate imports it
for instrumentation, so it must not import the substrate back at module
scope.  The benchmark helpers at the bottom lazily import the rest of
the package.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "PerfRegistry",
    "PERF",
    "Gate",
    "run_inference_benchmark",
    "render_benchmark",
    "run_pipeline_benchmark",
    "render_pipeline_benchmark",
    "run_cache_benchmark",
    "render_cache_benchmark",
    "run_kb_benchmark",
    "render_kb_benchmark",
    "run_train_benchmark",
    "render_train_benchmark",
    "run_serve_benchmark",
    "render_serve_benchmark",
    "run_shm_benchmark",
    "render_shm_benchmark",
    "run_workload_benchmark",
    "render_workload_benchmark",
]


class PerfRegistry:
    """Named monotonic counters plus accumulated wall-clock timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, List[float]] = {}  # name -> [seconds, calls]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self._counters[name] = self._counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under timer ``name``."""
        slot = self._timers.get(name)
        if slot is None:
            self._timers[name] = [seconds, 1]
        else:
            slot[0] += seconds
            slot[1] += 1

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager accumulating the elapsed wall-clock time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def seconds(self, name: str) -> float:
        slot = self._timers.get(name)
        return slot[0] if slot else 0.0

    def hit_rate(self, hits: str, misses: str) -> float:
        """``hits / (hits + misses)`` over two counters (0.0 when idle)."""
        h, m = self.counter(hits), self.counter(misses)
        total = h + m
        return h / total if total else 0.0

    def throughput(self, counter: str, timer: str) -> float:
        """Counter units per second of accumulated timer time."""
        elapsed = self.seconds(timer)
        return self.counter(counter) / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A JSON-friendly copy of all raw counters and timers."""
        return {
            "counters": dict(self._counters),
            "timers": {
                name: {"seconds": slot[0], "calls": slot[1]}
                for name, slot in self._timers.items()
            },
        }

    def merge(self, snapshot: Dict[str, Dict[str, float]]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Worker processes cannot record into the parent's registry, so
        the runtime pool ships each task's snapshot home and merges it
        here — counters add, timers accumulate seconds and call counts.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, int(value))
        for name, entry in snapshot.get("timers", {}).items():
            slot = self._timers.get(name)
            if slot is None:
                self._timers[name] = [
                    float(entry["seconds"]), int(entry["calls"])
                ]
            else:
                slot[0] += float(entry["seconds"])
                slot[1] += int(entry["calls"])

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()

    def report(self) -> str:
        """Human-readable dump with the derived rates the CLI prints."""
        lines = ["perf counters:"]
        for name in sorted(self._counters):
            lines.append(f"  {name:<40} {self._counters[name]:>12}")
        if self._timers:
            lines.append("perf timers:")
            for name in sorted(self._timers):
                seconds, calls = self._timers[name]
                lines.append(
                    f"  {name:<40} {seconds:>9.4f}s over {calls} calls"
                )
        derived = []
        for label, hits, misses in (
            ("featurizer sparse cache", "featurizer.sparse_hits",
             "featurizer.sparse_misses"),
            ("prompt cache", "model.prompt_hits", "model.prompt_misses"),
            ("candidate cache", "model.candidate_hits",
             "model.candidate_misses"),
        ):
            if self.counter(hits) + self.counter(misses):
                derived.append(
                    f"  {label + ' hit-rate':<40} "
                    f"{self.hit_rate(hits, misses):>11.1%}"
                )
        if self.counter("model.examples") and self.seconds("model.forward"):
            derived.append(
                f"  {'scored examples/sec':<40} "
                f"{self.throughput('model.examples', 'model.forward'):>12.0f}"
            )
        if self.counter("train.rank_space_steps"):
            derived.append(
                f"  {'rank-space train steps/sec':<40} "
                f"{self.throughput('train.rank_space_steps', 'model.backward'):>12.0f}"
            )
            derived.append(
                f"  {'dense weight materializations':<40} "
                f"{self.counter('model.weight_materializations'):>12}"
            )
        if derived:
            lines.append("derived:")
            lines.extend(derived)
        return "\n".join(lines)


#: The process-global registry every instrumented component records into.
PERF = PerfRegistry()


# ----------------------------------------------------------------------
# The perf-gate protocol (shared by the four benchmarks/bench_perf_*.py
# gates: one BENCH_*.json writer, one perf_trajectory.jsonl appender,
# one speedup/identity assertion style)
# ----------------------------------------------------------------------
class Gate:
    """One protocol for a perf gate: stamp, persist, assert.

    Each ``benchmarks/bench_perf_*.py`` file builds a Gate around its
    benchmark result, then:

    * :meth:`write` — serialise the stamped result to
      ``BENCH_<name>.json`` at the repo root and (optionally) append a
      compact trajectory row to ``benchmarks/results/
      perf_trajectory.jsonl`` so the metric's history is tracked across
      PRs;
    * :meth:`require` / :meth:`require_speedup` — collect failed
      invariants (identity checks, engine-engagement checks, the
      speedup floor) without aborting, so one run reports *every*
      violated gate condition;
    * :meth:`check` — raise a single ``AssertionError`` listing all
      collected failures.  Files are written before any assertion runs,
      so a failing gate still leaves its evidence on disk.

    Construction stamps ``result["preset"]`` (from
    ``REPRO_BENCH_PRESET``, defaulting to ``paper``) and
    ``result["min_speedup"]`` into the result dict — the stamps land in
    the JSON artifact alongside the measurements.
    """

    def __init__(
        self,
        name: str,
        result: dict,
        min_speedup: Optional[float] = None,
        root: Optional[object] = None,
    ):
        import os
        import pathlib

        self.name = name
        self.result = result
        self.min_speedup = min_speedup
        self.root = (
            pathlib.Path(root)
            if root is not None
            else pathlib.Path(__file__).resolve().parents[2]
        )
        self.failures: List[str] = []
        result.setdefault(
            "preset", os.environ.get("REPRO_BENCH_PRESET", "paper") or "paper"
        )
        if min_speedup is not None:
            result["min_speedup"] = min_speedup

    @property
    def preset(self) -> str:
        return self.result["preset"]

    @property
    def bench_json(self):
        return self.root / f"BENCH_{self.name}.json"

    @property
    def trajectory_path(self):
        return self.root / "benchmarks" / "results" / "perf_trajectory.jsonl"

    def write(self, **trajectory_fields) -> None:
        """Persist the result JSON, plus a trajectory row when given."""
        import json

        self.bench_json.write_text(
            json.dumps(self.result, indent=2) + "\n"
        )
        if trajectory_fields:
            path = self.trajectory_path
            path.parent.mkdir(parents=True, exist_ok=True)
            row = {"bench": self.name, "preset": self.preset}
            row.update(trajectory_fields)
            with path.open("a") as handle:
                handle.write(json.dumps(row) + "\n")

    def require(self, ok: bool, message: str) -> None:
        """Record a failed invariant (does not raise until :meth:`check`)."""
        if not ok:
            self.failures.append(message)

    def require_speedup(self, key: str = "speedup") -> None:
        """The shared speedup-floor assertion against ``min_speedup``."""
        if self.min_speedup is None:
            raise ValueError(f"gate {self.name!r} has no min_speedup")
        self.require(
            self.result[key] >= self.min_speedup,
            f"only {self.result[key]:.2f}x faster "
            f"(need >= {self.min_speedup}x); see {self.bench_json}",
        )

    def check(self) -> None:
        """Raise one AssertionError naming every collected failure."""
        assert not self.failures, (
            f"{self.name} gate failed: " + "; ".join(self.failures)
        )


# ----------------------------------------------------------------------
# Inference micro-benchmark (shared by ``python -m repro perf`` and
# ``benchmarks/bench_perf_inference.py``)
# ----------------------------------------------------------------------
def _best_of(repeats: int, fn: Callable[[], object]) -> tuple:
    """``(best_seconds, last_result)`` over ``repeats`` timed runs."""
    best = float("inf")
    result = None
    for __ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_inference_benchmark(
    dataset_id: str = "em/abt_buy",
    count: int = 200,
    seed: int = 0,
    repeats: int = 3,
    model=None,
) -> Dict:
    """Time per-example vs batched scoring on one downstream workload.

    The workload is the validation + test split of ``dataset_id`` (the
    Table II evaluation surface).  Both paths are measured twice:

    * **cold** — all featurization caches cleared, one pass; dominated
      by hashing, so it bounds the worst case.
    * **warm** — caches pre-populated, best of ``repeats``; this is the
      steady state of the AKB loop (Eq. 8 re-scores the same validation
      set for every knowledge candidate) and the number the ≥3× gate in
      ``bench_perf_inference.py`` checks.

    Returns a JSON-ready dict; predictions from both paths are compared
    and reported under ``predictions_identical``.
    """
    from .data import generators
    from .data.splits import split_dataset
    from .knowledge.seed import seed_knowledge
    from .tasks.base import get_task
    from .tinylm.model import ModelConfig, ScoringLM
    from .tinylm.tokenizer import HashedFeaturizer

    dataset = generators.build(dataset_id, count=count, seed=seed)
    splits = split_dataset(dataset, few_shot=20, seed=seed)
    examples = list(splits.validation.examples) + list(splits.test.examples)
    task = get_task(dataset.task)
    knowledge = seed_knowledge(dataset.task)
    if model is None:
        # Scoring cost is independent of the weight values, so an
        # untrained model with the 7B-analogue geometry measures the
        # same hot path without paying for pretraining.
        model = ScoringLM(ModelConfig(name="bench", seed=seed))

    prompts = [task.prompt(ex, knowledge) for ex in examples]
    pools = [task.candidates(ex, knowledge, dataset) for ex in examples]
    n = len(examples)

    def clear_caches() -> None:
        HashedFeaturizer.clear_shared_caches()
        model._candidate_cache.clear()
        model._prompt_cache.clear()

    def run_per_example() -> List[int]:
        return [model.predict(p, pool) for p, pool in zip(prompts, pools)]

    def run_batched() -> List[int]:
        return model.predict_batch(prompts, pools)

    # Cold single passes (order matters: each starts from empty caches).
    clear_caches()
    cold_per_example, __ = _best_of(1, run_per_example)
    clear_caches()
    cold_batched, __ = _best_of(1, run_batched)

    # Warm steady state: caches stay populated between repeats.
    per_example_seconds, per_example_preds = _best_of(repeats, run_per_example)
    PERF.reset()
    batched_seconds, batched_preds = _best_of(repeats, run_batched)
    counters = PERF.snapshot()

    speedup = per_example_seconds / batched_seconds if batched_seconds else 0.0
    return {
        "workload": dataset_id,
        "examples": n,
        "candidates": sum(len(pool) for pool in pools),
        "repeats": repeats,
        "per_example": {
            "seconds": per_example_seconds,
            "examples_per_sec": n / per_example_seconds,
        },
        "batched": {
            "seconds": batched_seconds,
            "examples_per_sec": n / batched_seconds,
        },
        "cold": {
            "per_example_seconds": cold_per_example,
            "batched_seconds": cold_batched,
        },
        "speedup": speedup,
        "predictions_identical": batched_preds == per_example_preds,
        "perf": counters,
    }


# ----------------------------------------------------------------------
# End-to-end pipeline benchmark (shared by ``python -m repro perf
# --pipeline`` and ``benchmarks/bench_perf_pipeline.py``)
# ----------------------------------------------------------------------
def _pipeline_row(args) -> Dict:
    """One benchmark row: full KnowTrans adaptation of one dataset.

    Module-level so the parallel arm can ship it to worker processes;
    imports are deferred because :mod:`repro.perf` must stay
    import-light (the substrate imports it back).
    """
    dataset_id, scale, seed, config, pool_scoring = args
    from .baselines.jellyfish import get_bundle
    from .core.knowtrans import KnowTrans
    from .eval.harness import load_splits

    bundle = get_bundle(
        seed=seed, scale=scale, skc_config=config.skc
    )
    splits = load_splits(dataset_id, seed=seed, scale=scale)
    adapter = KnowTrans(
        bundle, config=config, jobs=1, pool_scoring=pool_scoring
    )
    adapted = adapter.fit(splits)
    akb = adapted.akb_result
    from .core.akb.evaluation import task_metric

    test = splits.test.examples
    predictions = list(adapted.predict_batch(test))
    golds = [ex.answer for ex in test]
    return {
        "dataset": dataset_id,
        "score": task_metric(adapted.task, golds, predictions, test),
        "best_score": akb.best_score,
        "rounds": [
            (r.iteration, r.best_score, r.pool_size, r.error_count)
            for r in akb.rounds
        ],
        "knowledge": [rule.render() for rule in adapted.knowledge.rules],
        "predictions": predictions,
    }


def _pipeline_config():
    """Scoring-heavy bench configuration.

    Light fine-tunes and a large AKB candidate budget keep Eq. 8
    scoring — the component the pooled path accelerates — the dominant
    cost, mirroring the paper-preset regime where the search loop
    re-scores the validation set for every candidate.
    """
    from .core.config import AKBConfig, KnowTransConfig, SKCConfig

    return KnowTransConfig(
        skc=SKCConfig(finetune_epochs=1, patch_epochs=1, batch_size=10),
        akb=AKBConfig(
            pool_size=10,
            iterations=10,
            refinements_per_iteration=8,
            patience=12,
        ),
    )


def run_pipeline_benchmark(
    seed: int = 0,
    jobs: Optional[int] = None,
    dataset_ids: Sequence[str] = ("ed/rayyan", "dc/rayyan"),
    scale: float = 0.45,
) -> Dict:
    """Time the serial per-candidate pipeline vs the parallel+pooled one.

    Both arms run the identical workload — full ``KnowTrans.fit`` plus
    test-set evaluation on each dataset (a shard of the table-bench
    loops):

    * **serial** — the historical path: rows one after another,
      ``pool_scoring=False`` (one engine call per AKB candidate).
    * **parallel** — per-dataset rows fan out over a
      :class:`~repro.runtime.WorkerPool` and every AKB round scores its
      whole candidate pool as one mega-batch per shadow fold.

    The expensive shared state (bundle, SKC patches, dataset splits)
    is prebuilt untimed, and one untimed warmup row populates the
    featurization caches so both arms start from the same steady state.
    Every result field (scores, AKB round history, selected knowledge,
    test predictions) is compared across arms and reported under
    ``results_identical`` — the speedup must come from doing the same
    work faster, never from doing different work.
    """
    import os

    from .baselines.jellyfish import get_bundle
    from .eval.harness import load_splits
    from .runtime import WorkerPool, available_cpus, resolve_jobs

    if jobs is None and not os.environ.get("REPRO_JOBS", "").strip():
        jobs = 4
    jobs = resolve_jobs(jobs)
    config = _pipeline_config()

    # Untimed: shared state every arm reuses.
    bundle = get_bundle(seed=seed, scale=scale, skc_config=config.skc)
    bundle.ensure_patches()
    for dataset_id in dataset_ids:
        load_splits(dataset_id, seed=seed, scale=scale)
    serial_args = [
        (dataset_id, scale, seed, config, False) for dataset_id in dataset_ids
    ]
    parallel_args = [
        (dataset_id, scale, seed, config, True) for dataset_id in dataset_ids
    ]
    for args in serial_args:  # warmup: populate featurization caches
        _pipeline_row(args)

    start = time.perf_counter()
    serial_rows = [_pipeline_row(args) for args in serial_args]
    serial_seconds = time.perf_counter() - start

    pool = WorkerPool(jobs)
    PERF.reset()
    start = time.perf_counter()
    parallel_rows = pool.map(_pipeline_row, parallel_args)
    parallel_seconds = time.perf_counter() - start
    counters = PERF.snapshot()

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    return {
        "workload": list(dataset_ids),
        "scale": scale,
        "requested_jobs": pool.requested_jobs,
        "effective_jobs": pool.effective_jobs,
        "available_cpus": available_cpus(),
        "serial": {"seconds": serial_seconds},
        "parallel": {"seconds": parallel_seconds},
        "speedup": speedup,
        "results_identical": serial_rows == parallel_rows,
        "scores": {row["dataset"]: row["score"] for row in serial_rows},
        "perf": counters,
    }


# ----------------------------------------------------------------------
# Warm-start cache benchmark (shared by ``python -m repro perf --cache``
# and ``benchmarks/bench_perf_cache.py``)
# ----------------------------------------------------------------------
def _forget_process_state() -> None:
    """Drop every in-memory cache, simulating a fresh CLI invocation.

    The artifact store's whole point is surviving process restarts; a
    same-process benchmark has to discard the in-memory layers (bundle
    registry, split cache, base-model registry, shared featurizer
    caches) or the warm arm would measure those instead of the store.
    """
    from .baselines.jellyfish import clear_bundles
    from .eval.harness import clear_split_cache
    from .tinylm.registry import clear_cache
    from .tinylm.tokenizer import HashedFeaturizer

    clear_bundles()
    clear_split_cache()
    clear_cache()
    HashedFeaturizer.clear_shared_caches()


def run_cache_benchmark(
    seed: int = 0,
    dataset_ids: Sequence[str] = ("ed/rayyan",),
    scale: float = 0.45,
    cache_dir: Optional[str] = None,
) -> Dict:
    """Time a cold full pipeline against a store-warm re-run.

    Both arms run the identical workload — bundle construction (base
    pretrain, upstream SFT, stage-1 patches) plus full ``KnowTrans.fit``
    and test evaluation per dataset — from a cold in-memory state.  The
    only difference is the artifact store's contents:

    * **cold** — the store starts empty; every stage computes and
      persists its artifact.
    * **warm** — the same store directory, now populated; deterministic
      stages load their bytes instead of recomputing.

    Every result field (scores, AKB round history, selected knowledge,
    test predictions) is compared across arms under
    ``results_identical`` — the store must change *when* work happens,
    never *what* is computed.
    """
    import tempfile

    from . import store as artifact_store

    config = _pipeline_config()

    def run_arm(store) -> tuple:
        _forget_process_state()
        with artifact_store.using_store(store):
            PERF.reset()
            start = time.perf_counter()
            rows = [
                _pipeline_row((dataset_id, scale, seed, config, True))
                for dataset_id in dataset_ids
            ]
            seconds = time.perf_counter() - start
            counters = PERF.snapshot()
        return rows, seconds, counters

    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-cache-bench-")
        cache_dir = tmp.name
    try:
        store = artifact_store.ArtifactStore(cache_dir)
        cold_rows, cold_seconds, cold_counters = run_arm(store)
        warm_rows, warm_seconds, warm_counters = run_arm(store)
        disk = store.disk_stats()
    finally:
        _forget_process_state()
        if tmp is not None:
            tmp.cleanup()

    def _store_counters(counters: Dict) -> Dict[str, int]:
        raw = counters.get("counters", {})
        return {
            name: int(raw.get("store." + name, 0))
            for name in (
                "hits", "misses", "writes",
                "bytes_read", "bytes_written", "corrupt",
            )
        }

    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    return {
        "workload": list(dataset_ids),
        "scale": scale,
        "cold": {"seconds": cold_seconds, "store": _store_counters(cold_counters)},
        "warm": {"seconds": warm_seconds, "store": _store_counters(warm_counters)},
        "speedup": speedup,
        "results_identical": cold_rows == warm_rows,
        "scores": {row["dataset"]: row["score"] for row in cold_rows},
        "disk": {
            kind: dict(slot) for kind, slot in sorted(disk.items())
        },
        "perf": warm_counters,
    }


def render_cache_benchmark(result: Dict) -> str:
    """Format :func:`run_cache_benchmark` output for the terminal."""
    cold, warm = result["cold"], result["warm"]
    lines = [
        "warm-start cache benchmark — " + ", ".join(result["workload"])
        + f" (scale {result['scale']})",
        f"  cold (empty store):       {cold['seconds']:.3f}s "
        f"({cold['store']['writes']} writes, {cold['store']['hits']} hits)",
        f"  warm (populated store):   {warm['seconds']:.3f}s "
        f"({warm['store']['hits']} hits, {warm['store']['misses']} misses)",
        f"  speedup:                  {result['speedup']:.2f}x",
        f"  results identical:        {result['results_identical']}",
    ]
    for dataset_id, score in result["scores"].items():
        lines.append(f"  {dataset_id:<24} score {score:.2f}")
    for kind, slot in result["disk"].items():
        lines.append(
            f"  stored {kind:<17} {slot['entries']:>4} entries "
            f"{slot['bytes'] / 1e6:>8.2f} MB"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Knowledge-base benchmark (shared by ``python -m repro perf --kb`` and
# ``benchmarks/bench_perf_kb.py``)
# ----------------------------------------------------------------------
def _kb_config():
    """Search-heavy bench configuration with a *live* patience stop.

    A large candidate pool and a deep refinement budget make the
    search loop (candidate scoring + feedback-driven refinement
    generation) the dominant cost; ``patience=2`` keeps the plateau
    stop live, unlike :func:`_pipeline_config` whose ``patience=12``
    deliberately disables early stopping.  The KB's speedup mechanism
    is the trusted-retrieval shortcut: a warm search whose retrieved
    candidate matches everything generated stops after round one,
    skipping the refinement rounds a cold search must grind through
    before its patience expires.
    """
    from .core.config import AKBConfig, KnowTransConfig, SKCConfig

    return KnowTransConfig(
        skc=SKCConfig(finetune_epochs=6, patch_epochs=2),
        akb=AKBConfig(
            pool_size=10,
            iterations=12,
            refinements_per_iteration=16,
            patience=4,
        ),
    )


def _kb_search_setup(dataset_id: str, scale: float, seed: int, config):
    """Untimed shared state for one search arm: model, scorer, splits."""
    from .baselines.jellyfish import get_bundle
    from .core.knowtrans import KnowTrans
    from .eval.harness import load_splits

    bundle = get_bundle(seed=0, scale=scale, skc_config=config.skc)
    splits = load_splits(dataset_id, seed=seed, scale=scale)
    adapter = KnowTrans(bundle, config=config, jobs=1, use_akb=False)
    adapted = adapter.fit(splits)
    scorer = adapter.cross_fit_scorer(splits)
    return adapted, scorer, splits


def _kb_search(adapted, scorer, splits, config, kb=None) -> Dict:
    """One arm: the AKB search itself, with/without an attached KB.

    Only the ``search_knowledge`` call is timed — the test-set quality
    evaluation afterwards is identical in both arms and would dilute
    the measured ratio.
    """
    from .core.akb.optimizer import search_knowledge
    from .knowledge.seed import seed_knowledge
    from .llm.mockgpt import MockGPT
    from .tasks.base import get_task

    start = time.perf_counter()
    result = search_knowledge(
        adapted.model,
        splits.few_shot,
        splits.validation.examples,
        mockgpt=MockGPT(
            temperature=config.akb.temperature, seed=config.seed
        ),
        config=config.akb,
        initial_knowledge=seed_knowledge(splits.task),
        scorer=scorer,
        use_kb=False if kb is None else None,
        kb=kb,
    )
    seconds = time.perf_counter() - start
    task = get_task(splits.task)
    return {
        "seconds": seconds,
        "score": task.evaluate(
            adapted.model, splits.test.examples, result.knowledge,
            splits.test,
        ),
        "best_score": result.best_score,
        "rounds": result.iterations_run,
        "rounds_to_best": result.rounds_to_best,
        "retrieved": result.retrieved,
        "promoted": result.promoted,
        "knowledge": [rule.render() for rule in result.knowledge.rules],
    }


def _kb_promote_worker(args) -> int:
    """Forked worker: promote ``count`` entries, half shared, half own.

    The shared half makes every worker race for the same entry ids
    (exercising the claim fast path); the private half interleaves
    distinct atomic appends.  Module-level so worker pools can ship it.
    """
    root, worker, count = args
    from .knowledge.kb import KnowledgeBase
    from .knowledge.rules import KeyAttribute, Knowledge

    bank = KnowledgeBase(root)
    written = 0
    for index in range(count):
        shared = index % 2 == 0
        tag = f"shared-{index}" if shared else f"w{worker}-{index}"
        knowledge = Knowledge(
            rules=(KeyAttribute(attribute=f"attr_{tag}"),),
            notes=f"bench {tag}",
        )
        entry = bank.promote(
            task="em",
            dataset=f"bench-{tag}",
            fingerprint=f"fp-{tag}",
            vector=[float(index), float(worker if not shared else 0)],
            knowledge=knowledge,
            score=0.5,
        )
        if entry is not None:
            written += 1
    return written


def _kb_concurrent_check(workers: int = 2, count: int = 24) -> Dict:
    """Fork ``workers`` concurrent promoters; verify nothing corrupts."""
    import multiprocessing
    import tempfile

    from .knowledge.kb import KnowledgeBase

    with tempfile.TemporaryDirectory(prefix="repro-kb-conc-") as tmp:
        root = tmp + "/kb"
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(workers) as pool:
            written = pool.map(
                _kb_promote_worker,
                [(root, worker, count) for worker in range(workers)],
            )
        bank = KnowledgeBase(root)
        entries = bank.entries()
        healed = bank.heal()
        compacted = bank.compact()
        after = bank.entries()
        # shared entries dedupe to count/2 ids; private ones are unique
        shared = (count + 1) // 2
        expected = shared + workers * (count - shared)
        return {
            "workers": workers,
            "per_worker": count,
            "written": sum(written),
            "expected": expected,
            "entries": len(entries),
            "corrupt": healed["corrupt_removed"],
            "entries_after_compact": len(after),
            "compacted": compacted["compacted"],
            "ok": (
                len(entries) == expected
                and len(after) == expected
                and healed["corrupt_removed"] == 0
            ),
        }


def run_kb_benchmark(
    seed: int = 0,
    dataset_id: str = "ed/rayyan",
    scale: float = 0.45,
) -> Dict:
    """Time a cold AKB search against a KB-warmed retrieve-then-refine.

    Both arms run the identical search workload on the *target* split
    (``seed+1``) with the same fine-tuned model and cross-fit scorer
    (built untimed) and no artifact store active, so nothing memoises
    across arms.  The only difference is the knowledge base:

    * **cold** — no KB: the pool starts from ``generate_pool`` alone
      and the search grinds refinement rounds until patience expires.
    * **warm** — a KB populated by an untimed search over the *source*
      split (``seed``, same generator, different examples): retrieval
      seeds the pool with already-optimised knowledge and the
      trusted-retrieval shortcut ends the search after round one.

    The source and target datasets share latent generator rules but no
    examples (and therefore different fingerprints — retrieval's
    same-dataset self-exclusion does not apply).  Quality must not
    regress: the warm arm's test score and best validation score are
    gated to be no worse than cold's.  A forked concurrent-promotion
    check asserts the bank survives parallel writers without a single
    corrupt entry.
    """
    import tempfile

    from . import store as artifact_store
    from .knowledge.kb import KnowledgeBase

    config = _kb_config()
    source_seed, target_seed = seed, seed + 1

    with tempfile.TemporaryDirectory(prefix="repro-kb-bench-") as tmp:
        bank = KnowledgeBase(tmp + "/kb")
        with artifact_store.using_store(None):
            # Untimed: model + scorer per split, and a warmup search on
            # the target so featurization caches are hot for both arms.
            target_setup = _kb_search_setup(
                dataset_id, scale, target_seed, config
            )
            source_setup = _kb_search_setup(
                dataset_id, scale, source_seed, config
            )
            _kb_search(*target_setup, config)

            PERF.reset()
            cold = _kb_search(*target_setup, config)
            cold_seconds = cold["seconds"]

            # Untimed: populate the bank from the source split, then
            # warm the featurization caches for the retrieved
            # candidates' prompts too — the cold arm's candidates were
            # all warmed by the warmup search above, so the warm arm
            # must not be the only one paying fresh tokenisation.
            source = _kb_search(*source_setup, config, kb=bank)
            _kb_search(*target_setup, config, kb=bank)

            warm = _kb_search(*target_setup, config, kb=bank)
            warm_seconds = warm["seconds"]
            counters = PERF.snapshot()
        kb_stats = bank.stats()

    concurrent = _kb_concurrent_check()
    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    rounds_ratio = (
        cold["rounds"] / warm["rounds"] if warm["rounds"] else 0.0
    )
    return {
        "workload": {
            "dataset": dataset_id,
            "source_seed": source_seed,
            "target_seed": target_seed,
        },
        "scale": scale,
        "cold": {"seconds": cold_seconds, **cold},
        "warm": {"seconds": warm_seconds, **warm},
        "source": source,
        "speedup": speedup,
        "rounds_ratio": rounds_ratio,
        "retrieved": warm["retrieved"],
        "quality_no_worse": (
            warm["score"] >= cold["score"]
            and warm["best_score"] >= cold["best_score"]
        ),
        "concurrent": concurrent,
        "kb": kb_stats,
        "perf": counters,
    }


def render_kb_benchmark(result: Dict) -> str:
    """Format :func:`run_kb_benchmark` output for the terminal."""
    cold, warm = result["cold"], result["warm"]
    workload = result["workload"]
    concurrent = result["concurrent"]
    lines = [
        "knowledge-base benchmark — "
        f"{workload['dataset']} (source seed {workload['source_seed']} "
        f"-> target seed {workload['target_seed']}, "
        f"scale {result['scale']})",
        f"  cold (no KB):        {cold['seconds']:.3f}s, "
        f"{cold['rounds']} rounds, best at round "
        f"{cold['rounds_to_best']}, best score {cold['best_score']:.3f}",
        f"  warm (KB-seeded):    {warm['seconds']:.3f}s, "
        f"{warm['rounds']} rounds, best at round "
        f"{warm['rounds_to_best']}, best score {warm['best_score']:.3f}",
        f"  retrieved/promoted:  {warm['retrieved']} retrieved, "
        f"{warm['promoted']} promoted back",
        f"  speedup:             {result['speedup']:.2f}x wall-clock, "
        f"{result['rounds_ratio']:.2f}x fewer search rounds",
        f"  quality no worse:    {result['quality_no_worse']} "
        f"(test {cold['score']:.2f} -> {warm['score']:.2f})",
        f"  concurrent writers:  {concurrent['workers']} forks, "
        f"{concurrent['entries']} entries (expected "
        f"{concurrent['expected']}), {concurrent['corrupt']} corrupt",
        f"  bank:                {result['kb']['entries']} entries, "
        f"{result['kb']['bytes'] / 1e3:.1f} kB",
    ]
    return "\n".join(lines)


def render_pipeline_benchmark(result: Dict) -> str:
    """Format :func:`run_pipeline_benchmark` output for the terminal."""
    lines = [
        "pipeline benchmark — " + ", ".join(result["workload"])
        + f" (scale {result['scale']})",
        f"  serial (per-candidate):   {result['serial']['seconds']:.3f}s",
        f"  parallel+pooled:          {result['parallel']['seconds']:.3f}s",
        f"  speedup:                  {result['speedup']:.2f}x",
        f"  jobs: requested {result['requested_jobs']}, effective "
        f"{result['effective_jobs']} ({result['available_cpus']} cpus)",
        f"  results identical:        {result['results_identical']}",
    ]
    for dataset_id, score in result["scores"].items():
        lines.append(f"  {dataset_id:<24} score {score:.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Rank-space training benchmark (shared by ``python -m repro perf
# --train`` and ``benchmarks/bench_perf_train.py``)
# ----------------------------------------------------------------------
def run_train_benchmark(
    dataset_id: str = "em/abt_buy",
    count: int = 160,
    seed: int = 0,
    repeats: int = 3,
    n_patches: int = 12,
) -> Dict:
    """Time a frozen-backbone SKC stage-3 fit: dense vs rank-space.

    The workload mirrors stage 3 exactly — a ``PatchFusion`` of
    ``n_patches`` upstream patches plus a fresh shared patch attached to
    a frozen backbone, fine-tuned on the few-shot split with the paper's
    stage-3 hyperparameters.  Three arms run the identical fit from the
    identical init:

    * **dense** — ``rank_space=False``: every step materialises the
      effective weights and routes gradients through dense ``(out, in)``
      matrices (the historical path, minus the backward's duplicate
      ``encoder.W2`` build which the version memo now removes).
    * **rank** — ``rank_space=None`` (production auto-selection): frozen
      projections cached once, every step in rank space.  Timed with the
      perf registry captured, so the gate can assert the fit recorded
      zero ``model.weight_materializations``.
    * **exact oracle** — ``REPRO_EXACT_WEIGHTS=1``: disables every
      fast-path branch (memo, λ-gradient identity, rank engine),
      restoring the legacy dense computation bit-for-bit; run twice to
      confirm determinism and compared against the dense arm.

    Parity is reported, not assumed: per-step losses (rtol 1e-9), final
    λ vectors, downstream test metric and argmax predictions must all
    agree across arms — the speedup must come from associating the same
    math differently, never from doing different math.
    """
    import os

    from .core.akb.evaluation import task_metric
    from .core.config import SKCConfig
    from .core.skc.finetune import few_shot_finetune
    from .core.skc.fusion import attach_fusion
    from .data import generators
    from .data.splits import split_dataset
    from .knowledge.seed import seed_knowledge
    from .tasks.base import get_task
    from .tinylm.linalg import rng_for
    from .tinylm.lora import LoRAPatch
    from .tinylm.model import ModelConfig, ScoringLM

    dataset = generators.build(dataset_id, count=count, seed=seed)
    splits = split_dataset(dataset, few_shot=20, seed=seed)
    few_shot = splits.few_shot
    test = list(splits.test.examples)
    task = get_task(dataset.task)
    knowledge = seed_knowledge(dataset.task)
    config = SKCConfig(seed=seed)

    # Fit cost is independent of the backbone's weight values, so an
    # untrained upstream analogue measures the same hot path without
    # paying for pretraining; the upstream patches get seeded non-zero
    # ``A`` factors so they contribute like trained knowledge patches.
    upstream = ScoringLM(ModelConfig(name="bench-train", seed=seed))
    shapes = upstream.config.target_shapes()
    patches = []
    for i in range(n_patches):
        patch = LoRAPatch(
            f"bench-up{i:02d}",
            shapes,
            rank=config.lora_rank,
            alpha=config.lora_alpha,
            seed=seed + i,
        )
        rng = rng_for(seed, "bench-train", patch.name)
        for name in patch.A:
            patch.A[name] = rng.normal(0.0, 0.02, patch.A[name].shape)
        patches.append(patch)

    def run_fit(rank_space):
        model, fusion = attach_fusion(upstream, patches, config, name="bench")
        report = few_shot_finetune(
            model, few_shot, config, knowledge, rank_space=rank_space
        )
        return model, fusion, report

    def evaluate(model):
        prompts = [task.prompt(ex, knowledge) for ex in test]
        pools = [task.candidates(ex, knowledge, dataset) for ex in test]
        winners = model.predict_batch(prompts, pools)
        predictions = [pools[i][j] for i, j in enumerate(winners)]
        golds = [ex.answer for ex in test]
        return task_metric(task, golds, predictions, test), predictions

    run_fit(False)  # untimed warmup: featurization caches for both arms

    dense_seconds, dense_out = _best_of(repeats, lambda: run_fit(False))
    PERF.reset()
    rank_seconds, rank_out = _best_of(repeats, lambda: run_fit(None))
    counters = PERF.snapshot()

    dense_model, dense_fusion, dense_report = dense_out
    rank_model, rank_fusion, rank_report = rank_out
    dense_losses = dense_report.step_losses
    rank_losses = rank_report.step_losses
    loss_err = max(
        (
            abs(a - b) / max(abs(a), 1e-30)
            for a, b in zip(dense_losses, rank_losses)
        ),
        default=float("inf") if len(dense_losses) != len(rank_losses) else 0.0,
    )
    lambda_diff = float(
        max(abs(dense_fusion.lambdas - rank_fusion.lambdas), default=0.0)
    )

    dense_metric, dense_preds = evaluate(dense_model)
    rank_metric, rank_preds = evaluate(rank_model)

    # Exact-weights oracle: legacy dense computation, run twice.
    previous = os.environ.get("REPRO_EXACT_WEIGHTS")
    os.environ["REPRO_EXACT_WEIGHTS"] = "1"
    try:
        __, oracle_fusion, oracle_report = run_fit(None)
        __, oracle_fusion2, oracle_report2 = run_fit(None)
    finally:
        if previous is None:
            del os.environ["REPRO_EXACT_WEIGHTS"]
        else:
            os.environ["REPRO_EXACT_WEIGHTS"] = previous
    assert not oracle_report.rank_space
    oracle_deterministic = bool(
        oracle_report.step_losses == oracle_report2.step_losses
        and (oracle_fusion.lambdas == oracle_fusion2.lambdas).all()
    )
    oracle_err = max(
        (
            abs(a - b) / max(abs(a), 1e-30)
            for a, b in zip(dense_losses, oracle_report.step_losses)
        ),
        default=float("inf")
        if len(dense_losses) != len(oracle_report.step_losses)
        else 0.0,
    )

    steps = len(rank_losses)
    speedup = dense_seconds / rank_seconds if rank_seconds else 0.0
    return {
        "workload": dataset_id,
        "few_shot_examples": len(few_shot.examples),
        "test_examples": len(test),
        "patches": n_patches,
        "epochs": config.finetune_epochs,
        "steps": steps,
        "repeats": repeats,
        "dense": {
            "seconds": dense_seconds,
            "steps_per_sec": steps / dense_seconds if dense_seconds else 0.0,
        },
        "rank": {
            "seconds": rank_seconds,
            "steps_per_sec": steps / rank_seconds if rank_seconds else 0.0,
            "engaged": bool(rank_report.rank_space),
        },
        "speedup": speedup,
        "max_step_loss_rel_err": loss_err,
        "losses_match": loss_err <= 1e-9,
        "lambda_max_abs_diff": lambda_diff,
        "metrics": {"dense": dense_metric, "rank": rank_metric},
        "metrics_identical": dense_metric == rank_metric,
        "predictions_identical": dense_preds == rank_preds,
        "exact_oracle": {
            "deterministic": bool(oracle_deterministic),
            "max_loss_rel_err_vs_dense": oracle_err,
        },
        "weight_materializations": int(
            counters["counters"].get("model.weight_materializations", 0)
        ),
        "rank_space_steps": int(
            counters["counters"].get("train.rank_space_steps", 0)
        ),
        "perf": counters,
    }


def render_train_benchmark(result: Dict) -> str:
    """Format :func:`run_train_benchmark` output for the terminal."""
    lines = [
        f"rank-space training benchmark — {result['workload']} "
        f"({result['patches']} fused patches, {result['steps']} steps, "
        f"best of {result['repeats']})",
        f"  dense fit:    {result['dense']['seconds']:.3f}s "
        f"({result['dense']['steps_per_sec']:.0f} steps/s)",
        f"  rank-space:   {result['rank']['seconds']:.3f}s "
        f"({result['rank']['steps_per_sec']:.0f} steps/s, "
        f"engaged={result['rank']['engaged']})",
        f"  speedup:      {result['speedup']:.2f}x",
        f"  step losses:  max rel err {result['max_step_loss_rel_err']:.2e} "
        f"(match={result['losses_match']})",
        f"  final λ:      max abs diff {result['lambda_max_abs_diff']:.2e}",
        f"  test metric:  dense {result['metrics']['dense']:.4f} / "
        f"rank {result['metrics']['rank']:.4f} "
        f"(identical={result['metrics_identical']}, predictions "
        f"identical={result['predictions_identical']})",
        f"  exact oracle: deterministic="
        f"{result['exact_oracle']['deterministic']}, vs dense rel err "
        f"{result['exact_oracle']['max_loss_rel_err_vs_dense']:.2e}",
        f"  materializations during rank fit: "
        f"{result['weight_materializations']} "
        f"(rank-space steps: {result['rank_space_steps']})",
    ]
    return "\n".join(lines)


def render_benchmark(result: Dict) -> str:
    """Format :func:`run_inference_benchmark` output for the terminal."""
    lines = [
        f"batched inference benchmark — {result['workload']} "
        f"({result['examples']} examples, {result['candidates']} candidates)",
        f"  per-example: {result['per_example']['seconds']:.4f}s "
        f"({result['per_example']['examples_per_sec']:.0f} ex/s)",
        f"  batched:     {result['batched']['seconds']:.4f}s "
        f"({result['batched']['examples_per_sec']:.0f} ex/s)",
        f"  speedup:     {result['speedup']:.1f}x (warm caches, best of "
        f"{result['repeats']})",
        f"  cold pass:   per-example {result['cold']['per_example_seconds']:.4f}s, "
        f"batched {result['cold']['batched_seconds']:.4f}s",
        f"  predictions identical: {result['predictions_identical']}",
    ]
    return "\n".join(lines)

def _latency_percentile(latencies: List[float], q: float) -> float:
    """Nearest-rank percentile of a latency sample (seconds in, ms out)."""
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index] * 1000.0


def run_serve_benchmark(
    seed: int = 0,
    clients: int = 9,
    requests: int = 36,
    prompts_per_request: int = 4,
    tenants: int = 2,
    n_patches: int = 16,
    rank: int = 8,
    max_batch: int = 64,
    max_wait_ms: float = 25.0,
    repeats: int = 3,
) -> Dict:
    """Sequential per-request dispatch vs continuous batching, measured
    through the real server: sockets, event loop, scheduler and all.

    One multi-tenant registry (``tenants`` fused specialists sharing a
    single backbone) serves the identical tenant-alternating workload
    twice:

    * **sequential** — ``max_batch=1`` and a single closed-loop client:
      requests dispatch one at a time in workload order, so the
      tenant-alternating stream pays a full adapter swap (the fusion
      delta materialisation, the dominant cost on this CPU) on nearly
      every dispatch — the offline per-request semantics, through the
      wire;
    * **batched** — ``clients`` concurrent closed-loop clients against
      the production scheduler, which coalesces the in-flight requests,
      groups them by tenant, and pays one swap per tenant per batch
      plus a single ``predict_batch`` per group.

    Clients are closed-loop threads (request ``i`` belongs to client
    ``i % clients``).  Latency percentiles are client-observed round
    trips; queueing means the two arms' latencies are not directly
    comparable — the gate's latency bounds apply to the batched arm.
    An offline oracle (per-request attach + ``predict_batch``) is
    computed first — it doubles as the warm-up for the featurization
    caches — and both arms must reproduce it bit-for-bit: batching may
    only ever change *when* a prompt is scored, never its result.

    Each arm runs ``repeats`` times against a fresh server (best run
    kept, the usual best-of protocol); predictions must match the
    oracle on *every* repeat, not just the fastest one.
    """
    from .serve import (
        ServeClient,
        ServerThread,
        build_demo_registry,
        build_workload,
        drive_clients,
        offline_reference,
    )

    registry = build_demo_registry(
        tenants=tenants, seed=seed, n_patches=n_patches, rank=rank
    )
    workload = build_workload(
        registry,
        requests=requests,
        prompts_per_request=prompts_per_request,
        seed=seed,
    )
    offline = offline_reference(registry, workload)

    def run_arm(arm_max_batch: int, arm_max_wait_ms: float, arm_clients: int):
        with ServerThread(
            registry, max_batch=arm_max_batch, max_wait_ms=arm_max_wait_ms
        ) as server:
            start = time.perf_counter()
            responses, latencies = drive_clients(
                "127.0.0.1", server.port, workload, clients=arm_clients
            )
            seconds = time.perf_counter() - start
            with ServeClient("127.0.0.1", server.port) as probe:
                stats = probe.stats()
        predictions = [
            response.get("predictions") if response else None
            for response in responses
        ]
        arm = {
            "seconds": seconds,
            "requests_per_sec": len(workload) / seconds,
            "p50_ms": _latency_percentile(latencies, 0.50),
            "p99_ms": _latency_percentile(latencies, 0.99),
            "batches": stats["batches"],
            "mean_batch_size": stats["mean_batch_size"],
            "adapter_swaps": stats["adapter_swaps"],
            "all_ok": all(r is not None and r.get("ok") for r in responses),
        }
        return arm, predictions

    def best_arm(arm_max_batch: int, arm_max_wait_ms: float, arm_clients: int):
        best = None
        identical = True
        for __ in range(max(1, repeats)):
            arm, predictions = run_arm(
                arm_max_batch, arm_max_wait_ms, arm_clients
            )
            identical = identical and predictions == offline
            if best is None or arm["seconds"] < best["seconds"]:
                best = arm
        return best, identical

    # One untimed warm lap through the socket/event-loop path so neither
    # timed arm pays first-connection and interpreter warm-up costs.
    with ServerThread(
        registry, max_batch=max_batch, max_wait_ms=max_wait_ms
    ) as server:
        drive_clients(
            "127.0.0.1",
            server.port,
            workload[: min(len(workload), clients)],
            clients=clients,
        )

    sequential, sequential_identical = best_arm(1, 0.0, 1)
    batched, batched_identical = best_arm(max_batch, max_wait_ms, clients)
    return {
        "workload": "em/abt_buy",
        "requests": len(workload),
        "prompts_per_request": prompts_per_request,
        "clients": clients,
        "tenants": tenants,
        "patches": n_patches,
        "rank": rank,
        "max_batch": max_batch,
        "max_wait_ms": max_wait_ms,
        "repeats": repeats,
        "sequential": sequential,
        "batched": batched,
        "speedup": sequential["seconds"] / batched["seconds"],
        "predictions_identical": bool(
            sequential_identical and batched_identical
        ),
        "coalesced": batched["mean_batch_size"] > 1.5,
    }


def render_serve_benchmark(result: Dict) -> str:
    """Format :func:`run_serve_benchmark` output for the terminal."""
    lines = [
        f"serve benchmark — {result['workload']} "
        f"({result['requests']} requests x "
        f"{result['prompts_per_request']} prompts, {result['clients']} "
        f"clients, {result['tenants']} tenants, {result['patches']} fused "
        f"patches, best of {result['repeats']})",
        f"  sequential: {result['sequential']['seconds']:.3f}s "
        f"({result['sequential']['requests_per_sec']:.1f} req/s, "
        f"p50 {result['sequential']['p50_ms']:.1f} ms, "
        f"p99 {result['sequential']['p99_ms']:.1f} ms, "
        f"{result['sequential']['adapter_swaps']} swaps)",
        f"  batched:    {result['batched']['seconds']:.3f}s "
        f"({result['batched']['requests_per_sec']:.1f} req/s, "
        f"p50 {result['batched']['p50_ms']:.1f} ms, "
        f"p99 {result['batched']['p99_ms']:.1f} ms, "
        f"{result['batched']['adapter_swaps']} swaps, mean batch "
        f"{result['batched']['mean_batch_size']:.1f})",
        f"  speedup:    {result['speedup']:.2f}x",
        f"  predictions identical: {result['predictions_identical']}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Zero-copy shared-memory benchmark (shared by ``python -m repro perf
# --shm`` and ``benchmarks/bench_perf_shm.py``)
# ----------------------------------------------------------------------
def _shm_workload(seed: int, tasks: int, rows: int, cols: int) -> List[Dict]:
    """Deterministic array-heavy tasks shaped like AKB pool scoring.

    Every item shares one large featurized candidate pool (the frozen
    hot-array pattern: pickle must copy it per task, the arena places
    it once and every blob references the same segment) plus a small
    per-task scoring vector; the per-task compute is one matmul and a
    top-k, so wall clock is dominated by how arguments cross the
    process boundary.
    """
    from .tinylm.linalg import rng_for

    pool = rng_for(seed, "shm-bench-pool").standard_normal((rows, cols))
    items = []
    for index in range(tasks):
        rng = rng_for(seed, f"shm-bench-{index}")
        items.append(
            {
                "features": pool,
                "weights": rng.standard_normal(cols),
                "k": 8,
            }
        )
    return items


def _shm_score_task(item: Dict) -> Dict:
    """Score one candidate pool, returning compact index/score arrays."""
    import numpy as np

    scores = item["features"] @ item["weights"]
    order = np.argsort(-scores, kind="stable")[: item["k"]]
    return {"indices": order, "scores": scores[order]}


def _shm_crash_task(item: Dict) -> Dict:
    """Benchmark crash injection: hard-kill the worker mid-task."""
    import os

    if item.get("crash"):
        os._exit(13)
    return _shm_score_task(item)


def _repro_segments() -> List[str]:
    """Names of live ``repro-*`` shared-memory segments (tmpfs view)."""
    import pathlib

    shm_root = pathlib.Path("/dev/shm")
    if not shm_root.is_dir():  # pragma: no cover - non-Linux fallback
        return []
    return sorted(p.name for p in shm_root.glob("*repro-*"))


def _shm_rows_identical(a: Sequence[Dict], b: Sequence[Dict]) -> bool:
    import numpy as np

    return len(a) == len(b) and all(
        np.array_equal(x["indices"], y["indices"])
        and np.array_equal(x["scores"], y["scores"])
        for x, y in zip(a, b)
    )


def run_shm_benchmark(
    seed: int = 0,
    jobs: int = 8,
    tasks: int = 24,
    rows: int = 600,
    cols: int = 400,
    repeats: int = 3,
) -> Dict:
    """Zero-copy shm transport vs the pickle transport, plus invariants.

    Three arms run the identical workload: in-process serial (the
    determinism oracle), the legacy pickle pool, and the shm pool —
    both pools at ``jobs`` forced workers (``clamp=False``; on small
    CI machines the speedup comes from eliminating serialization, not
    from extra cores).  The result also records a 2-shard
    claim/merge round trip over the same workload, segment-leak checks
    after a clean exit and after an injected worker crash, and the
    payload accounting both transports reported.
    """
    import json
    import tempfile

    import numpy as np

    from . import shard as sharding
    from .runtime import WorkerPool, live_segments, shm_available

    items = _shm_workload(seed, tasks, rows, cols)
    pickle_payload = sum(
        item["features"].nbytes + item["weights"].nbytes for item in items
    )

    def timed_arm(pool: WorkerPool):
        def run():
            return pool.map(_shm_score_task, items)

        before = {
            key: PERF.counter(key)
            for key in (
                "runtime.payload_bytes",
                "runtime.shm_payload_bytes",
                "runtime.result_bytes",
            )
        }
        seconds, arm_results = _best_of(repeats, run)
        counters = {
            key.split(".", 1)[1]: (PERF.counter(key) - start) // max(repeats, 1)
            for key, start in before.items()
        }
        return seconds, arm_results, counters

    serial_seconds, serial_results = _best_of(
        repeats, lambda: WorkerPool(jobs=1).map(_shm_score_task, items)
    )
    pickle_seconds, pickle_results, pickle_counters = timed_arm(
        WorkerPool(jobs=jobs, clamp=False, payload_mode="pickle")
    )
    shm_seconds, shm_results, shm_counters = timed_arm(
        WorkerPool(jobs=jobs, clamp=False, payload_mode="shm")
    )

    # 2-shard claim/merge round trip: partition the same workload
    # across two coordinated "shards", merge, and compare to serial.
    cell_ids = [f"bench/task{index:02d}" for index in range(len(items))]
    by_id = dict(zip(cell_ids, items))

    def shard_compute(cell_id: str) -> Dict:
        row = _shm_score_task(by_id[cell_id])
        return {
            "dataset": cell_id,
            "indices": [int(v) for v in row["indices"]],
            "scores": [float(v) for v in row["scores"]],
        }

    with tempfile.TemporaryDirectory(prefix="repro-shm-bench-") as grid_dir:
        for index in (1, 2):
            sharding.run_adapt_shard(
                cell_ids,
                sharding.ShardSpec(index=index, total=2),
                grid_dir,
                shard_compute,
            )
        merged = sharding.merge_shards(grid_dir)
    merged_rows = [
        {
            "indices": np.asarray(row["indices"]),
            "scores": np.asarray(row["scores"]),
        }
        for row in merged["rows"]
        if row.get("dataset") in by_id
    ]
    sharded_identical = _shm_rows_identical(serial_results, merged_rows)

    leaked = sorted(live_segments()) + _repro_segments()

    # Injected crash: one task hard-kills its worker; the pool must
    # surface the failure and the parent must still reclaim every
    # segment it owns.
    crash_items = [dict(items[0]), {**items[1], "crash": True}]
    crash_raised = False
    try:
        WorkerPool(jobs=2, clamp=False, payload_mode="shm").map(
            _shm_crash_task, crash_items
        )
    except Exception:
        crash_raised = True
    crash_leaked = sorted(live_segments()) + _repro_segments()

    return {
        "workload": "candidate pool scoring",
        "tasks": tasks,
        "rows": rows,
        "cols": cols,
        "jobs": jobs,
        "repeats": repeats,
        "shm_available": shm_available(),
        "array_bytes": int(pickle_payload),
        "serial": {"seconds": serial_seconds},
        "pickle": {
            "seconds": pickle_seconds,
            "payload_bytes": int(pickle_counters["payload_bytes"]),
        },
        "shm": {
            "seconds": shm_seconds,
            "payload_bytes": int(shm_counters["payload_bytes"]),
            "shm_payload_bytes": int(shm_counters["shm_payload_bytes"]),
            "result_bytes": int(shm_counters["result_bytes"]),
        },
        "speedup": pickle_seconds / shm_seconds,
        "payload_ratio": (
            shm_counters["payload_bytes"]
            / max(pickle_counters["payload_bytes"], 1)
        ),
        "predictions_identical": bool(
            _shm_rows_identical(serial_results, pickle_results)
            and _shm_rows_identical(serial_results, shm_results)
        ),
        "sharded_identical": bool(sharded_identical),
        "leaked_segments": leaked,
        "crash_raised": crash_raised,
        "crash_leaked_segments": crash_leaked,
    }


def render_shm_benchmark(result: Dict) -> str:
    """Format :func:`run_shm_benchmark` output for the terminal."""
    lines = [
        f"shm benchmark — {result['workload']} "
        f"({result['tasks']} tasks x {result['rows']}x{result['cols']} "
        f"f64, {result['jobs']} forced workers, best of "
        f"{result['repeats']})",
        f"  serial:  {result['serial']['seconds']:.3f}s",
        f"  pickle:  {result['pickle']['seconds']:.3f}s "
        f"({result['pickle']['payload_bytes'] / 1e6:.2f} MB pickled "
        f"per run)",
        f"  shm:     {result['shm']['seconds']:.3f}s "
        f"({result['shm']['payload_bytes'] / 1e3:.2f} kB skeletons + "
        f"{result['shm']['shm_payload_bytes'] / 1e6:.2f} MB in "
        f"segments, {result['shm']['result_bytes'] / 1e3:.2f} kB "
        f"results)",
        f"  speedup: {result['speedup']:.2f}x  "
        f"payload ratio: {result['payload_ratio']:.4%}",
        f"  predictions identical: {result['predictions_identical']}  "
        f"2-shard merge identical: {result['sharded_identical']}",
        f"  leaked segments: {len(result['leaked_segments'])} clean / "
        f"{len(result['crash_leaked_segments'])} after crash "
        f"(crash surfaced: {result['crash_raised']})",
    ]
    return "\n".join(lines)

# ----------------------------------------------------------------------
# Large-workload benchmark: the ~100x table-QA generator (shared by
# ``python -m repro perf --workload`` and
# ``benchmarks/bench_perf_workload.py``)
# ----------------------------------------------------------------------
def run_workload_benchmark(
    count: int = 50_000,
    eval_count: int = 400,
    seed: int = 0,
    repeats: int = 3,
) -> Dict:
    """Stress the stack with the ``qa/products`` large-scale generator.

    Three things are measured/verified on one build of the ~100x table-QA
    dataset (``count`` rows; the paper preset uses 50k — about 100x the
    discriminative generators' base sizes):

    * **generation + profiling cost** — rows/sec of the generator and of
      dataset profiling at volume, reported for trend tracking;
    * **batched engine at large pools** — per-example vs batched
      prediction over an ``eval_count``-example slice whose candidate
      pools are full column vocabularies (mean pool size is gated to be
      ≥ 100 — roughly an order of magnitude past the discriminative
      shortlist cap); the ≥3x warm speedup floor must hold here exactly
      as it does on the small-pool inference gate;
    * **KB profile retrieval** — both QA datasets are profiled and
      promoted into a throwaway :class:`~repro.knowledge.kb.
      KnowledgeBase`; retrieval with ``qa/products``'s own vector (self
      excluded by fingerprint) must surface the sibling QA entry, proving
      the 42-dim profile layout and cosine index absorb the new family.
    """
    import tempfile

    from . import store as artifact_store
    from .data import generators
    from .data.profiling import profile_dataset
    from .knowledge.kb import KnowledgeBase, profile_vector_for
    from .knowledge.seed import seed_knowledge
    from .tasks.base import get_task
    from .tinylm.model import ModelConfig, ScoringLM
    from .tinylm.tokenizer import HashedFeaturizer

    build_start = time.perf_counter()
    dataset = generators.build("qa/products", count=count, seed=seed)
    build_seconds = time.perf_counter() - build_start

    profile_start = time.perf_counter()
    profile_dataset(dataset)
    profile_seconds = time.perf_counter() - profile_start

    task = get_task(dataset.task)
    knowledge = seed_knowledge(dataset.task)
    model = ScoringLM(ModelConfig(name="bench", seed=seed))

    examples = dataset.examples[: min(eval_count, len(dataset.examples))]
    prompts = [task.prompt(ex, knowledge) for ex in examples]
    pools = [task.candidates(ex, knowledge, dataset) for ex in examples]
    n = len(examples)
    mean_pool = sum(len(pool) for pool in pools) / n if n else 0.0

    def clear_caches() -> None:
        HashedFeaturizer.clear_shared_caches()
        model._candidate_cache.clear()
        model._prompt_cache.clear()

    def run_per_example() -> List[int]:
        return [model.predict(p, pool) for p, pool in zip(prompts, pools)]

    def run_batched() -> List[int]:
        return model.predict_batch(prompts, pools)

    clear_caches()
    cold_per_example, __ = _best_of(1, run_per_example)
    clear_caches()
    cold_batched, __ = _best_of(1, run_batched)

    per_example_seconds, per_example_preds = _best_of(repeats, run_per_example)
    PERF.reset()
    batched_seconds, batched_preds = _best_of(repeats, run_batched)
    counters = PERF.snapshot()
    speedup = per_example_seconds / batched_seconds if batched_seconds else 0.0

    # KB retrieval over the new QA profiles, in a throwaway bank.
    with tempfile.TemporaryDirectory(prefix="repro-workload-bench-") as tmp:
        bank = KnowledgeBase(tmp + "/kb")
        with artifact_store.using_store(None):
            beers = generators.build("qa/beers", seed=seed)
            vectors = {}
            for qa_dataset in (dataset, beers):
                vector, fingerprint = profile_vector_for(qa_dataset)
                vectors[qa_dataset.name] = (vector, fingerprint)
                bank.promote(
                    task="qa",
                    dataset=qa_dataset.name,
                    fingerprint=fingerprint,
                    vector=vector,
                    knowledge=knowledge,
                    score=0.0,
                )
            vector, fingerprint = vectors[dataset.name]
            retrieve_start = time.perf_counter()
            hits = bank.retrieve(
                vector, task="qa", k=3, exclude_fingerprint=fingerprint
            )
            retrieve_seconds = time.perf_counter() - retrieve_start
        kb_stats = bank.stats()

    return {
        "workload": "qa/products",
        "rows": len(dataset),
        "build": {
            "seconds": build_seconds,
            "rows_per_sec": len(dataset) / build_seconds,
        },
        "profile_seconds": profile_seconds,
        "examples": n,
        "mean_pool_size": mean_pool,
        "candidates": sum(len(pool) for pool in pools),
        "repeats": repeats,
        "per_example": {
            "seconds": per_example_seconds,
            "examples_per_sec": n / per_example_seconds,
        },
        "batched": {
            "seconds": batched_seconds,
            "examples_per_sec": n / batched_seconds,
        },
        "cold": {
            "per_example_seconds": cold_per_example,
            "batched_seconds": cold_batched,
        },
        "speedup": speedup,
        "predictions_identical": batched_preds == per_example_preds,
        "kb": {
            "entries": kb_stats["entries"],
            "retrieved": len(hits),
            "retrieved_datasets": [entry.dataset for __sim, entry in hits],
            "retrieve_seconds": retrieve_seconds,
        },
        "perf": counters,
    }


def render_workload_benchmark(result: Dict) -> str:
    """Format :func:`run_workload_benchmark` output for the terminal."""
    kb = result["kb"]
    lines = [
        f"workload benchmark — {result['workload']} "
        f"({result['rows']} rows, preset {result.get('preset', 'ad-hoc')})",
        f"  generation:          {result['build']['seconds']:.3f}s "
        f"({result['build']['rows_per_sec']:.0f} rows/sec), "
        f"profiling {result['profile_seconds']:.3f}s",
        f"  eval slice:          {result['examples']} examples, "
        f"mean pool {result['mean_pool_size']:.0f} candidates",
        f"  per-example (warm):  {result['per_example']['seconds']:.3f}s "
        f"({result['per_example']['examples_per_sec']:.0f} ex/sec)",
        f"  batched (warm):      {result['batched']['seconds']:.3f}s "
        f"({result['batched']['examples_per_sec']:.0f} ex/sec)",
        f"  speedup:             {result['speedup']:.2f}x "
        f"(identical: {result['predictions_identical']})",
        f"  kb retrieval:        {kb['retrieved']} hits "
        f"{kb['retrieved_datasets']} from {kb['entries']} entries "
        f"in {kb['retrieve_seconds'] * 1e3:.1f}ms",
    ]
    return "\n".join(lines)
