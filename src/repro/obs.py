"""Structured observability — hierarchical span tracing plus metrics.

Four perf PRs made the pipeline fast but opaque: the only window into a
run was ad-hoc prints and per-benchmark JSON blobs.  This module is the
cross-cutting answer — one process-wide :class:`Tracer` that every
layer (tinylm trainer, inference engine, artifact store, SKC stages,
AKB optimiser, eval harness) reports into:

* **Spans** — hierarchical wall-clock regions opened with
  :func:`span` (a context manager) or :func:`traced` (a decorator).
  Nesting is tracked with a per-process stack, so a span's parent is
  whatever span was open when it started.
* **Metrics** — :func:`counter` (monotonic sums), :func:`gauge`
  (sampled value series, e.g. λ trajectories) and :func:`histogram`
  (order-insensitive count/total/min/max aggregates, e.g. batch
  sizes).  Metrics are keyed by name plus their keyword attributes, so
  ``counter("store.hit", kind="patch")`` rolls up per artifact kind.

Zero-overhead default
---------------------
Tracing is **off** unless :func:`configure` installs a tracer (the CLI
does, for ``--trace PATH`` / ``REPRO_TRACE``).  Disabled, every hook is
a module-global ``None`` check: :func:`span` returns a shared no-op
context manager and the metric functions return immediately, so the
perf gates run unchanged — nothing is buffered and no file is written.

Fork-aware merging
------------------
:class:`~repro.runtime.WorkerPool` workers inherit the parent's tracer
through ``fork`` but cannot write into the parent's buffers.  Each pool
task therefore runs inside a shim that calls :func:`worker_reset`
(clear the child-local buffers, refresh the pid so span ids stay
unique) and ships :func:`worker_snapshot` home with the result; the
parent's :func:`merge_worker` folds events back in, re-parenting each
child's root spans under the span that was open at the ``map`` call —
exactly where the task would have nested had it run serially.  Under
that contract serial and parallel runs aggregate to identical metrics
and isomorphic span trees.

Trace files
-----------
A trace is one JSONL file: a ``trace`` header row, one ``span`` row per
completed span (id/parent/name/start/elapsed/attrs/pid) and one
``counter``/``gauge``/``histogram`` row per metric key.  ``python -m
repro trace <run.jsonl>`` renders the span tree, the top self-time
hotspots and the metric rollups (see :func:`rollup` /
:func:`render_trace`).

The module is import-light on purpose (stdlib only): every layer of the
substrate imports it, so it must not import the substrate back.
"""

from __future__ import annotations

import functools
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "configure",
    "active",
    "enabled",
    "finish",
    "using_tracer",
    "resolve_trace_path",
    "span",
    "traced",
    "counter",
    "gauge",
    "histogram",
    "record_span",
    "new_span_id",
    "current_span_id",
    "worker_reset",
    "worker_snapshot",
    "merge_worker",
    "read_trace",
    "merge_trace_rows",
    "write_trace_rows",
    "rollup",
    "render_trace",
]

#: Bumped whenever the trace-row layout changes; readers check it.
TRACE_SCHEMA_VERSION = 1

#: Metric key: ``(name, ((attr, value), ...))`` with attrs sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _attr_items(attrs: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalise span/metric attributes into a sorted, hashable key.

    Values are coerced to JSON primitives — anything exotic becomes its
    ``str`` so a bad attribute can never break tracing or the sink.
    """
    items = []
    for key in sorted(attrs):
        value = attrs[key]
        if not isinstance(value, (bool, int, float, str)) and value is not None:
            value = str(value)
        items.append((key, value))
    return tuple(items)


class Tracer:
    """Buffered span/metric collector bound to one process tree.

    ``path=None`` buffers without ever writing (tests and forked
    workers); with a path, :meth:`write` serialises the whole buffer as
    JSONL atomically (tmp file + rename).
    """

    def __init__(self, path: Optional[os.PathLike] = None):
        self.path = Path(path) if path is not None else None
        self.pid = os.getpid()
        self.t0 = time.perf_counter()
        self.started_at = time.time()
        self.spans: List[dict] = []
        self.counters: Dict[MetricKey, int] = {}
        self.gauges: Dict[MetricKey, List[float]] = {}
        self.histograms: Dict[MetricKey, List[float]] = {}
        self._stack: List[str] = []
        self._next_id = 0
        self._worker = False
        # Guards id allocation and span appends for the *explicit-parent*
        # recording path (record_span), which the serve daemon calls from
        # its event-loop thread while the main thread may hold spans open.
        # The stack-based span() path stays lock-free: the stack is only
        # meaningful within a single thread anyway.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def new_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"{self.pid:x}-{self._next_id:x}"

    def record_span(
        self,
        name: str,
        start: float,
        elapsed: float,
        parent: Optional[str],
        ok: bool,
        attrs: Dict[str, Any],
        span_id: Optional[str] = None,
    ) -> str:
        """Append one *completed* span with an explicit parent id.

        The stack-based :class:`_Span` path infers parentage from
        whichever span is open on the per-process stack — which is
        wrong for work that interleaves on an event loop or crosses
        threads (by the time an async request finishes, the stack
        belongs to someone else).  Callers on those paths time the work
        themselves and record it retroactively here, passing the parent
        id they captured up front.  ``start`` is a raw
        ``time.perf_counter()`` reading; it lands in the trace relative
        to this tracer's epoch like every stack-recorded span.
        """
        if span_id is None:
            span_id = self.new_id()
        with self._lock:
            self.spans.append(
                {
                    "type": "span",
                    "id": span_id,
                    "parent": parent,
                    "name": name,
                    "pid": self.pid,
                    "start": start - self.t0,
                    "elapsed": elapsed,
                    "ok": bool(ok),
                    "attrs": dict(_attr_items(attrs)),
                }
            )
        return span_id

    def counter(self, name: str, n: int, attrs: Dict[str, Any]) -> None:
        key = (name, _attr_items(attrs))
        self.counters[key] = self.counters.get(key, 0) + n

    def gauge(self, name: str, value: float, attrs: Dict[str, Any]) -> None:
        key = (name, _attr_items(attrs))
        self.gauges.setdefault(key, []).append(float(value))

    def histogram(self, name: str, value: float, attrs: Dict[str, Any]) -> None:
        key = (name, _attr_items(attrs))
        value = float(value)
        slot = self.histograms.get(key)
        if slot is None:
            self.histograms[key] = [1, value, value, value]
        else:
            slot[0] += 1
            slot[1] += value
            slot[2] = min(slot[2], value)
            slot[3] = max(slot[3], value)

    # ------------------------------------------------------------------
    # Fork-aware merging (see module docstring)
    # ------------------------------------------------------------------
    def worker_reset(self) -> None:
        """Start a clean child-local buffer inside a forked pool task.

        Refreshing the pid keeps span ids globally unique (the child
        inherited the parent's counter), and dropping ``path`` makes it
        impossible for a worker to write the parent's trace file.
        """
        self.pid = os.getpid()
        self.path = None
        self._worker = True
        self.spans = []
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        self._stack = []
        # A lock held by another thread at fork time would be copied in
        # its locked state and deadlock the child; start fresh.
        self._lock = threading.Lock()

    def snapshot(self) -> Dict[str, Any]:
        """A picklable copy of the buffers (shipped home by pool tasks)."""
        return {
            "spans": list(self.spans),
            "counters": dict(self.counters),
            "gauges": {key: list(vs) for key, vs in self.gauges.items()},
            "histograms": {
                key: list(slot) for key, slot in self.histograms.items()
            },
        }

    def merge(
        self, snapshot: Dict[str, Any], parent_id: Optional[str] = None
    ) -> None:
        """Fold a worker :meth:`snapshot` into this tracer.

        Root spans of the snapshot (``parent is None`` — the task shim
        reset the child's stack) are re-parented under ``parent_id`` so
        the merged tree nests exactly like a serial run's.
        """
        for event in snapshot.get("spans", ()):
            if event.get("parent") is None and parent_id is not None:
                event = {**event, "parent": parent_id}
            self.spans.append(event)
        for (name, attrs), value in snapshot.get("counters", {}).items():
            key = (name, tuple(attrs))
            self.counters[key] = self.counters.get(key, 0) + int(value)
        for (name, attrs), values in snapshot.get("gauges", {}).items():
            self.gauges.setdefault((name, tuple(attrs)), []).extend(values)
        for (name, attrs), other in snapshot.get("histograms", {}).items():
            key = (name, tuple(attrs))
            slot = self.histograms.get(key)
            if slot is None:
                self.histograms[key] = list(other)
            else:
                slot[0] += other[0]
                slot[1] += other[1]
                slot[2] = min(slot[2], other[2])
                slot[3] = max(slot[3], other[3])

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def rows(self) -> List[dict]:
        """Every JSONL row of the trace, header first."""
        rows: List[dict] = [
            {
                "type": "trace",
                "version": TRACE_SCHEMA_VERSION,
                "pid": self.pid,
                "started_at": self.started_at,
                "argv": list(sys.argv),
            }
        ]
        rows.extend(sorted(self.spans, key=lambda e: e["start"]))
        for (name, attrs), value in sorted(self.counters.items()):
            rows.append(
                {
                    "type": "counter",
                    "name": name,
                    "attrs": dict(attrs),
                    "value": value,
                }
            )
        for (name, attrs), values in sorted(self.gauges.items()):
            rows.append(
                {
                    "type": "gauge",
                    "name": name,
                    "attrs": dict(attrs),
                    "values": values,
                }
            )
        for (name, attrs), (count, total, lo, hi) in sorted(
            self.histograms.items()
        ):
            rows.append(
                {
                    "type": "histogram",
                    "name": name,
                    "attrs": dict(attrs),
                    "count": count,
                    "total": total,
                    "min": lo,
                    "max": hi,
                }
            )
        return rows

    def write(self) -> Optional[Path]:
        """Atomically write the buffered trace; returns the path."""
        if self.path is None:
            return None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w") as handle:
            for row in self.rows():
                handle.write(json.dumps(row) + "\n")
        os.replace(tmp, self.path)
        return self.path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tracer(path={str(self.path) if self.path else None!r}, "
            f"spans={len(self.spans)})"
        )


# ----------------------------------------------------------------------
# The process-active tracer and the zero-overhead hooks
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None


def configure(path: Optional[os.PathLike] = None) -> Optional[Tracer]:
    """Install a process-wide tracer writing to ``path`` (None disables)."""
    global _TRACER
    _TRACER = Tracer(path) if path is not None else None
    return _TRACER


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` (tracing off)."""
    return _TRACER


def enabled() -> bool:
    return _TRACER is not None


def finish() -> Optional[Path]:
    """Write the buffered trace, uninstall the tracer, return the path.

    A no-op returning ``None`` when tracing is disabled or when called
    inside a forked worker (workers never own the trace file).
    """
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is None or tracer._worker:
        return None
    return tracer.write()


@contextmanager
def using_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Temporarily install ``tracer`` (tests; ``None`` forces off)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous


def resolve_trace_path(flag: Optional[str] = None) -> Optional[str]:
    """CLI resolution: explicit ``--trace`` value > ``REPRO_TRACE`` env."""
    if flag:
        return flag
    env = os.environ.get("REPRO_TRACE", "").strip()
    return env or None


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """A live span: records one event on exit, parented by the stack."""

    __slots__ = ("_tracer", "name", "attrs", "id", "parent", "_start")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.id = tracer.new_id()
        self.parent = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.id:
            tracer._stack.pop()
        tracer.spans.append(
            {
                "type": "span",
                "id": self.id,
                "parent": self.parent,
                "name": self.name,
                "pid": tracer.pid,
                "start": self._start - tracer.t0,
                "elapsed": elapsed,
                "ok": exc_type is None,
                "attrs": dict(_attr_items(self.attrs)),
            }
        )
        return False


def span(name: str, **attrs):
    """Open a traced span: ``with span("skc.extract_patch", dataset=d):``.

    Returns a shared no-op context manager when tracing is disabled, so
    hot paths pay one global read per call.
    """
    tracer = _TRACER
    if tracer is None:
        return _NOOP
    return _Span(tracer, name, attrs)


def traced(name: Optional[str] = None, **attrs) -> Callable:
    """Decorator form of :func:`span`; resolves the tracer at call time."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _TRACER is None:
                return fn(*args, **kwargs)
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def counter(name: str, n: int = 1, **attrs) -> None:
    """Add ``n`` to the counter ``name`` (keyed by ``attrs``)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.counter(name, n, attrs)


def gauge(name: str, value: float, **attrs) -> None:
    """Append one sample to the gauge series ``name`` (e.g. a λ value)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.gauge(name, value, attrs)


def histogram(name: str, value: float, **attrs) -> None:
    """Record one observation into the histogram ``name``."""
    tracer = _TRACER
    if tracer is not None:
        tracer.histogram(name, value, attrs)


def record_span(
    name: str,
    start: float,
    elapsed: float,
    parent: Optional[str] = None,
    ok: bool = True,
    span_id: Optional[str] = None,
    **attrs,
) -> Optional[str]:
    """Record a completed span with an explicit parent (async/thread safe).

    The serve daemon's request path interleaves on an event loop, so it
    cannot use the stack-based :func:`span`; it measures each region
    itself and reports it here after the fact.  ``start`` is the raw
    ``time.perf_counter()`` value captured when the region began.  Pass
    ``span_id`` (from :func:`new_span_id`) to record a span whose id was
    handed out earlier as a parent for children recorded before it.
    Returns the span id, or ``None`` when tracing is off.
    """
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.record_span(name, start, elapsed, parent, ok, attrs, span_id)


def new_span_id() -> Optional[str]:
    """Allocate a span id up front (``None`` when tracing is off).

    Lets long-lived regions (a server's run loop) hand their id to
    children as a parent before the region itself completes and is
    recorded via :func:`record_span`.
    """
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.new_id()


def current_span_id() -> Optional[str]:
    """The id of the innermost open span (None when off / at root)."""
    tracer = _TRACER
    if tracer is None or not tracer._stack:
        return None
    return tracer._stack[-1]


# ----------------------------------------------------------------------
# Worker-side hooks (called by repro.runtime.WorkerPool)
# ----------------------------------------------------------------------
def worker_reset() -> None:
    """Reset the inherited tracer inside a forked pool task (no-op off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.worker_reset()


def worker_snapshot() -> Optional[Dict[str, Any]]:
    """The child-local buffers to ship home, or ``None`` (tracing off)."""
    tracer = _TRACER
    return tracer.snapshot() if tracer is not None else None


def merge_worker(
    snapshot: Optional[Dict[str, Any]], parent_id: Optional[str] = None
) -> None:
    """Fold a worker snapshot into the parent tracer (no-op off/None)."""
    tracer = _TRACER
    if tracer is not None and snapshot is not None:
        tracer.merge(snapshot, parent_id)


# ----------------------------------------------------------------------
# Trace reading and rendering (``python -m repro trace``)
# ----------------------------------------------------------------------
def read_trace(path: os.PathLike) -> List[dict]:
    """Parse a trace JSONL file; undecodable lines are skipped."""
    rows: List[dict] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict):
                rows.append(row)
    return rows


def merge_trace_rows(row_sets: Sequence[Sequence[dict]]) -> List[dict]:
    """Merge several traces' rows into one coherent row list.

    :meth:`Tracer.merge` folds *snapshots* across a fork boundary — one
    process tree, shared id counter lineage.  Shard runs are separate
    trees: their span ids (``pid-counter``) can collide outright when
    the OS recycles pids, and their metric rows are already aggregated.
    This merges at the *row* level instead: every span and parent id is
    namespaced by its shard index (``s0:<id>``), counters sum, gauge
    series concatenate in shard order, and histogram aggregates
    count/total-sum and min/max-merge — the same semantics the
    fork-aware path applies to live buffers.  Returns header-first rows
    ready for :func:`write_trace_rows`; the header records the merged
    shard count and each shard's original argv.
    """

    def _metric_key(row: dict) -> Tuple[str, str]:
        return (
            row["name"],
            json.dumps(row.get("attrs", {}), sort_keys=True),
        )

    spans: List[dict] = []
    counters: Dict[Tuple[str, str], dict] = {}
    gauges: Dict[Tuple[str, str], dict] = {}
    histograms: Dict[Tuple[str, str], dict] = {}
    headers: List[dict] = []
    for shard_index, rows in enumerate(row_sets):
        prefix = f"s{shard_index}:"
        for row in rows:
            kind = row.get("type")
            if kind == "trace":
                headers.append(row)
            elif kind == "span":
                event = dict(row)
                event["id"] = prefix + str(event["id"])
                if event.get("parent") is not None:
                    event["parent"] = prefix + str(event["parent"])
                spans.append(event)
            elif kind == "counter":
                key = _metric_key(row)
                slot = counters.get(key)
                if slot is None:
                    counters[key] = dict(row)
                else:
                    slot["value"] += row["value"]
            elif kind == "gauge":
                key = _metric_key(row)
                slot = gauges.get(key)
                if slot is None:
                    gauges[key] = dict(row, values=list(row.get("values", [])))
                else:
                    slot["values"].extend(row.get("values", []))
            elif kind == "histogram":
                key = _metric_key(row)
                slot = histograms.get(key)
                if slot is None:
                    histograms[key] = dict(row)
                else:
                    slot["count"] += row.get("count", 0)
                    slot["total"] += row.get("total", 0.0)
                    slot["min"] = min(slot["min"], row.get("min", slot["min"]))
                    slot["max"] = max(slot["max"], row.get("max", slot["max"]))
    merged: List[dict] = [
        {
            "type": "trace",
            "version": TRACE_SCHEMA_VERSION,
            "pid": os.getpid(),
            "started_at": min(
                (h.get("started_at") for h in headers if h.get("started_at")),
                default=time.time(),
            ),
            "argv": list(sys.argv),
            "merged_shards": len(list(row_sets)),
            "shard_argv": [h.get("argv") for h in headers],
        }
    ]
    merged.extend(sorted(spans, key=lambda e: e.get("start", 0.0)))
    for table in (counters, gauges, histograms):
        merged.extend(
            table[key] for key in sorted(table, key=lambda k: (k[0], k[1]))
        )
    return merged


def write_trace_rows(path: os.PathLike, rows: Sequence[dict]) -> Path:
    """Atomically write trace rows as JSONL (merged-shard traces)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    os.replace(tmp, path)
    return path


def _metric_label(name: str, attrs: Dict[str, Any]) -> str:
    if not attrs:
        return name
    inner = ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"{name}{{{inner}}}"


def rollup(rows: Sequence[dict]) -> Dict[str, Any]:
    """Aggregate trace rows into a tree, hotspots and metric rollups.

    * ``tree`` — spans grouped by (parent path, name): each node carries
      ``count``/``total``/``self`` seconds and its children.
    * ``hotspots`` — span names ranked by summed self-time (elapsed
      minus direct children's elapsed, floored at zero — concurrent
      children may overlap and sum past the parent).
    * ``counters``/``gauges``/``histograms`` — label-keyed rollups;
      gauge series keep their sampled values (trajectories), histograms
      report count/mean/min/max.
    """
    spans = [r for r in rows if r.get("type") == "span"]
    by_id = {s["id"]: s for s in spans}
    children: Dict[Optional[str], List[dict]] = {}
    child_time: Dict[str, float] = {}
    for s in spans:
        parent = s.get("parent")
        if parent not in by_id:
            parent = None  # orphaned (parent never closed) → treat as root
        children.setdefault(parent, []).append(s)
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + s["elapsed"]

    self_by_name: Dict[str, float] = {}
    total_by_name: Dict[str, float] = {}
    count_by_name: Dict[str, int] = {}
    for s in spans:
        name = s["name"]
        # Clamped at zero: concurrent children (e.g. the serve
        # scheduler's overlapping per-request spans) can sum past their
        # parent's elapsed, and negative self-time is meaningless.
        own = max(0.0, s["elapsed"] - child_time.get(s["id"], 0.0))
        self_by_name[name] = self_by_name.get(name, 0.0) + own
        total_by_name[name] = total_by_name.get(name, 0.0) + s["elapsed"]
        count_by_name[name] = count_by_name.get(name, 0) + 1

    def build(parent: Optional[str]) -> List[dict]:
        groups: Dict[str, dict] = {}
        for s in children.get(parent, ()):
            node = groups.setdefault(
                s["name"],
                {"name": s["name"], "count": 0, "total": 0.0, "self": 0.0,
                 "_ids": []},
            )
            node["count"] += 1
            node["total"] += s["elapsed"]
            node["self"] += max(
                0.0, s["elapsed"] - child_time.get(s["id"], 0.0)
            )
            node["_ids"].append(s["id"])
        nodes = []
        for node in groups.values():
            kids: List[dict] = []
            for span_id in node.pop("_ids"):
                kids.extend(build(span_id))
            merged: Dict[str, dict] = {}
            for kid in kids:
                slot = merged.get(kid["name"])
                if slot is None:
                    merged[kid["name"]] = kid
                else:
                    slot["count"] += kid["count"]
                    slot["total"] += kid["total"]
                    slot["self"] += kid["self"]
                    slot["children"].extend(kid["children"])
            node["children"] = sorted(
                merged.values(), key=lambda n: -n["total"]
            )
            nodes.append(node)
        return sorted(nodes, key=lambda n: -n["total"])

    counters = {}
    gauges = {}
    histograms = {}
    for row in rows:
        kind = row.get("type")
        if kind == "counter":
            counters[_metric_label(row["name"], row.get("attrs", {}))] = row[
                "value"
            ]
        elif kind == "gauge":
            values = row.get("values", [])
            gauges[_metric_label(row["name"], row.get("attrs", {}))] = {
                "count": len(values),
                "min": min(values) if values else None,
                "max": max(values) if values else None,
                "values": values,
            }
        elif kind == "histogram":
            count = row.get("count", 0)
            histograms[_metric_label(row["name"], row.get("attrs", {}))] = {
                "count": count,
                "mean": (row.get("total", 0.0) / count) if count else None,
                "min": row.get("min"),
                "max": row.get("max"),
            }

    header = next((r for r in rows if r.get("type") == "trace"), {})
    return {
        "version": header.get("version"),
        "argv": header.get("argv"),
        "spans": len(spans),
        "span_names": {
            name: {
                "count": count_by_name[name],
                "total": total_by_name[name],
                "self": self_by_name[name],
            }
            for name in sorted(count_by_name)
        },
        "tree": build(None),
        "hotspots": sorted(
            (
                {"name": name, "self": seconds,
                 "total": total_by_name[name], "count": count_by_name[name]}
                for name, seconds in self_by_name.items()
            ),
            key=lambda h: -h["self"],
        ),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def render_trace(summary: Dict[str, Any], top: int = 10) -> str:
    """Human-readable rendering of a :func:`rollup` summary."""
    lines = []
    argv = summary.get("argv")
    header = f"trace — {summary['spans']} spans"
    if argv:
        header += "  (" + " ".join(argv) + ")"
    lines.append(header)

    if summary["tree"]:
        lines.append("span tree (count, total, self):")

        def emit(node: dict, depth: int) -> None:
            label = "  " * (depth + 1) + node["name"]
            lines.append(
                f"{label:<44} {node['count']:>6}  "
                f"{node['total']:>9.3f}s  {node['self']:>9.3f}s"
            )
            for kid in node["children"]:
                emit(kid, depth + 1)

        for node in summary["tree"]:
            emit(node, 0)

    hotspots = summary.get("hotspots", [])[:top]
    if hotspots:
        lines.append(f"top {len(hotspots)} hotspots (self time):")
        for rank, spot in enumerate(hotspots, 1):
            lines.append(
                f"  {rank:>2}. {spot['name']:<38} {spot['self']:>9.3f}s "
                f"over {spot['count']} spans"
            )

    if summary["counters"]:
        lines.append("counters:")
        for label in sorted(summary["counters"]):
            lines.append(f"  {label:<44} {summary['counters'][label]:>12}")
    if summary["gauges"]:
        lines.append("gauges (count, min, max, last):")
        for label in sorted(summary["gauges"]):
            g = summary["gauges"][label]
            last = g["values"][-1] if g["values"] else float("nan")
            lines.append(
                f"  {label:<44} {g['count']:>6}  {g['min']:>10.4f}  "
                f"{g['max']:>10.4f}  {last:>10.4f}"
            )
    if summary["histograms"]:
        lines.append("histograms (count, mean, min, max):")
        for label in sorted(summary["histograms"]):
            h = summary["histograms"][label]
            lines.append(
                f"  {label:<44} {h['count']:>6}  {h['mean']:>10.4f}  "
                f"{h['min']:>10.4f}  {h['max']:>10.4f}"
            )
    return "\n".join(lines)
