"""MockGPT — the simulated closed-source LLM behind AKB.

The paper uses GPT-4o as a black box mapping prompts to knowledge text
(Eq. 7), error feedback (Eq. 9) and refined knowledge (Eq. 10-11).
MockGPT implements the same three calls on top of the rule-induction
engine (:mod:`repro.llm.induction`):

* :meth:`generate_knowledge` — induce rules from the sampled examples
  and emit a diverse candidate pool by temperature-sampling rule
  subsets (higher temperature → more varied, riskier candidates).
* :meth:`feedback` — re-induce on the *error* subset and diff against
  the current knowledge, yielding suggested additions/removals with a
  textual rationale (the substrate's "error feedback information").
* :meth:`refine` — apply the feedback to evolve the knowledge while
  avoiding candidates already present in the optimisation trajectory.

``capability`` scales induction fidelity: below 1.0 the engine
randomly drops induced rules and occasionally hallucinates a spurious
one — which is how the weaker GPT-3.5 analogue behaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.schema import Example
from ..knowledge.rules import Knowledge, Rule, VocabConstraint
from ..knowledge import validators
from ..tinylm.linalg import rng_for
from .induction import ScoredRule, induce

__all__ = ["MockGPT", "Feedback", "ErrorCase"]


@dataclass(frozen=True)
class ErrorCase:
    """One validation mistake: the example and the model's wrong output."""

    example: Example
    prediction: str


@dataclass
class Feedback:
    """Eq. 9 output: structured suggestions plus a textual summary."""

    add: List[ScoredRule] = field(default_factory=list)
    remove: List[Rule] = field(default_factory=list)
    text: str = ""

    def __bool__(self) -> bool:
        return bool(self.add or self.remove)


class MockGPT:
    """A deterministic, seeded stand-in for the knowledge-writing LLM."""

    def __init__(
        self,
        capability: float = 1.0,
        temperature: float = 0.9,
        seed: int = 0,
        name: str = "mockgpt-4o",
    ):
        if not 0.0 < capability <= 1.0:
            raise ValueError(f"capability must be in (0, 1], got {capability}")
        if temperature < 0.0:
            raise ValueError("temperature must be non-negative")
        self.capability = capability
        self.temperature = temperature
        self.name = name
        self._rng = rng_for(seed, "mockgpt", name)

    # ------------------------------------------------------------------
    # Generation (Eq. 7)
    # ------------------------------------------------------------------
    def _keep_probability(self, confidence: float) -> float:
        """How likely an induced rule survives into one candidate."""
        base = confidence * self.capability
        if self.temperature <= 0:
            return 1.0 if base >= 0.5 else 0.0
        # Higher temperature flattens toward 50/50 inclusion.
        flattened = base ** (1.0 / max(self.temperature, 1e-6))
        return float(np.clip(0.3 * flattened + 0.7 * base, 0.05, 0.98))

    def _sample_candidate(
        self, scored: Sequence[ScoredRule], seed_knowledge: Knowledge
    ) -> Knowledge:
        knowledge = seed_knowledge
        for item in scored:
            if self._rng.random() < self._keep_probability(item.confidence):
                knowledge = knowledge.with_rule(item.rule)
        if self.capability < 0.9 and self._rng.random() < (
            0.25 * (1.0 - self.capability)
        ):
            knowledge = knowledge.with_rule(self._spurious_rule())
        return knowledge

    def _spurious_rule(self) -> Rule:
        """A plausible-but-wrong rule a weaker model might hallucinate."""
        banks = sorted(validators.BANKS)
        bank = banks[int(self._rng.integers(len(banks)))]
        return VocabConstraint("description", bank)

    def generate_knowledge(
        self,
        task: str,
        examples: Sequence[Example],
        seed_knowledge: Knowledge,
        count: int = 5,
    ) -> List[Knowledge]:
        """Produce an initial candidate pool K from demonstrations."""
        scored = induce(task, examples)
        pool: List[Knowledge] = [seed_knowledge]
        attempts = 0
        while len(pool) < count + 1 and attempts < count * 6:
            attempts += 1
            candidate = self._sample_candidate(scored, seed_knowledge)
            if candidate not in pool:
                pool.append(candidate)
        return pool[1 : count + 1] or [seed_knowledge]

    # ------------------------------------------------------------------
    # Feedback (Eq. 9)
    # ------------------------------------------------------------------
    def feedback(
        self,
        task: str,
        knowledge: Knowledge,
        errors: Sequence[ErrorCase],
    ) -> Feedback:
        """Analyse error cases against the current knowledge."""
        if not errors:
            return Feedback(text="no errors to analyse")
        error_examples = [case.example for case in errors]
        induced = induce(task, error_examples)
        additions = [
            item for item in induced if item.rule not in knowledge.rules
        ]
        removals: List[Rule] = []
        # A rule contradicted by the error slice (it would have been
        # induced with opposite evidence) is a removal candidate: here we
        # flag rules whose attribute shows up in errors but whose check
        # disagrees with the labels.
        for rule in knowledge.rules:
            attribute = getattr(rule, "attribute", None)
            if attribute is None:
                continue
            implicated = [
                case
                for case in errors
                if case.example.inputs.get("attribute") == attribute
            ]
            if len(implicated) >= 2 and not any(
                item.rule == rule for item in induced
            ):
                removals.append(rule)
        lines = [
            f"examined {len(errors)} wrong examples for the {task} task"
        ]
        for item in additions[:5]:
            lines.append(f"the prompt misses: {item.rule.render()}")
        for rule in removals[:3]:
            lines.append(f"the prompt misleads with: {rule.render()}")
        return Feedback(add=additions, remove=removals, text="; ".join(lines))

    # ------------------------------------------------------------------
    # Refinement (Eq. 10-11)
    # ------------------------------------------------------------------
    def refine(
        self,
        task: str,
        knowledge: Knowledge,
        errors: Sequence[ErrorCase],
        feedback: Feedback,
        trajectory: Sequence[Knowledge] = (),
    ) -> Knowledge:
        """Evolve the knowledge using the feedback and past trajectory."""
        del task, errors  # both already distilled into the feedback
        refined = knowledge
        for item in sorted(feedback.add, key=lambda s: -s.confidence):
            if self._rng.random() < self._keep_probability(item.confidence):
                refined = refined.with_rule(item.rule)
        for rule in feedback.remove:
            if self._rng.random() < 0.5 * self.capability:
                refined = refined.without_rule(rule)
        # Trajectory awareness: if the evolved knowledge repeats a past
        # candidate, force in the strongest unused suggestion instead of
        # re-submitting it (the paper's "avoid repeating past mistakes").
        if any(refined == previous for previous in trajectory):
            for item in sorted(feedback.add, key=lambda s: -s.confidence):
                if item.rule not in refined.rules:
                    refined = refined.with_rule(item.rule)
                    break
        return refined
