"""In-context learning: demonstrations placed in the prompt.

The Jellyfish-ICL baseline (and every GPT baseline) receives the
few-shot examples as in-context demonstrations instead of parameter
updates.  Mechanistically, transformer ICL behaves like an induction
head: it retrieves demonstrations similar to the query and copies their
answers, blended with the model's own zero-shot judgement.
:class:`ICLModel` implements exactly that — query logits plus a
similarity-weighted demonstration vote — rather than naively
concatenating demonstration text into the hashed prompt (which would
only dilute the query features, an artifact attention does not have).

:func:`icl_prompt` still renders the full transmitted prompt (demos
included) for token accounting (paper Table III).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..data.schema import Dataset, Example
from ..knowledge.rules import Knowledge
from ..tasks.base import Task

__all__ = ["render_demonstrations", "icl_prompt", "ICLModel"]


def render_demonstrations(
    task: Task,
    demonstrations: Sequence[Example],
    knowledge: Knowledge,
    limit: int = 10,
) -> str:
    """Linearise demonstrations the way API prompts carry them."""
    parts = []
    for example in list(demonstrations)[:limit]:
        body = task.prompt(example, knowledge)
        parts.append(f"example {body} answer {example.answer}")
    return " ".join(parts)


def icl_prompt(
    task: Task,
    example: Example,
    demonstrations: Sequence[Example],
    knowledge: Knowledge,
    limit: int = 10,
) -> str:
    """The transmitted prompt: demonstrations followed by the query."""
    demos = render_demonstrations(task, demonstrations, knowledge, limit)
    query = task.prompt(example, knowledge)
    return (demos + " " + query).strip()


class ICLModel:
    """Demonstration-conditioned inference over a frozen scoring LM.

    ``vote_weight`` balances the retrieval vote against the model's own
    zero-shot logits; demonstrations similar to the query contribute
    their answer with weight proportional to feature cosine similarity.
    """

    def __init__(
        self,
        model,
        task: Task,
        demonstrations: Sequence[Example],
        knowledge: Knowledge,
        dataset: Optional[Dataset] = None,
        limit: int = 10,
        vote_weight: float = 2.0,
    ):
        self.model = model
        self.task = task
        self.demonstrations = list(demonstrations)[:limit]
        self.knowledge = knowledge
        self.dataset = dataset
        self.limit = limit
        self.vote_weight = vote_weight
        self._demo_features = model.encode_prompts(
            [task.prompt(demo, knowledge) for demo in self.demonstrations]
        )
        self._demo_answers = [demo.answer for demo in self.demonstrations]

    #: Retrieval sharpness: only the most similar demonstrations vote,
    #: with a soft temperature over their similarities.
    RETRIEVED = 3
    RETRIEVAL_TEMPERATURE = 0.02

    def _vote(self, query_features: np.ndarray, pool: Sequence[str]) -> np.ndarray:
        similarities = self._demo_features @ query_features
        order = np.argsort(similarities)[::-1][: self.RETRIEVED]
        top = similarities[order]
        soft = np.exp((top - top.max()) / self.RETRIEVAL_TEMPERATURE)
        soft /= soft.sum()
        votes = np.zeros(len(pool))
        for weight, index in zip(soft, order):
            answer = self._demo_answers[int(index)]
            if answer in pool:
                votes[pool.index(answer)] += float(weight)
        return votes

    def predict(self, example: Example) -> str:
        return self.predict_batch([example])[0]

    def predict_batch(self, examples: Sequence[Example]) -> List[str]:
        """Batched ICL decode: one engine call plus a vectorized vote.

        All query logits come from ``logits_batch`` and all
        demonstration similarities from a single ``(n, n_demo)`` matmul;
        only the tiny per-pool vote scatter stays per-example.
        """
        pools = [
            list(self.task.candidates(ex, self.knowledge, self.dataset))
            for ex in examples
        ]
        prompts = [self.task.prompt(ex, self.knowledge) for ex in examples]
        logits_list = self.model.logits_batch(prompts, pools)
        queries = self.model.encode_prompts(prompts)
        predictions = []
        for query, pool, logits in zip(queries, pools, logits_list):
            combined = logits + self.vote_weight * self._vote(query, pool)
            predictions.append(pool[int(np.argmax(combined))])
        return predictions

    def transmitted_prompt(self, example: Example) -> str:
        """The full API-style prompt (for token accounting)."""
        return icl_prompt(
            self.task, example, self.demonstrations, self.knowledge, self.limit
        )
