"""External-LLM substrate: MockGPT, ICL inference, pricing."""

from .icl import ICLModel, icl_prompt, render_demonstrations
from .induction import ScoredRule, induce
from .mockgpt import ErrorCase, Feedback, MockGPT
from .pricing import PRICES, PriceSheet, UsageMeter

__all__ = [
    "MockGPT",
    "Feedback",
    "ErrorCase",
    "induce",
    "ScoredRule",
    "ICLModel",
    "icl_prompt",
    "render_demonstrations",
    "UsageMeter",
    "PriceSheet",
    "PRICES",
]
