"""Rule induction from labeled examples — MockGPT's reasoning core.

Given a handful of labeled instances, these functions induce candidate
dataset-informed knowledge rules with confidence scores, exactly the
way a capable LLM reads demonstrations and writes down the governing
conventions ("ABV never carries a percent sign", "model numbers decide
matches").  The induction is statistical and therefore *imperfect at
few-shot sizes* — which is what gives AKB's error-feedback loop real
work to do.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..data.schema import Example, Record
from ..knowledge import validators
from ..knowledge.apply import _extract_keys, _values_agree  # substrate-internal
from ..knowledge.rules import (
    CandidateHint,
    FormatConstraint,
    IgnoreAttribute,
    KeyAttribute,
    KeyPattern,
    MissingValuePolicy,
    PatternLabelHint,
    Rule,
    ValueRange,
    VocabConstraint,
)

__all__ = ["ScoredRule", "induce"]


@dataclass(frozen=True)
class ScoredRule:
    """An induced rule with the inducer's confidence in it."""

    rule: Rule
    confidence: float


#: Validators ordered most-specific first; induction proposes the first
#: one every clean sample satisfies.
_VALIDATOR_SPECIFICITY = (
    "time_12h",
    "iso_date",
    "issn",
    "flight_code",
    "pagination",
    "unit_decimal",
    "integer",
    "numeric",
)

_MIN_CLEAN_SAMPLES = 2


def _is_missing(value: str) -> bool:
    return value.strip().lower() in ("nan", "n/a", "", "null", "none")


# ---------------------------------------------------------------------------
# Cell-level conventions (ED / DC)
# ---------------------------------------------------------------------------
def _collect_cell_evidence(
    examples: Sequence[Example],
) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
    """Split observed cell values into clean and dirty pools per attribute.

    For ED, non-highlighted cells are clean by construction and answer
    ``no`` confirms the highlighted one; for DC the reference answers
    are clean and the dirty originals are dirty.
    """
    clean: Dict[str, List[str]] = defaultdict(list)
    dirty: Dict[str, List[str]] = defaultdict(list)
    for example in examples:
        record: Record = example.inputs["record"]
        attribute = example.inputs["attribute"]
        if example.task == "ed":
            for attr, value in record:
                if attr == attribute:
                    pool = clean if example.answer == "no" else dirty
                    pool[attr].append(value)
                else:
                    clean[attr].append(value)
        else:  # dc
            clean[attribute].append(example.answer)
            dirty[attribute].append(record.get(attribute))
            for attr, value in record:
                if attr != attribute:
                    clean[attr].append(value)
    return clean, dirty


def _value_words(values: Iterable[str]) -> List[str]:
    words: List[str] = []
    for value in values:
        words.extend(value.strip().lower().split())
    return words


def _induce_cell_rules(
    examples: Sequence[Example],
) -> List[ScoredRule]:
    clean, dirty = _collect_cell_evidence(examples)
    rules: List[ScoredRule] = []

    dirty_missing = sum(
        1 for values in dirty.values() for v in values if _is_missing(v)
    )
    if dirty_missing:
        rules.append(ScoredRule(MissingValuePolicy(), 0.95))

    for attribute, values in clean.items():
        present = [v for v in values if not _is_missing(v)]
        if len(present) < _MIN_CLEAN_SAMPLES:
            continue
        lowered = [v.strip().lower() for v in present]
        # Format constraints: pick the most specific validator that all
        # clean samples satisfy, provided it is selective (there exists
        # a dirty sample or a generic string it rejects).
        for name in _VALIDATOR_SPECIFICITY:
            if all(validators.validate(name, v) for v in lowered):
                dirty_hits = [
                    v
                    for v in dirty.get(attribute, ())
                    if not _is_missing(v)
                    and not validators.validate(name, v.strip().lower())
                ]
                confidence = 0.6 + 0.1 * min(len(present), 3)
                if dirty_hits:
                    confidence = min(0.97, confidence + 0.15)
                rules.append(
                    ScoredRule(FormatConstraint(attribute, name), confidence)
                )
                break
        # Vocabulary constraints: smallest bank whose word set covers all
        # clean samples of a non-numeric attribute.
        if any(not v.replace(".", "").replace("-", "").isdigit() for v in lowered):
            covering = [
                (len(validators.BANKS[bank]), bank)
                for bank in validators.BANKS
                if all(validators.bank_contains(bank, v) for v in lowered)
            ]
            if covering:
                __, bank = min(covering)
                confidence = 0.5 + 0.1 * min(len(present), 4)
                rules.append(
                    ScoredRule(VocabConstraint(attribute, bank), confidence)
                )
        # Numeric plausibility ranges need several samples to be credible.
        numbers = []
        for v in lowered:
            try:
                numbers.append(float(v))
            except ValueError:
                break
        if len(numbers) == len(lowered) and len(numbers) >= 4:
            low, high = min(numbers), max(numbers)
            margin = 0.5 * (high - low) + 1e-9
            rules.append(
                ScoredRule(
                    ValueRange(attribute, round(low - margin, 3), round(high + margin, 3)),
                    0.45,
                )
            )
    return rules


# ---------------------------------------------------------------------------
# Matching conventions (EM)
# ---------------------------------------------------------------------------
def _induce_matching_rules(examples: Sequence[Example]) -> List[ScoredRule]:
    rules: List[ScoredRule] = []
    attributes: Dict[str, List[Tuple[bool, bool]]] = defaultdict(list)
    pattern_stats: Dict[str, List[Tuple[bool, bool]]] = defaultdict(list)
    saw_missing = False
    for example in examples:
        left: Record = example.inputs["left"]
        right: Record = example.inputs["right"]
        is_match = example.answer == "yes"
        for attr in left.attributes:
            if attr not in right:
                continue
            if left.is_missing(attr) or right.is_missing(attr):
                saw_missing = True
                continue
            agree = _values_agree(left.get(attr), right.get(attr))
            attributes[attr].append((agree, is_match))
        for pattern in ("model_number", "capacity"):
            lk, rk = _extract_keys(left, pattern), _extract_keys(right, pattern)
            if lk and rk:
                pattern_stats[pattern].append((bool(lk & rk), is_match))

    if saw_missing:
        rules.append(ScoredRule(MissingValuePolicy(), 0.9))

    def correlation(stats: List[Tuple[bool, bool]]) -> float:
        matches = [agree for agree, is_match in stats if is_match]
        non_matches = [agree for agree, is_match in stats if not is_match]
        if not matches or not non_matches:
            return 0.0
        return (sum(matches) / len(matches)) - (
            sum(non_matches) / len(non_matches)
        )

    for attr, stats in attributes.items():
        corr = correlation(stats)
        if corr >= 0.5:
            rules.append(
                ScoredRule(KeyAttribute(attr), min(0.95, 0.5 + corr / 2))
            )
        elif abs(corr) <= 0.15 and len(stats) >= 6:
            rules.append(ScoredRule(IgnoreAttribute(attr), 0.6))
    for pattern, stats in pattern_stats.items():
        corr = correlation(stats)
        if corr >= 0.5 and len(stats) >= 4:
            rules.append(
                ScoredRule(KeyPattern(pattern), min(0.95, 0.5 + corr / 2))
            )
    return rules


# ---------------------------------------------------------------------------
# Imputation conventions (DI)
# ---------------------------------------------------------------------------
def _induce_imputation_rules(examples: Sequence[Example]) -> List[ScoredRule]:
    rules: List[ScoredRule] = []
    answers = [ex.answer.strip().lower() for ex in examples]
    if not answers:
        return rules
    coverage = []
    for bank in validators.BANKS:
        entries = set(validators.BANKS[bank])
        covered = sum(1 for a in answers if a in entries)
        coverage.append((covered / len(answers), -len(entries), bank))
    best_cover, __, best_bank = max(coverage)
    if best_cover >= 0.7:
        rules.append(
            ScoredRule(
                CandidateHint("known_brand", bank=best_bank),
                min(0.95, best_cover),
            )
        )
    prefix_hits = 0
    for example, answer in zip(examples, answers):
        record: Record = example.inputs["record"]
        first_value = record.values[0][1].strip().lower()
        if answer and answer in " ".join(first_value.split()[:3]):
            prefix_hits += 1
    prefix_rate = prefix_hits / len(answers)
    if prefix_rate >= 0.6:
        rules.append(
            ScoredRule(CandidateHint("title_prefix"), min(0.9, prefix_rate))
        )
    return rules


# ---------------------------------------------------------------------------
# Extraction conventions (AVE)
# ---------------------------------------------------------------------------
def _induce_extraction_rules(examples: Sequence[Example]) -> List[ScoredRule]:
    rules: List[ScoredRule] = []
    by_attribute: Dict[str, List[str]] = defaultdict(list)
    titles: List[str] = []
    for example in examples:
        titles.append(example.inputs["text"].strip().lower())
        if example.answer != "n/a":
            by_attribute[example.inputs["attribute"]].append(
                example.answer.strip().lower()
            )
    brand_banks = ("grocery_brands", "retail_brands", "phone_brands",
                   "electronics_brands")
    for attribute, answers in by_attribute.items():
        if len(answers) < 2:
            continue
        covering = [
            (len(validators.BANKS[bank]), bank)
            for bank in validators.BANKS
            if all(a in validators.BANKS[bank] for a in answers)
        ]
        if covering:
            __, bank = min(covering)
            rules.append(
                ScoredRule(
                    VocabConstraint(attribute, bank),
                    min(0.95, 0.55 + 0.1 * len(answers)),
                )
            )
    # Brand words appear in titles but never answer non-brand queries →
    # descriptive terms outrank brand names (the OA-mine convention).
    non_brand_answers = {
        a
        for attr, answers in by_attribute.items()
        if attr != "brand"
        for a in answers
    }
    for bank in brand_banks:
        entries = set(validators.BANKS[bank])
        occurrences = sum(
            1 for title in titles if any(w in entries for w in title.split())
        )
        if occurrences >= max(2, len(titles) // 2) and not (
            non_brand_answers & entries
        ):
            rules.append(
                ScoredRule(CandidateHint("descriptive_first", bank=bank), 0.7)
            )
            break
    return rules


# ---------------------------------------------------------------------------
# Column-type conventions (CTA)
# ---------------------------------------------------------------------------
def _induce_column_rules(examples: Sequence[Example]) -> List[ScoredRule]:
    rules: List[ScoredRule] = []
    by_label: Dict[str, List[Sequence[str]]] = defaultdict(list)
    for example in examples:
        by_label[example.answer].append(example.inputs["values"])

    def match_rate(pattern: str, columns: List[Sequence[str]]) -> float:
        if not columns:
            return 0.0
        hits = 0
        for values in columns:
            matching = sum(
                1
                for v in values
                if _pattern_match(pattern, v)
            )
            if values and matching / len(values) >= 0.8:
                hits += 1
        return hits / len(columns)

    from ..knowledge.apply import _matches_pattern as _pattern_match

    patterns = PatternLabelHint._PATTERNS
    for label, columns in by_label.items():
        if len(columns) < 1:
            continue
        for pattern in patterns:
            own = match_rate(pattern, columns)
            if own < 0.8:
                continue
            others = [
                col
                for other, cols in by_label.items()
                if other != label
                for col in cols
            ]
            other_rate = match_rate(pattern, others) if others else 0.0
            if other_rate <= 0.2:
                rules.append(
                    ScoredRule(
                        PatternLabelHint(pattern, label),
                        min(0.95, 0.5 + 0.15 * len(columns)) * (1 - other_rate),
                    )
                )
                break
    return rules


# ---------------------------------------------------------------------------
# Cleaning conventions (DC) — cell rules plus derivation detection
# ---------------------------------------------------------------------------
def _induce_cleaning_rules(examples: Sequence[Example]) -> List[ScoredRule]:
    rules = _induce_cell_rules(examples)
    derivable = 0
    considered = 0
    for example in examples:
        record: Record = example.inputs["record"]
        attribute = example.inputs["attribute"]
        if not record.is_missing(attribute):
            continue
        considered += 1
        from ..tasks.candidates import _derivation_proposals

        if example.answer.strip().lower() in _derivation_proposals(
            record, attribute
        ):
            derivable += 1
    if considered and derivable / considered >= 0.5:
        rules.append(ScoredRule(CandidateHint("derive"), 0.8))
    return rules


_INDUCERS = {
    "ed": _induce_cell_rules,
    "dc": _induce_cleaning_rules,
    "em": _induce_matching_rules,
    "di": _induce_imputation_rules,
    "ave": _induce_extraction_rules,
    "cta": _induce_column_rules,
    "sm": lambda examples: [],  # schema semantics resist rule induction
    "qa": lambda examples: [],  # generative lookup carries no latent rules
}


def induce(task: str, examples: Sequence[Example]) -> List[ScoredRule]:
    """Induce scored knowledge rules for a task from labeled examples."""
    if task not in _INDUCERS:
        raise KeyError(f"unknown task {task!r}")
    if not examples:
        return []
    deduped: Dict[Rule, float] = {}
    for scored in _INDUCERS[task](list(examples)):
        previous = deduped.get(scored.rule, 0.0)
        deduped[scored.rule] = max(previous, scored.confidence)
    return [ScoredRule(rule, conf) for rule, conf in deduped.items()]
