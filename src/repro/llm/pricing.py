"""Token accounting and API cost model (paper Table III).

Closed-source baselines pay per token and must carry few-shot
demonstrations in context; a locally fine-tuned DP-LLM bakes the
demonstrations into parameters, so its prompts stay tiny.  This module
reproduces that accounting: prices follow the OpenAI list prices the
paper used, and the local model's cost is amortised GPU time per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..tinylm.tokenizer import count_tokens

__all__ = ["PriceSheet", "PRICES", "UsageRecord", "UsageMeter"]


@dataclass(frozen=True)
class PriceSheet:
    """Per-million-token prices in USD (input / output)."""

    model: str
    input_per_million: float
    output_per_million: float

    def cost(self, input_tokens: float, output_tokens: float) -> float:
        return (
            input_tokens * self.input_per_million
            + output_tokens * self.output_per_million
        ) / 1_000_000


#: List prices at the paper's evaluation time (2024).
PRICES: Dict[str, PriceSheet] = {
    "gpt-3.5": PriceSheet("gpt-3.5-turbo-1106", 1.0, 2.0),
    "gpt-4": PriceSheet("gpt-4-0613", 30.0, 60.0),
    "gpt-4o": PriceSheet("gpt-4o-2024-08-06", 2.5, 10.0),
    # Local 7B serving cost amortised per token (A40 rental / throughput).
    "knowtrans": PriceSheet("knowtrans-7b-local", 5.0, 5.0),
}


@dataclass
class UsageRecord:
    """Token tallies for one inference call."""

    input_tokens: int
    output_tokens: int


class UsageMeter:
    """Accumulates per-instance token usage for a method."""

    def __init__(self, model: str):
        if model not in PRICES:
            raise KeyError(f"unknown model {model!r}; known: {sorted(PRICES)}")
        self.model = model
        self.records: list = []

    def log_call(self, prompt: str, response: str) -> UsageRecord:
        record = UsageRecord(count_tokens(prompt), count_tokens(response))
        self.records.append(record)
        return record

    @property
    def mean_input_tokens(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.input_tokens for r in self.records) / len(self.records)

    @property
    def mean_output_tokens(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.output_tokens for r in self.records) / len(self.records)

    def mean_cost(self) -> float:
        """Average USD cost per instance."""
        return PRICES[self.model].cost(
            self.mean_input_tokens, self.mean_output_tokens
        )

    def summary(self) -> Dict[str, float]:
        return {
            "input_tokens": round(self.mean_input_tokens, 2),
            "output_tokens": round(self.mean_output_tokens, 2),
            "cost_per_instance": self.mean_cost(),
        }
