"""Knowledge representation: typed rules, application, seeds and oracles."""

from .apply import cell_markers, column_hints, pair_markers, transform_record
from .rules import (
    CandidateHint,
    FormatConstraint,
    IgnoreAttribute,
    KeyAttribute,
    KeyPattern,
    Knowledge,
    MissingValuePolicy,
    PatternLabelHint,
    Rule,
    ValueRange,
    VocabConstraint,
)
from .seed import oracle_knowledge, seed_knowledge

__all__ = [
    "Knowledge",
    "Rule",
    "KeyAttribute",
    "KeyPattern",
    "IgnoreAttribute",
    "MissingValuePolicy",
    "FormatConstraint",
    "VocabConstraint",
    "ValueRange",
    "CandidateHint",
    "PatternLabelHint",
    "cell_markers",
    "column_hints",
    "pair_markers",
    "transform_record",
    "seed_knowledge",
    "oracle_knowledge",
]
