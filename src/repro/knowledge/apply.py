"""Applying knowledge to prompts — how the DP-LLM *uses* knowledge.

In the paper, knowledge is text prepended to the prompt and the LLM's
reasoning turns it into behaviour.  In this substrate the same causal
chain is made explicit: each rule both contributes prompt text
(:meth:`Knowledge.render`) and deterministically derives canonical
marker tokens (``[missing]``, ``[fmt_violation]``, ``[key_match]`` …)
from the record under that rule.  The upstream DP-LLM is instruction-
tuned on prompts containing the same canonical markers, so a correct
downstream rule immediately speaks a language the model already
grounds — the mechanism behind AKB's inference-time gains.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import re

from ..data.schema import Record
from . import validators
from .rules import (
    FormatConstraint,
    IgnoreAttribute,
    KeyAttribute,
    KeyPattern,
    Knowledge,
    MissingValuePolicy,
    PatternLabelHint,
    ValueRange,
    VocabConstraint,
)

__all__ = [
    "MARKER_MISSING",
    "MARKER_FORMAT",
    "MARKER_VOCAB",
    "MARKER_RANGE",
    "MARKER_OK",
    "MARKER_KEY_MATCH",
    "MARKER_KEY_MISMATCH",
    "transform_record",
    "cell_markers",
    "pair_markers",
    "column_hints",
]

MARKER_MISSING = "[missing]"
MARKER_FORMAT = "[fmt_violation]"
MARKER_VOCAB = "[vocab_violation]"
MARKER_RANGE = "[range_violation]"
MARKER_OK = "[checks_pass]"
MARKER_KEY_MATCH = "[key_match]"
MARKER_KEY_MISMATCH = "[key_mismatch]"


def transform_record(record: Record, knowledge: Knowledge) -> Record:
    """Drop ignored attributes prior to serialisation."""
    ignored = [
        rule.attribute for rule in knowledge.rules_of(IgnoreAttribute)
    ]
    return record.without(ignored) if ignored else record


def _violates(value: str, rule) -> bool:
    """Does ``value`` violate a single cell-level rule?"""
    lowered = value.strip().lower()
    if isinstance(rule, FormatConstraint):
        return not validators.validate(rule.validator, lowered)
    if isinstance(rule, VocabConstraint):
        return not validators.bank_contains(rule.bank, lowered)
    if isinstance(rule, ValueRange):
        try:
            number = float(lowered)
        except ValueError:
            return True
        return not rule.low <= number <= rule.high
    return False


def cell_markers(
    record: Record, attribute: str, knowledge: Knowledge
) -> List[str]:
    """Derived markers for one cell under the given knowledge.

    Used by ED/DC/DI prompts: rules that target ``attribute`` are
    checked against its value; a :class:`MissingValuePolicy` flags raw
    missing markers.  When at least one applicable check exists and all
    pass, :data:`MARKER_OK` is emitted — grounded negative evidence is
    as valuable as violations.
    """
    value = record.get(attribute)
    markers: List[str] = []
    if knowledge.first_of(MissingValuePolicy) and record.is_missing(attribute):
        markers.append(MARKER_MISSING)
    checked = False
    for rule in knowledge.rules:
        target = getattr(rule, "attribute", None)
        if target != attribute:
            continue
        if isinstance(rule, (FormatConstraint, VocabConstraint, ValueRange)):
            if record.is_missing(attribute):
                # A missing value cannot satisfy any constraint.
                if MARKER_MISSING not in markers:
                    markers.append(MARKER_MISSING)
                continue
            checked = True
            if _violates(value, rule):
                markers.append(
                    {
                        FormatConstraint: MARKER_FORMAT,
                        VocabConstraint: MARKER_VOCAB,
                        ValueRange: MARKER_RANGE,
                    }[type(rule)]
                )
    if checked and not any(
        m in markers for m in (MARKER_FORMAT, MARKER_VOCAB, MARKER_RANGE)
    ):
        markers.append(MARKER_OK)
    return markers


def _token_overlap(left: str, right: str) -> float:
    left_tokens = set(left.split())
    right_tokens = set(right.split())
    if not left_tokens or not right_tokens:
        return 0.0
    return len(left_tokens & right_tokens) / len(left_tokens | right_tokens)


def _values_agree(left: str, right: str) -> bool:
    left, right = left.strip().lower(), right.strip().lower()
    if left == right:
        return True
    if left in right or right in left:
        return True
    return _token_overlap(left, right) >= 0.6


_KEY_PATTERNS = {
    "model_number": re.compile(r"\b[a-z]{2,3}-\d{3,4}\b"),
    "capacity": re.compile(r"\b\d+(?:gb|tb)\b"),
}


def _extract_keys(record: Record, pattern: str) -> set:
    text = " ".join(value.lower() for __, value in record)
    return set(_KEY_PATTERNS[pattern].findall(text))


def pair_markers(
    left: Record, right: Record, knowledge: Knowledge
) -> List[str]:
    """Derived markers for a matching pair (EM).

    Each :class:`KeyAttribute` rule compares the key value across the
    two records — the substrate analogue of "check whether the model
    numbers agree".  :class:`KeyPattern` rules extract identifier-shaped
    tokens from the full record text instead, covering datasets whose
    keys are embedded in titles.
    """
    markers: List[str] = []
    skip_missing = knowledge.first_of(MissingValuePolicy) is not None
    for rule in knowledge.rules_of(KeyAttribute):
        attribute = rule.attribute
        left_value, right_value = left.get(attribute), right.get(attribute)
        left_missing = left.is_missing(attribute) or not left_value
        right_missing = right.is_missing(attribute) or not right_value
        if left_missing or right_missing:
            if skip_missing:
                continue
            markers.append(MARKER_MISSING)
            continue
        if _values_agree(left_value, right_value):
            markers.append(MARKER_KEY_MATCH)
        else:
            markers.append(MARKER_KEY_MISMATCH)
    for rule in knowledge.rules_of(KeyPattern):
        left_keys = _extract_keys(left, rule.pattern)
        right_keys = _extract_keys(right, rule.pattern)
        if not left_keys or not right_keys:
            continue
        if left_keys & right_keys:
            markers.append(MARKER_KEY_MATCH)
        else:
            markers.append(MARKER_KEY_MISMATCH)
    return markers


# ---------------------------------------------------------------------------
# Column-type pattern hints (CTA)
# ---------------------------------------------------------------------------
def _matches_pattern(pattern: str, value: str) -> bool:
    value = value.strip().lower()
    if pattern == "two_letter_code":
        return len(value) == 2 and value.isalpha()
    if pattern == "schema_org_url":
        return value.startswith("https://schema.org/")
    if pattern == "dollar_run":
        return bool(value) and set(value) == {"$"}
    if pattern == "numeric_pair":
        parts = [p.strip() for p in value.split(",")]
        if len(parts) != 2:
            return False
        try:
            float(parts[0]), float(parts[1])
        except ValueError:
            return False
        return True
    if pattern == "long_text":
        return len(value.split()) >= 6
    if pattern == "iso_date":
        return validators.validate("iso_date", value)
    if pattern == "phone_like":
        digits = sum(ch.isdigit() for ch in value)
        return value.startswith("+") and digits >= 8
    if pattern == "five_digits":
        return len(value) == 5 and value.isdigit()
    if pattern == "org_suffix":
        return value.split()[-1] in ("inc", "ltd", "group", "association") if value else False
    if pattern == "locality_words":
        words = value.split()
        return bool(words) and all(w.isalpha() for w in words) and 1 <= len(words) <= 4
    raise ValueError(f"unknown column pattern {pattern!r}")


def column_observations(
    values: Sequence[str], threshold: float = 0.8
) -> List[str]:
    """Knowledge-independent pattern observations over a column sample.

    Emits one discrete token per generic surface pattern the values
    match ("pattern two letter code") — the substrate analogue of an
    LLM simply *seeing* what the cells look like.  All models receive
    these; :func:`column_hints` adds label suggestions on top when
    knowledge provides them.
    """
    observations: List[str] = []
    if not values:
        return observations
    for pattern in PatternLabelHint._PATTERNS:
        matching = sum(1 for v in values if _matches_pattern(pattern, v))
        if matching / len(values) >= threshold:
            observations.append("pattern " + pattern.replace("_", " "))
    return observations


def column_hints(
    values: Sequence[str], knowledge: Knowledge, threshold: float = 0.8
) -> List[str]:
    """Label hints fired by the column's value sample.

    A :class:`PatternLabelHint` fires when at least ``threshold`` of the
    sampled values match its pattern; the hint injects the suggested
    label into the prompt, which the copy-biased model can then align
    with the matching candidate label.
    """
    hints: List[str] = []
    if not values:
        return hints
    for rule in knowledge.rules_of(PatternLabelHint):
        matching = sum(
            1 for value in values if _matches_pattern(rule.pattern, value)
        )
        if matching / len(values) >= threshold:
            hints.append(f"these values look like {rule.label}")
    return hints
