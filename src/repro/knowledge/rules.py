"""Typed dataset-informed knowledge.

A :class:`Knowledge` object is the machine-readable form of the "prompt
knowledge" AKB searches for: a bag of typed rules plus free-text notes.
Every rule renders to natural-language text (what gets inserted into the
prompt and counted for token costs, paper Table III) and drives a
concrete prompt transformation in :mod:`repro.knowledge.apply` (how a
real LLM would *use* that text).

Serialisation round-trips through plain dicts so knowledge candidates
can be pooled, compared and logged by the AKB optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from . import validators

__all__ = [
    "Rule",
    "KeyAttribute",
    "KeyPattern",
    "IgnoreAttribute",
    "MissingValuePolicy",
    "FormatConstraint",
    "VocabConstraint",
    "ValueRange",
    "CandidateHint",
    "PatternLabelHint",
    "Knowledge",
]


@dataclass(frozen=True)
class Rule:
    """Base class for all knowledge rules."""

    def render(self) -> str:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        data = {"kind": type(self).__name__}
        data.update(self.__dict__)
        return data


@dataclass(frozen=True)
class KeyAttribute(Rule):
    """The attribute that decides matching tasks (model numbers etc.)."""

    attribute: str

    def render(self) -> str:
        return f"the primary identifier is the {self.attribute} attribute"


@dataclass(frozen=True)
class IgnoreAttribute(Rule):
    """An attribute that should be disregarded (prices across stores)."""

    attribute: str

    def render(self) -> str:
        return f"the {self.attribute} attribute can be disregarded"


@dataclass(frozen=True)
class MissingValuePolicy(Rule):
    """Canonicalise missing markers; matching tasks skip missing cells."""

    def render(self) -> str:
        return (
            "values like nan or n/a are missing; focus on comparing the "
            "other attributes"
        )


@dataclass(frozen=True)
class FormatConstraint(Rule):
    """A named format validator the attribute's clean values satisfy."""

    attribute: str
    validator: str

    def __post_init__(self) -> None:
        validators.describe(self.validator)  # raises on unknown names

    def render(self) -> str:
        return (
            f"the {self.attribute} attribute must be "
            f"{validators.describe(self.validator)}"
        )


@dataclass(frozen=True)
class VocabConstraint(Rule):
    """Clean values of the attribute draw from a known vocabulary bank."""

    attribute: str
    bank: str

    def __post_init__(self) -> None:
        if self.bank not in validators.BANKS:
            raise KeyError(f"unknown vocabulary bank {self.bank!r}")

    def render(self) -> str:
        return (
            f"the {self.attribute} attribute uses known "
            f"{self.bank.replace('_', ' ')}; check its spelling"
        )


@dataclass(frozen=True)
class ValueRange(Rule):
    """Numeric plausibility range for an attribute."""

    attribute: str
    low: float
    high: float

    def render(self) -> str:
        return (
            f"the {self.attribute} attribute should be between "
            f"{self.low:g} and {self.high:g}"
        )


@dataclass(frozen=True)
class KeyPattern(Rule):
    """Key identifiers matched by pattern anywhere in the record text.

    Covers datasets whose deciding identifier is embedded inside a title
    rather than stored in its own attribute (Abt-Buy model numbers).
    Known patterns: ``model_number`` and ``capacity``.
    """

    pattern: str

    _KNOWN = ("model_number", "capacity")

    def __post_init__(self) -> None:
        if self.pattern not in self._KNOWN:
            raise ValueError(f"unknown key pattern {self.pattern!r}")

    def render(self) -> str:
        return (
            f"the primary identifiers are the "
            f"{self.pattern.replace('_', ' ')}s found in the text"
        )


@dataclass(frozen=True)
class CandidateHint(Rule):
    """Where the answer of a generation task lives.

    Strategies understood by the task candidate generators:

    * ``title_prefix`` — the answer opens the product name (Flipkart)
    * ``known_brand``  — the answer is the first bank-recognised brand
    * ``derive``       — derive the value from related attributes (DC)
    * ``descriptive_first`` — descriptive terms outrank brand names (OA)
    """

    strategy: str
    bank: str = ""

    _KNOWN = ("title_prefix", "known_brand", "derive", "descriptive_first")

    def __post_init__(self) -> None:
        if self.strategy not in self._KNOWN:
            raise ValueError(f"unknown candidate strategy {self.strategy!r}")
        if self.bank and self.bank not in validators.BANKS:
            raise KeyError(f"unknown vocabulary bank {self.bank!r}")

    def render(self) -> str:
        texts = {
            "title_prefix": "the value usually opens the product name",
            "known_brand": "look for the first recognizable brand name",
            "derive": "derive missing values from the related attributes",
            "descriptive_first": (
                "prioritize descriptive terms such as flavors or scents "
                "over brand names"
            ),
        }
        text = texts[self.strategy]
        if self.bank:
            text += f" (known {self.bank.replace('_', ' ')})"
        return text


@dataclass(frozen=True)
class PatternLabelHint(Rule):
    """Column-type tell: when values match a pattern, suggest a label."""

    pattern: str
    label: str

    _PATTERNS = (
        "two_letter_code", "schema_org_url", "dollar_run", "numeric_pair",
        "long_text", "iso_date", "phone_like", "five_digits", "org_suffix",
        "locality_words",
    )

    def __post_init__(self) -> None:
        if self.pattern not in self._PATTERNS:
            raise ValueError(f"unknown column pattern {self.pattern!r}")

    def render(self) -> str:
        return (
            f"columns whose values look like {self.pattern.replace('_', ' ')} "
            f"are usually {self.label}"
        )


_RULE_TYPES = {
    cls.__name__: cls
    for cls in (
        KeyAttribute,
        KeyPattern,
        IgnoreAttribute,
        MissingValuePolicy,
        FormatConstraint,
        VocabConstraint,
        ValueRange,
        CandidateHint,
        PatternLabelHint,
    )
}


@dataclass(frozen=True)
class Knowledge:
    """A knowledge candidate ρ: typed rules plus optional free text."""

    rules: Tuple[Rule, ...] = ()
    notes: str = ""

    @staticmethod
    def empty() -> "Knowledge":
        return Knowledge()

    def render(self) -> str:
        """The prompt text this knowledge contributes."""
        parts = [rule.render() for rule in self.rules]
        if self.notes:
            parts.append(self.notes)
        if not parts:
            return ""
        return "knowledge: " + ". ".join(parts) + "."

    def with_rule(self, rule: Rule) -> "Knowledge":
        if rule in self.rules:
            return self
        return Knowledge(rules=self.rules + (rule,), notes=self.notes)

    def without_rule(self, rule: Rule) -> "Knowledge":
        return Knowledge(
            rules=tuple(r for r in self.rules if r != rule), notes=self.notes
        )

    def merged(self, other: "Knowledge") -> "Knowledge":
        combined = list(self.rules)
        for rule in other.rules:
            if rule not in combined:
                combined.append(rule)
        notes = self.notes
        if other.notes and other.notes not in notes:
            notes = (notes + " " + other.notes).strip()
        return Knowledge(rules=tuple(combined), notes=notes)

    def rules_of(self, rule_type: type) -> List[Rule]:
        return [rule for rule in self.rules if isinstance(rule, rule_type)]

    def first_of(self, rule_type: type) -> Optional[Rule]:
        found = self.rules_of(rule_type)
        return found[0] if found else None

    def __bool__(self) -> bool:
        return bool(self.rules) or bool(self.notes)

    def __len__(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "notes": self.notes,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Knowledge":
        rules = []
        for item in data.get("rules", ()):
            payload = dict(item)
            kind = payload.pop("kind")
            if kind not in _RULE_TYPES:
                raise KeyError(f"unknown rule kind {kind!r}")
            rules.append(_RULE_TYPES[kind](**payload))
        return Knowledge(rules=tuple(rules), notes=data.get("notes", ""))

    @staticmethod
    def combine(pieces: Iterable["Knowledge"]) -> "Knowledge":
        result = Knowledge.empty()
        for piece in pieces:
            result = result.merged(piece)
        return result
