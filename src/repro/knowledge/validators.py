"""Named value validators used by format-constraint knowledge rules.

A validator is a predicate over one cell value.  Knowledge rules refer
to validators *by name* so that rules stay serialisable text (the same
way the paper's knowledge is plain prompt text); the rule applier and
MockGPT's rule-induction both consult this registry.  Vocabulary
membership checks get their banks from :data:`BANKS`.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Sequence, Tuple

from ..data import vocab
from ..data.schema import MISSING_MARKERS

__all__ = ["VALIDATORS", "BANKS", "validate", "bank_contains", "describe"]

_TIME_12H = re.compile(r"^\d{1,2}:\d{2} [ap]\.m\. [a-z]{3} \d{1,2}$")
_ISO_DATE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_ISSN = re.compile(r"^\d{4}-\d{4}$")
_FLIGHT_CODE = re.compile(r"^[a-z0-9]{2}-\d+-[a-z]{3}-[a-z]{3}$")
_PAGINATION = re.compile(r"^\d+-\d+$")
_PHONE_SPACED = re.compile(r"^\d{3} \d{3} \d{4}$")


def _is_float(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True


def _is_int(value: str) -> bool:
    return value.isdigit()


def _unit_decimal(value: str) -> bool:
    return _is_float(value) and 0.0 <= float(value) <= 1.0


#: name -> (predicate, human-readable description for knowledge text)
VALIDATORS: Dict[str, Tuple[Callable[[str], bool], str]] = {
    "time_12h": (
        lambda v: bool(_TIME_12H.match(v)),
        "a 12-hour time like '7:10 a.m. dec 1'",
    ),
    "iso_date": (
        lambda v: bool(_ISO_DATE.match(v)),
        "an ISO date in YYYY-MM-DD format",
    ),
    "issn": (lambda v: bool(_ISSN.match(v)), "an ISSN matching dddd-dddd"),
    "flight_code": (
        lambda v: bool(_FLIGHT_CODE.match(v)),
        "a dashed flight code like aa-1007-ord-phx",
    ),
    "pagination": (
        lambda v: bool(_PAGINATION.match(v)),
        "a page range like 120-131",
    ),
    "unit_decimal": (
        _unit_decimal,
        "a decimal between 0 and 1 without a percent sign",
    ),
    "integer": (_is_int, "a plain integer"),
    "numeric": (_is_float, "a numeric value"),
    "no_percent": (lambda v: "%" not in v, "free of percent signs"),
    "phone_spaced": (
        lambda v: bool(_PHONE_SPACED.match(v)),
        "a space-separated phone number like 303 555 0147",
    ),
    "not_missing": (
        lambda v: v.strip().lower() not in MISSING_MARKERS,
        "present (nan/n-a are errors)",
    ),
}

#: Vocabulary banks addressable from knowledge rules.
BANKS: Dict[str, Tuple[str, ...]] = {
    "cities": vocab.CITIES,
    "states": vocab.STATES,
    "beer_styles": vocab.BEER_STYLES,
    "phone_brands": vocab.PHONE_BRANDS,
    "electronics_brands": vocab.ELECTRONICS_BRANDS,
    "retail_brands": vocab.RETAIL_BRANDS,
    "grocery_brands": vocab.GROCERY_BRANDS,
    "flavors": vocab.FLAVORS,
    "scents": vocab.SCENTS,
    "journal_titles": tuple(t for t, __ in vocab.JOURNALS),
    "journal_abbreviations": tuple(a for __, a in vocab.JOURNALS),
    "colors": vocab.COLORS,
    "materials": vocab.MATERIALS,
    "genders": vocab.GENDERS,
    "sport_types": vocab.SPORT_TYPES,
    "features": vocab.FEATURES,
    "cuisines": vocab.CUISINES,
    "item_forms": vocab.ITEM_FORMS,
    "brewery_words": vocab.BEER_ADJECTIVES + vocab.BEER_NOUNS + vocab.BREWERY_SUFFIXES,
    "beer_words": vocab.BEER_ADJECTIVES
    + vocab.BEER_NOUNS
    + tuple(s.split()[-1] for s in vocab.BEER_STYLES),
    "academic_words": vocab.ACADEMIC_WORDS,
}


def validate(name: str, value: str) -> bool:
    """Apply a named validator to one value."""
    if name not in VALIDATORS:
        raise KeyError(f"unknown validator {name!r}")
    predicate, __ = VALIDATORS[name]
    return predicate(value.strip().lower())


def describe(name: str) -> str:
    """Human-readable description of a named validator."""
    if name not in VALIDATORS:
        raise KeyError(f"unknown validator {name!r}")
    return VALIDATORS[name][1]


def bank_contains(bank_name: str, value: str) -> bool:
    """True when every word of ``value`` appears in the named bank.

    Multi-word banks (e.g. ``beer_styles``) are flattened to a word set;
    this keeps the check robust to composed names ("hoppy trail ipa").
    """
    if bank_name not in BANKS:
        raise KeyError(f"unknown bank {bank_name!r}")
    words = set()
    for entry in BANKS[bank_name]:
        words.update(entry.split())
    return all(word in words for word in value.strip().lower().split())
