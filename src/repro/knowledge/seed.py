"""Seed and oracle knowledge.

*Seed* knowledge is the generic, handcrafted starting point that the
task prompt templates already contain (paper Listing 1: "errors may
include spelling errors, missing values, …").  *Oracle* knowledge is
the complete set of latent rules a generator injected — the ceiling AKB
searches toward.  Oracle knowledge is used three ways:

1. grounding: upstream SFT prompts are built with each upstream
   dataset's oracle knowledge, which teaches the model the canonical
   marker vocabulary;
2. tests: AKB's searched knowledge is compared against the oracle;
3. an upper-bound ablation bench.

It is never given to a model being *evaluated* on a downstream dataset.
"""

from __future__ import annotations

from typing import Dict

from .rules import (
    CandidateHint,
    FormatConstraint,
    IgnoreAttribute,
    KeyAttribute,
    KeyPattern,
    Knowledge,
    MissingValuePolicy,
    PatternLabelHint,
    ValueRange,
    VocabConstraint,
)

__all__ = ["seed_knowledge", "oracle_knowledge", "ORACLES"]

_TASK_SEEDS: Dict[str, Knowledge] = {
    "ed": Knowledge(rules=(MissingValuePolicy(),)),
    "dc": Knowledge(rules=(MissingValuePolicy(),)),
    "em": Knowledge(rules=(MissingValuePolicy(),)),
    "sm": Knowledge(),
    "di": Knowledge(),
    "cta": Knowledge(),
    "ave": Knowledge(),
    "qa": Knowledge(),
}


def seed_knowledge(task: str) -> Knowledge:
    """Generic handcrafted knowledge for a task (paper seed prompts)."""
    if task not in _TASK_SEEDS:
        raise KeyError(f"unknown task {task!r}")
    return _TASK_SEEDS[task]


_FLIGHTS = Knowledge(
    rules=(
        MissingValuePolicy(),
        FormatConstraint("scheduled_departure", "time_12h"),
        FormatConstraint("actual_departure", "time_12h"),
        FormatConstraint("scheduled_arrival", "time_12h"),
        FormatConstraint("actual_arrival", "time_12h"),
        FormatConstraint("flight", "flight_code"),
    ),
)

_RAYYAN_ED = Knowledge(
    rules=(
        MissingValuePolicy(),
        FormatConstraint("article_jcreated_at", "iso_date"),
        FormatConstraint("journal_issn", "issn"),
        FormatConstraint("article_pagination", "pagination"),
        FormatConstraint("article_jvolumn", "integer"),
        FormatConstraint("article_jissue", "integer"),
        VocabConstraint("journal_title", "journal_titles"),
        VocabConstraint("journal_abbreviation", "journal_abbreviations"),
        VocabConstraint("article_title", "academic_words"),
    ),
    notes="0 is a valid issue or volume value",
)

_BEER_ED = Knowledge(
    rules=(
        MissingValuePolicy(),
        FormatConstraint("abv", "unit_decimal"),
        FormatConstraint("ibu", "integer"),
        FormatConstraint("ounces", "numeric"),
        VocabConstraint("style", "beer_styles"),
        VocabConstraint("city", "cities"),
        VocabConstraint("beer_name", "beer_words"),
        VocabConstraint("brewery_name", "brewery_words"),
    ),
    notes="abv never carries a percent sign",
)

ORACLES: Dict[str, Knowledge] = {
    "ed/flights": _FLIGHTS,
    "ed/rayyan": _RAYYAN_ED,
    "ed/beer": _BEER_ED,
    "di/flipkart": Knowledge(
        rules=(
            CandidateHint("title_prefix"),
            CandidateHint("known_brand", bank="retail_brands"),
        ),
    ),
    "di/phone": Knowledge(
        rules=(CandidateHint("known_brand", bank="phone_brands"),),
    ),
    "sm/cms": Knowledge(
        notes=(
            "focus on the semantic meaning of the descriptions; start and "
            "end dates and different coding systems are not equivalent"
        ),
    ),
    "em/abt_buy": Knowledge(
        rules=(
            MissingValuePolicy(),
            KeyPattern("model_number"),
            IgnoreAttribute("price"),
        ),
    ),
    "em/walmart_amazon": Knowledge(
        rules=(
            MissingValuePolicy(),
            KeyAttribute("modelno"),
            KeyAttribute("capacity"),
            IgnoreAttribute("price"),
        ),
    ),
    "cta/sotab": Knowledge(
        rules=(
            PatternLabelHint("two_letter_code", "country"),
            PatternLabelHint("schema_org_url", "event_status"),
            PatternLabelHint("long_text", "description"),
            PatternLabelHint("numeric_pair", "coordinate"),
            PatternLabelHint("dollar_run", "price_range"),
            PatternLabelHint("phone_like", "telephone"),
            PatternLabelHint("iso_date", "date"),
            PatternLabelHint("five_digits", "postal_code"),
            PatternLabelHint("org_suffix", "organization"),
        ),
    ),
    "ave/ae110k": Knowledge(
        rules=(
            VocabConstraint("sport type", "sport_types"),
            VocabConstraint("feature", "features"),
            VocabConstraint("gender", "genders"),
            VocabConstraint("color", "colors"),
            VocabConstraint("material", "materials"),
        ),
        notes="default to n/a when the title does not mention the attribute",
    ),
    "ave/oa_mine": Knowledge(
        rules=(
            CandidateHint("descriptive_first", bank="grocery_brands"),
            VocabConstraint("flavor", "flavors"),
            VocabConstraint("scent", "scents"),
            VocabConstraint("brand", "grocery_brands"),
            VocabConstraint("item form", "item_forms"),
        ),
    ),
    "dc/rayyan": Knowledge(
        rules=(
            MissingValuePolicy(),
            CandidateHint("derive"),
            FormatConstraint("article_jcreated_at", "iso_date"),
            FormatConstraint("journal_issn", "issn"),
            VocabConstraint("journal_title", "journal_titles"),
            VocabConstraint("journal_abbreviation", "journal_abbreviations"),
            VocabConstraint("article_title", "academic_words"),
        ),
    ),
    "dc/beer": Knowledge(
        rules=(
            MissingValuePolicy(),
            FormatConstraint("abv", "unit_decimal"),
            VocabConstraint("style", "beer_styles"),
            VocabConstraint("city", "cities"),
            VocabConstraint("beer_name", "beer_words"),
            VocabConstraint("brewery_name", "brewery_words"),
        ),
    ),
    # ---- upstream oracles (ground the canonical marker vocabulary) ----
    "up/adult": Knowledge(
        rules=(
            MissingValuePolicy(),
            ValueRange("age", 17, 80),
            ValueRange("hours_per_week", 10, 70),
        ),
    ),
    "up/hospital": Knowledge(
        rules=(
            MissingValuePolicy(),
            VocabConstraint("city", "cities"),
            VocabConstraint("state", "states"),
            FormatConstraint("phone", "phone_spaced"),
        ),
    ),
    "up/buy": Knowledge(
        rules=(CandidateHint("known_brand", bank="electronics_brands"),),
    ),
    "up/restaurant": Knowledge(
        rules=(
            CandidateHint("derive"),
            VocabConstraint("city", "cities"),
        ),
    ),
    "up/mimic": Knowledge(),
    "up/synthea": Knowledge(),
    "up/amazon_google": Knowledge(
        rules=(
            MissingValuePolicy(),
            KeyPattern("model_number"),
            IgnoreAttribute("price"),
        ),
    ),
    "up/beer_em": Knowledge(
        rules=(MissingValuePolicy(), KeyAttribute("beer_name")),
    ),
    "up/dblp_acm": Knowledge(
        rules=(MissingValuePolicy(), KeyAttribute("title")),
    ),
    "up/dblp_scholar": Knowledge(
        rules=(MissingValuePolicy(), KeyAttribute("title")),
    ),
    "up/fodors_zagats": Knowledge(
        rules=(MissingValuePolicy(), KeyAttribute("name")),
    ),
    "up/itunes_amazon": Knowledge(
        rules=(
            MissingValuePolicy(),
            KeyAttribute("song_name"),
            KeyAttribute("time"),
            IgnoreAttribute("price"),
        ),
    ),
}


def oracle_knowledge(dataset_id: str) -> Knowledge:
    """The latent ground-truth knowledge for a generated dataset."""
    if dataset_id not in ORACLES:
        raise KeyError(f"no oracle knowledge for {dataset_id!r}")
    return ORACLES[dataset_id]
