"""Persistent cross-dataset knowledge base — retrieve-then-refine AKB.

Every AKB search used to start from a cold ``generate_pool`` and its
discovered knowledge died with the run.  This module is the durable
bank those runs promote into: each entry is a typed
:class:`~repro.knowledge.rules.Knowledge` candidate plus the score it
measured on the dataset it was searched for, indexed by that dataset's
profile feature vector (:meth:`repro.data.profiling.DatasetProfile.
feature_vector`).  On a new dataset, the optimizer retrieves the top-k
nearest-profile entries (cosine over normalized vectors, task-type
filtered) and seeds the candidate pool with them — turning the cold
iterative search into retrieve-then-refine.  After each search the
winning candidates are promoted back, so the bank compounds across
runs, shards and serving tenants.

Storage layout (a versioned ``kb/`` namespace beside the artifact
store's content-addressed kinds, usually ``<cache-dir>/kb/``)::

    kb/
      VERSION                  # {"version": KB_VERSION}, written once
      entries/<id>.json        # loose entries — one atomic file each
      segments/<digest>.jsonl  # compacted entry batches
      claims/<id>.claim        # O_CREAT|O_EXCL promotion markers

*Atomic append*: promoting writes one new ``entries/<id>.json`` via
tmp-file + rename (:func:`repro.store.atomic_write_bytes`), so readers
never observe a partial entry and any number of forked shard workers
can promote concurrently with no locks.  The entry id is the content
address of ``(task, dataset fingerprint, vector, knowledge)``, so
concurrent promoters of the same discovery race benignly — the claim
file (the same ``O_CREAT|O_EXCL`` idiom :mod:`repro.shard` uses for
grid cells) lets the losers skip the write entirely, and a claimant
that died before writing is healed by checking for the entry's actual
presence.

*Compaction* folds loose entries into a single ``segments/*.jsonl``
batch (claim-guarded so only one compactor runs; a dead compactor's
claim is reclaimed by pid liveness).  *Self-healing*: any entry or
segment line that fails to parse or validate is dropped on read and
unlinked by :meth:`KnowledgeBase.heal` — exactly the
corrupt-entry-behaves-like-a-miss contract of the artifact store.

Observability: ``kb.{hit,miss,promote,evict}`` counters, a
``kb.retrieval_similarity`` gauge per retrieval and a ``kb.retrieve``
span around the index scan (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
import math
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from .rules import Knowledge

__all__ = [
    "KB_VERSION",
    "KBEntry",
    "KnowledgeBase",
    "active_kb",
    "configure",
    "enabled",
    "profile_vector_for",
    "resolve_use_kb",
]

#: Bump to orphan every existing entry (version-mismatched entries are
#: skipped on read and removed by ``heal``), mirroring the artifact
#: store's schema-version contract.
KB_VERSION = 1

_ENTRY_FIELDS = ("id", "task", "dataset", "fingerprint", "vector",
                 "knowledge", "score", "promoted_at", "version")


@dataclass(frozen=True)
class KBEntry:
    """One promoted discovery: knowledge plus its measured context."""

    entry_id: str
    task: str
    dataset: str
    fingerprint: str
    vector: Tuple[float, ...]
    knowledge: Knowledge
    score: float
    promoted_at: float

    def to_dict(self) -> Dict:
        return {
            "version": KB_VERSION,
            "id": self.entry_id,
            "task": self.task,
            "dataset": self.dataset,
            "fingerprint": self.fingerprint,
            "vector": list(self.vector),
            "knowledge": self.knowledge.to_dict(),
            "score": float(self.score),
            "promoted_at": float(self.promoted_at),
        }

    @staticmethod
    def from_dict(data: Dict) -> Optional["KBEntry"]:
        """Validated deserialisation; ``None`` on anything unexpected."""
        if not isinstance(data, dict):
            return None
        if data.get("version") != KB_VERSION:
            return None
        if any(field not in data for field in _ENTRY_FIELDS):
            return None
        try:
            vector = tuple(float(v) for v in data["vector"])
            if any(not math.isfinite(v) for v in vector):
                return None
            return KBEntry(
                entry_id=str(data["id"]),
                task=str(data["task"]),
                dataset=str(data["dataset"]),
                fingerprint=str(data["fingerprint"]),
                vector=vector,
                knowledge=Knowledge.from_dict(data["knowledge"]),
                score=float(data["score"]),
                promoted_at=float(data["promoted_at"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


def _entry_id(
    task: str, fingerprint: str, vector: Sequence[float], knowledge: Knowledge
) -> str:
    """Content address of one discovery (score-independent, so a
    re-promotion of the same knowledge overwrites rather than piles up)."""
    from .. import store as artifact_store

    return artifact_store.fingerprint(
        {
            "kb_version": KB_VERSION,
            "task": task,
            "dataset": fingerprint,
            "vector": [float(v) for v in vector],
            "knowledge": knowledge,
        }
    )


#: Memo of computed profile vectors, keyed by ``(fingerprint,
#: FEATURE_VERSION)``.  Profiling walks every value of every example
#: through the format validators (~20ms for a 20-shot split) — pure in
#: the dataset contents *and* the feature layout, so one computation per
#: distinct dataset per layout per process is enough.  Keying by the
#: layout version means a ``FEATURE_VERSION`` bump (e.g. a test or a
#: hot-reload swapping the layout) can never serve a stale vector shaped
#: for the old basis.
_VECTOR_CACHE: Dict[Tuple[str, int], Tuple[float, ...]] = {}


def profile_vector_for(dataset) -> Tuple[Tuple[float, ...], str]:
    """``(feature_vector, fingerprint)`` of a dataset, memoised.

    The fingerprint doubles as retrieval's self-exclusion key, so every
    KB call site needs both anyway.
    """
    from .. import store as artifact_store
    from ..data import profiling
    from ..data.profiling import profile_dataset

    fingerprint = artifact_store.fingerprint(dataset)
    key = (fingerprint, profiling.FEATURE_VERSION)
    vector = _VECTOR_CACHE.get(key)
    if vector is None:
        vector = tuple(
            float(v) for v in profile_dataset(dataset).feature_vector()
        )
        _VECTOR_CACHE[key] = vector
    return vector, fingerprint


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na <= 0.0 or nb <= 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


class KnowledgeBase:
    """The persistent, profile-indexed bank of searched knowledge."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- paths ----------------------------------------------------------
    @property
    def entries_dir(self) -> Path:
        return self.root / "entries"

    @property
    def segments_dir(self) -> Path:
        return self.root / "segments"

    @property
    def claims_dir(self) -> Path:
        return self.root / "claims"

    def _ensure_layout(self) -> None:
        from ..store import atomic_write_bytes

        for path in (self.entries_dir, self.segments_dir, self.claims_dir):
            path.mkdir(parents=True, exist_ok=True)
        version_file = self.root / "VERSION"
        if not version_file.exists():
            atomic_write_bytes(
                version_file,
                json.dumps({"version": KB_VERSION}).encode("utf-8"),
            )

    # -- reading --------------------------------------------------------
    def _iter_raw(self) -> Iterator[Tuple[Path, Optional[int], Dict]]:
        """Yield ``(path, segment_line, payload_dict)`` for every stored
        record; unparseable payloads yield an empty dict (corrupt)."""
        if self.entries_dir.is_dir():
            for path in sorted(self.entries_dir.glob("*.json")):
                try:
                    payload = json.loads(path.read_text())
                except (OSError, ValueError):
                    payload = {}
                yield path, None, payload if isinstance(payload, dict) else {}
        if self.segments_dir.is_dir():
            for path in sorted(self.segments_dir.glob("*.jsonl")):
                try:
                    lines = path.read_text().splitlines()
                except OSError:
                    continue
                for index, line in enumerate(lines):
                    if not line.strip():
                        continue
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        payload = {}
                    yield path, index, (
                        payload if isinstance(payload, dict) else {}
                    )

    def entries(self, task: Optional[str] = None) -> List[KBEntry]:
        """Every valid entry, deduplicated by id (newest promotion wins).

        Invalid records are skipped (a read never fails on corruption);
        :meth:`heal` removes them from disk.  Ordering is deterministic:
        sorted by entry id.
        """
        by_id: Dict[str, KBEntry] = {}
        for __path, __line, payload in self._iter_raw():
            entry = KBEntry.from_dict(payload)
            if entry is None:
                continue
            if task is not None and entry.task != task:
                continue
            current = by_id.get(entry.entry_id)
            if current is None or entry.promoted_at >= current.promoted_at:
                by_id[entry.entry_id] = entry
        return [by_id[key] for key in sorted(by_id)]

    def __len__(self) -> int:
        return len(self.entries())

    def has_entry(self, entry_id: str) -> bool:
        if (self.entries_dir / f"{entry_id}.json").exists():
            return True
        return any(entry.entry_id == entry_id for entry in self.entries())

    # -- promotion (atomic append) --------------------------------------
    def promote(
        self,
        task: str,
        dataset: str,
        fingerprint: str,
        vector: Sequence[float],
        knowledge: Knowledge,
        score: float,
    ) -> Optional[KBEntry]:
        """Append one discovery; concurrency-safe and idempotent.

        The ``O_CREAT|O_EXCL`` claim file is the fast path for the
        common race (many workers re-discovering the same knowledge):
        exactly one claimant writes the entry, the rest skip.  A lost
        claim with no entry on disk (the winner died mid-write) falls
        through to an unconditional atomic write, so a discovery can
        never be permanently lost to a crash.
        """
        from ..store import atomic_write_bytes, try_claim

        self._ensure_layout()
        vector = [float(v) for v in vector]
        entry = KBEntry(
            entry_id=_entry_id(task, fingerprint, vector, knowledge),
            task=task,
            dataset=dataset,
            fingerprint=fingerprint,
            vector=tuple(vector),
            knowledge=knowledge,
            score=float(score),
            promoted_at=time.time(),
        )
        claim = self.claims_dir / f"{entry.entry_id}.claim"
        claimed = try_claim(
            claim, {"pid": os.getpid(), "host": socket.gethostname()}
        )
        if not claimed and self.has_entry(entry.entry_id):
            return None  # already promoted — nothing to write
        atomic_write_bytes(
            self.entries_dir / f"{entry.entry_id}.json",
            (json.dumps(entry.to_dict(), sort_keys=True) + "\n").encode(),
        )
        obs.counter("kb.promote", task=task)
        return entry

    # -- retrieval ------------------------------------------------------
    def retrieve(
        self,
        vector: Sequence[float],
        task: str,
        k: int = 3,
        min_similarity: float = 0.0,
        exclude_fingerprint: Optional[str] = None,
    ) -> List[Tuple[float, KBEntry]]:
        """Top-k nearest-profile entries for one task.

        Similarity is the cosine between normalized feature vectors;
        entries of a different task, a different vector length (a
        profile-layout change) or the excluded dataset fingerprint
        never match.  Results are ordered by ``(-similarity, entry
        id)`` so retrieval is deterministic across runs and platforms.
        """
        query = np.asarray(list(vector), dtype=np.float64)
        with obs.span("kb.retrieve", task=task, k=k):
            scored: List[Tuple[float, KBEntry]] = []
            for entry in self.entries(task=task):
                if (
                    exclude_fingerprint is not None
                    and entry.fingerprint == exclude_fingerprint
                ):
                    continue
                if len(entry.vector) != len(query):
                    continue
                similarity = _cosine(
                    query, np.asarray(entry.vector, dtype=np.float64)
                )
                if similarity >= min_similarity:
                    scored.append((similarity, entry))
            scored.sort(key=lambda pair: (-pair[0], pair[1].entry_id))
            top = scored[:k]
            if top:
                obs.counter("kb.hit", task=task)
                obs.gauge("kb.retrieval_similarity", top[0][0], task=task)
            else:
                obs.counter("kb.miss", task=task)
        return top

    # -- maintenance ----------------------------------------------------
    def heal(self) -> Dict[str, int]:
        """Drop corrupt/stale records from disk; report what was removed.

        Loose files that fail to parse or validate are unlinked;
        segments containing bad lines are rewritten without them (or
        unlinked when nothing valid remains).  Version-mismatched
        entries count as corrupt — the version bump orphaned them.
        """
        from ..store import atomic_write_bytes

        report = {"corrupt_removed": 0, "kept": 0}
        segment_lines: Dict[Path, List[Tuple[bool, str]]] = {}
        for path, line, payload in self._iter_raw():
            valid = KBEntry.from_dict(payload) is not None
            if line is None:
                if valid:
                    report["kept"] += 1
                else:
                    report["corrupt_removed"] += 1
                    obs.counter("kb.evict", reason="corrupt")
                    try:
                        path.unlink()
                    except OSError:
                        pass
            else:
                segment_lines.setdefault(path, []).append(
                    (valid, json.dumps(payload, sort_keys=True))
                )
        for path, lines in segment_lines.items():
            bad = sum(1 for valid, __ in lines if not valid)
            report["kept"] += len(lines) - bad
            if not bad:
                continue
            report["corrupt_removed"] += bad
            obs.counter("kb.evict", bad, reason="corrupt")
            kept = [text for valid, text in lines if valid]
            if kept:
                atomic_write_bytes(
                    path, ("\n".join(kept) + "\n").encode("utf-8")
                )
            else:
                try:
                    path.unlink()
                except OSError:
                    pass
        return report

    def _compaction_claim(self) -> bool:
        """Win (or reclaim from a dead pid) the single-compactor claim."""
        from ..store import try_claim

        claim = self.claims_dir / "compact.claim"
        payload = {"pid": os.getpid(), "host": socket.gethostname()}
        if try_claim(claim, payload):
            return True
        try:
            owner = json.loads(claim.read_text())
            pid = int(owner.get("pid", -1))
            host = str(owner.get("host", ""))
        except (OSError, ValueError):
            pid, host = -1, ""
        if host == socket.gethostname() and pid > 0 and _pid_alive(pid):
            return False  # a live compactor owns the store
        try:
            claim.unlink()
        except OSError:
            pass
        return try_claim(claim, payload)

    def compact(self) -> Dict[str, int]:
        """Fold loose entries and old segments into one fresh segment.

        Claim-guarded so concurrent compactors cannot interleave
        deletions; entries promoted *during* a compaction are untouched
        (only the files enumerated up front are absorbed and removed).
        """
        import hashlib

        from ..store import atomic_write_bytes

        self._ensure_layout()
        if not self._compaction_claim():
            return {"compacted": 0, "segments": 0, "skipped": 1}
        try:
            loose = sorted(self.entries_dir.glob("*.json"))
            segments = sorted(self.segments_dir.glob("*.jsonl"))
            entries = self.entries()
            if not entries or (len(loose) + len(segments)) <= 1:
                return {
                    "compacted": 0,
                    "segments": len(segments),
                    "skipped": 0,
                }
            lines = [
                json.dumps(entry.to_dict(), sort_keys=True)
                for entry in entries
            ]
            body = ("\n".join(lines) + "\n").encode("utf-8")
            digest = hashlib.sha256(body).hexdigest()[:16]
            atomic_write_bytes(self.segments_dir / f"{digest}.jsonl", body)
            for path in loose + [
                p for p in segments if p.name != f"{digest}.jsonl"
            ]:
                try:
                    path.unlink()
                except OSError:
                    pass
            return {
                "compacted": len(entries),
                "segments": 1,
                "skipped": 0,
            }
        finally:
            try:
                (self.claims_dir / "compact.claim").unlink()
            except OSError:
                pass

    def prune(
        self,
        min_score: Optional[float] = None,
        max_entries: Optional[int] = None,
        task: Optional[str] = None,
    ) -> Dict[str, int]:
        """Evict low-value entries; rewrite the survivors compacted.

        ``min_score`` drops entries scoring below the floor;
        ``max_entries`` keeps only the highest-scored (ties broken by
        id for determinism); ``task`` restricts eviction to one task's
        entries.  Safe at any point — the KB is advisory, a pruned
        entry just means one more cold search somewhere.
        """
        from ..store import atomic_write_bytes

        everything = self.entries()
        keep: List[KBEntry] = []
        evicted = 0
        candidates = []
        for entry in everything:
            if task is not None and entry.task != task:
                keep.append(entry)
            elif min_score is not None and entry.score < min_score:
                evicted += 1
            else:
                candidates.append(entry)
        if max_entries is not None and len(candidates) > max_entries:
            candidates.sort(key=lambda e: (-e.score, e.entry_id))
            evicted += len(candidates) - max_entries
            candidates = candidates[:max_entries]
        keep.extend(candidates)
        if evicted:
            obs.counter("kb.evict", evicted, reason="prune")
        self._ensure_layout()
        keep.sort(key=lambda e: e.entry_id)
        for path in sorted(self.entries_dir.glob("*.json")):
            try:
                path.unlink()
            except OSError:
                pass
        for path in sorted(self.segments_dir.glob("*.jsonl")):
            try:
                path.unlink()
            except OSError:
                pass
        if keep:
            body = (
                "\n".join(
                    json.dumps(entry.to_dict(), sort_keys=True)
                    for entry in keep
                )
                + "\n"
            ).encode("utf-8")
            atomic_write_bytes(self.segments_dir / "pruned.jsonl", body)
        return {"evicted": evicted, "kept": len(keep)}

    # -- import/export --------------------------------------------------
    def export_entries(self, path) -> int:
        """Write every valid entry as JSONL; returns the count."""
        from ..store import atomic_write_bytes

        entries = self.entries()
        body = "".join(
            json.dumps(entry.to_dict(), sort_keys=True) + "\n"
            for entry in entries
        ).encode("utf-8")
        atomic_write_bytes(path, body)
        return len(entries)

    def import_entries(self, path) -> Dict[str, int]:
        """Merge a JSONL export into this KB; invalid lines are skipped."""
        report = {"imported": 0, "skipped": 0}
        try:
            lines = Path(path).read_text().splitlines()
        except OSError:
            raise FileNotFoundError(f"cannot read KB export {path!r}")
        for line in lines:
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                report["skipped"] += 1
                continue
            entry = KBEntry.from_dict(payload)
            if entry is None:
                report["skipped"] += 1
                continue
            if self.promote(
                entry.task,
                entry.dataset,
                entry.fingerprint,
                entry.vector,
                entry.knowledge,
                entry.score,
            ) is not None:
                report["imported"] += 1
            else:
                report["skipped"] += 1
        return report

    # -- stats ----------------------------------------------------------
    def stats(self) -> Dict:
        """Entry count, on-disk bytes, last promotion and per-task mix."""
        entries = self.entries()
        size = 0
        if self.root.is_dir():
            size = sum(
                path.stat().st_size
                for path in self.root.rglob("*")
                if path.is_file()
            )
        per_task: Dict[str, int] = {}
        for entry in entries:
            per_task[entry.task] = per_task.get(entry.task, 0) + 1
        return {
            "entries": len(entries),
            "bytes": size,
            "last_promoted": max(
                (entry.promoted_at for entry in entries), default=None
            ),
            "tasks": dict(sorted(per_task.items())),
            "datasets": len({entry.fingerprint for entry in entries}),
        }

    def render_stats(self) -> str:
        stats = self.stats()
        lines = [f"knowledge base: {self.root}"]
        if not stats["entries"]:
            return lines[0] + "\n  empty"
        last = stats["last_promoted"]
        lines.append(
            f"  {stats['entries']} entries over {stats['datasets']} "
            f"dataset(s), {stats['bytes'] / 1e6:.2f} MB"
        )
        if last is not None:
            age = max(time.time() - last, 0.0)
            lines.append(f"  last promoted {age:.0f}s ago")
        for task, count in stats["tasks"].items():
            lines.append(f"  {task:<6} {count:>5} entries")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KnowledgeBase({str(self.root)!r})"


# ----------------------------------------------------------------------
# Process-wide resolution (mirrors repro.store.active)
# ----------------------------------------------------------------------
# KB retrieval deliberately defaults OFF: seeding a pool from whatever a
# shared store happens to contain would make results depend on run
# ordering, breaking the serial-vs-parallel and sharded-vs-unsharded
# bit-identity contracts the perf gates enforce.  ``--kb`` (or
# REPRO_KB=1) opts a run in; promotion then compounds the bank.
_ENABLED: Optional[bool] = None


def configure(enabled: Optional[bool]) -> None:
    """Explicitly enable/disable KB use (CLI flags do this);
    ``None`` restores environment resolution (``REPRO_KB``)."""
    global _ENABLED
    _ENABLED = enabled


def enabled() -> bool:
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get("REPRO_KB", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def active_kb() -> Optional[KnowledgeBase]:
    """The knowledge base of the active artifact store, if KB use is on."""
    if not enabled():
        return None
    from .. import store as artifact_store

    store = artifact_store.active()
    if store is None:
        return None
    return KnowledgeBase(store.kb_dir)


def resolve_use_kb(
    use_kb: Optional[bool], kb: Optional[KnowledgeBase]
) -> Optional[KnowledgeBase]:
    """Resolve the (use_kb, kb) parameter pair callers pass around.

    An explicit ``kb`` instance wins (unless ``use_kb`` is ``False``);
    ``use_kb=None`` defers to :func:`active_kb` (flag/env + store);
    ``use_kb=True`` with no explicit instance requires an active store
    and returns its KB regardless of the enablement flag.
    """
    if use_kb is False:
        return None
    if kb is not None:
        return kb
    if use_kb is True:
        from .. import store as artifact_store

        store = artifact_store.active()
        return None if store is None else KnowledgeBase(store.kb_dir)
    return active_kb()
