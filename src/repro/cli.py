"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available downstream datasets, model tiers and tasks.
``adapt``
    Run the full KnowTrans adaptation on one dataset and print scores,
    the searched knowledge and the learned patch weights.
``experiment``
    Run one entry of the experiment registry (``table2``, ``fig4``, …)
    and print the regenerated rows/series.
``conflict``
    Print the upstream gradient-conflict diagnostic (paper Fig. 1).
``perf``
    Inference / pipeline / warm-start cache / rank-space training
    benchmarks plus counters.
``cache``
    Inspect or maintain the persistent artifact store
    (``stats`` / ``clear`` / ``gc``).

``adapt``, ``experiment`` and ``perf`` accept ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable) to persist deterministic
artifacts — pretrained weights, SFT weights, SKC patches, fine-tune
states, AKB evaluation records — across invocations, and ``--no-cache``
to bypass the store entirely (reads *and* writes).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from . import store as artifact_store
from .baselines.jellyfish import get_bundle
from .core.config import KnowTransConfig
from .core.knowtrans import KnowTrans
from .data import generators
from .eval import experiments
from .eval.harness import load_splits
from .tinylm.registry import TIERS

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": experiments.table1_dataset_statistics,
    "table2": experiments.table2_open_source_comparison,
    "table3": experiments.table3_cost_analysis,
    "table4": experiments.table4_closed_source_comparison,
    "table5": experiments.table5_ablation,
    "table6": experiments.table6_weight_strategies,
    "table7": experiments.table7_upstream_statistics,
    "fig4": experiments.fig4_scalability,
    "fig5": experiments.fig5_backbones_on_datasets,
    "fig6": experiments.fig6_backbones_on_tasks,
    "fig7": experiments.fig7_refinement_rounds,
}


def _add_cache_args(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent artifact store directory "
        "(default: REPRO_CACHE_DIR env, else caching off)",
    )
    command.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact store entirely (reads and writes)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KnowTrans reproduction (ICDE 2025) command line",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list datasets, tiers and experiments")

    adapt = commands.add_parser("adapt", help="adapt a DP-LLM to one dataset")
    adapt.add_argument("dataset", help="dataset id, e.g. ed/beer")
    adapt.add_argument("--tier", default="mistral-7b", choices=sorted(TIERS))
    adapt.add_argument("--seed", type=int, default=0)
    adapt.add_argument("--count", type=int, default=200, help="dataset size")
    adapt.add_argument("--scale", type=float, default=0.6, help="upstream scale")
    adapt.add_argument("--no-skc", action="store_true", help="ablate SKC")
    adapt.add_argument("--no-akb", action="store_true", help="ablate AKB")
    adapt.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS env, then 1)",
    )
    _add_cache_args(adapt)

    experiment = commands.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--preset", default="quick", choices=("quick", "paper")
    )
    experiment.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for per-dataset rows "
        "(default: REPRO_JOBS env, then 1)",
    )
    _add_cache_args(experiment)

    conflict = commands.add_parser(
        "conflict", help="gradient tug-of-war diagnostic (paper Fig. 1)"
    )
    conflict.add_argument("--tier", default="mistral-7b", choices=sorted(TIERS))
    conflict.add_argument("--scale", type=float, default=0.4)
    conflict.add_argument("--seed", type=int, default=0)

    perf = commands.add_parser(
        "perf",
        help="batched vs per-example inference micro-benchmark + counters",
    )
    perf.add_argument(
        "--dataset", default="em/abt_buy", help="workload dataset id"
    )
    perf.add_argument("--count", type=int, default=200, help="dataset size")
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument(
        "--repeats", type=int, default=3, help="timed repeats (best kept)"
    )
    perf.add_argument(
        "--pipeline", action="store_true",
        help="run the end-to-end pipeline benchmark "
        "(serial per-candidate vs parallel pooled)",
    )
    perf.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the pipeline parallel arm "
        "(default: REPRO_JOBS env, then 4)",
    )
    perf.add_argument(
        "--cache", action="store_true",
        help="run the warm-start cache benchmark "
        "(cold pipeline vs store-warm re-run)",
    )
    perf.add_argument(
        "--train", action="store_true",
        help="run the rank-space training benchmark "
        "(dense vs rank-space frozen-backbone SKC stage-3 fit)",
    )
    perf.add_argument(
        "--smoke", action="store_true",
        help="fast CI sanity pass: tiny workload, single repeat, "
        "fails on any prediction mismatch",
    )
    _add_cache_args(perf)

    cache = commands.add_parser(
        "cache", help="inspect or maintain the persistent artifact store"
    )
    cache.add_argument("action", choices=("stats", "clear", "gc"))
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="store directory (default: REPRO_CACHE_DIR env)",
    )
    cache.add_argument(
        "--max-bytes", type=int, default=None,
        help="gc only: evict oldest entries until the store fits",
    )
    return parser


def _cmd_list() -> int:
    print("downstream datasets:")
    for dataset_id in generators.downstream_ids():
        print(f"  {dataset_id}")
    print("model tiers:")
    for tier in sorted(TIERS):
        print(f"  {tier}")
    print("experiments:")
    for name in sorted(_EXPERIMENTS):
        print(f"  {name}")
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    print(f"building upstream bundle ({args.tier}) ...")
    bundle = get_bundle(args.tier, seed=args.seed, scale=args.scale)
    splits = load_splits(args.dataset, count=args.count, seed=args.seed)
    adapter = KnowTrans(
        bundle,
        config=KnowTransConfig.fast(),
        use_skc=not args.no_skc,
        use_akb=not args.no_akb,
        jobs=args.jobs,
    )
    print(f"adapting to {args.dataset} ...")
    adapted = adapter.fit(splits)
    score = adapted.evaluate(splits.test.examples)
    print(f"test score: {score:.2f}")
    if adapted.knowledge:
        print("searched knowledge:")
        for rule in adapted.knowledge.rules:
            print(f"  - {rule.render()}")
    if adapted.fusion_weights:
        top = sorted(adapted.fusion_weights.items(), key=lambda kv: -kv[1])[:5]
        print("top patch weights:")
        for name, weight in top:
            print(f"  {name}: {weight:.3f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ctx = (
        experiments.ExperimentContext.paper()
        if args.preset == "paper"
        else experiments.ExperimentContext.quick()
    )
    ctx.jobs = args.jobs
    result = _EXPERIMENTS[args.name](ctx)
    print(result["text"])
    return 0


def _cmd_conflict(args: argparse.Namespace) -> int:
    from .eval.diagnostics import summarize_conflict

    bundle = get_bundle(args.tier, seed=args.seed, scale=args.scale)
    report = summarize_conflict(bundle.base_model, bundle.upstream_datasets)
    matrix = report["matrix"]
    names = report["names"]
    print("pairwise gradient cosine (upstream datasets at shared weights):")
    width = max(len(n) for n in names)
    for i, name in enumerate(names):
        row = " ".join(f"{matrix[i, j]:+.2f}" for j in range(len(names)))
        print(f"  {name.ljust(width)} {row}")
    print(f"conflict rate (obtuse pairs): {report['conflict_rate']:.2%}")
    print(f"mean off-diagonal cosine:     {report['mean_cosine']:+.3f}")
    print(
        f"worst tug-of-war pair:        {report['worst_pair'][0]} vs "
        f"{report['worst_pair'][1]} ({report['worst_cosine']:+.3f})"
    )
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .perf import PERF, render_benchmark, run_inference_benchmark

    if args.smoke:
        result = run_inference_benchmark(
            dataset_id=args.dataset,
            count=min(args.count, 60),
            seed=args.seed,
            repeats=1,
        )
        print(render_benchmark(result))
        if not result["predictions_identical"]:
            print("smoke FAILED: batched and per-example predictions differ")
            return 1
        print("smoke OK")
        return 0

    if args.train:
        from .perf import render_train_benchmark, run_train_benchmark

        result = run_train_benchmark(seed=args.seed)
        print(render_train_benchmark(result))
        failures = [
            label
            for label, ok in (
                ("step losses diverged", result["losses_match"]),
                ("predictions diverged", result["predictions_identical"]),
                ("metrics diverged", result["metrics_identical"]),
                ("rank engine not engaged", result["rank"]["engaged"]),
                (
                    "dense weights materialized during rank fit",
                    result["weight_materializations"] == 0,
                ),
                (
                    "exact-weights oracle not deterministic",
                    result["exact_oracle"]["deterministic"],
                ),
            )
            if not ok
        ]
        if failures:
            print("train benchmark FAILED: " + "; ".join(failures))
            return 1
        print("train benchmark OK")
        return 0

    if args.cache:
        from .perf import render_cache_benchmark, run_cache_benchmark

        result = run_cache_benchmark(
            seed=args.seed, cache_dir=args.cache_dir
        )
        print(render_cache_benchmark(result))
        return 0

    if args.pipeline:
        from .perf import render_pipeline_benchmark, run_pipeline_benchmark

        result = run_pipeline_benchmark(seed=args.seed, jobs=args.jobs)
        print(render_pipeline_benchmark(result))
        print(PERF.report())
        return 0

    result = run_inference_benchmark(
        dataset_id=args.dataset,
        count=args.count,
        seed=args.seed,
        repeats=args.repeats,
    )
    print(render_benchmark(result))
    print(PERF.report())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import os

    cache_dir = args.cache_dir or os.environ.get(
        "REPRO_CACHE_DIR", ""
    ).strip()
    if not cache_dir:
        print(
            "no store directory: pass --cache-dir or set REPRO_CACHE_DIR",
            file=sys.stderr,
        )
        return 2
    store = artifact_store.ArtifactStore(cache_dir)
    if args.action == "stats":
        print(store.render_stats())
    elif args.action == "clear":
        removed = store.clear()
        print(
            f"cleared {removed['entries']} entries "
            f"({removed['bytes'] / 1e6:.2f} MB) from {store.root}"
        )
    else:  # gc
        report = store.gc(max_bytes=args.max_bytes)
        print(
            f"gc {store.root}: removed {report['tmp_removed']} tmp files, "
            f"{report['corrupt_removed']} corrupt entries, evicted "
            f"{report['evicted']} entries"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)
    # Explicit cache flags override the environment; without them the
    # store resolves lazily from REPRO_CACHE_DIR / REPRO_NO_CACHE.
    if getattr(args, "no_cache", False):
        artifact_store.configure(no_cache=True)
    elif getattr(args, "cache_dir", None) and args.command != "cache":
        artifact_store.configure(cache_dir=args.cache_dir)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "adapt":
            return _cmd_adapt(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "conflict":
            return _cmd_conflict(args)
        if args.command == "perf":
            return _cmd_perf(args)
        if args.command == "cache":
            return _cmd_cache(args)
        raise AssertionError("unreachable")  # pragma: no cover
    finally:
        # One stats line per CLI invocation, covering worker traffic too
        # (store.* counters merge home with the pool's perf snapshots).
        store = artifact_store.active()
        if store is not None:
            store.log_session()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
